#!/usr/bin/env sh
# Raise the fd soft limit, then exec the given command.
#
# The event-loop tests and HTTP benches park thousands of idle sockets;
# CI runners default to a 1024-fd soft limit. Raising it is best effort —
# the server also raises it to the hard limit itself via raise_fd_limit —
# so a refusal is logged, not fatal.
ulimit -n 8192 2>/dev/null || echo "with_fd_limit: fd soft limit unchanged"
exec "$@"
