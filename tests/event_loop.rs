//! The epoll event-loop transport contract (`restore-serve::reactor`):
//!
//! * the incremental parser tolerates **byte-dribble** arrivals — a
//!   request written one byte at a time parses and answers byte-identical
//!   to direct `Snapshot::execute`, and the connection stays usable;
//! * **pipelined** back-to-back requests on one socket answer in order,
//!   each response byte-identical;
//! * injected **torn-response** faults still truncate mid-response and
//!   close under the event loop;
//! * a **slow-loris** sender is cut by the request deadline with a 400;
//! * a **many-idle-connections soak** (≥ 2k sockets) leaves the hot path
//!   byte-identical while `/metrics` accounts every open socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use restore_bench::sealed_synthetic_snapshot;

use restore::core::wire::{self, QueryRequest};
use restore::core::{Snapshot, SnapshotRegistry};
use restore::db::{Agg, Query};
use restore::serve::{raise_fd_limit, FaultConfig, HttpClient, ServeConfig, Server};

fn snapshot() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| sealed_synthetic_snapshot(71, 71)))
}

fn serve(config: ServeConfig) -> (Server, Arc<Snapshot>) {
    let snapshot = snapshot();
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", Arc::clone(&snapshot));
    let server = Server::bind("127.0.0.1:0", registry, config).expect("bind loopback");
    (server, snapshot)
}

fn query_request(seed: u64) -> QueryRequest {
    QueryRequest::new(
        Query::new(["ta", "tb"])
            .group_by(["b"])
            .aggregate(Agg::CountStar),
        seed,
    )
}

fn direct_body(snapshot: &Snapshot, request: &QueryRequest) -> String {
    let result = snapshot
        .execute(&request.query, request.seed)
        .expect("direct execute");
    wire::query_response_json(&result, None)
}

fn raw_query_bytes(request: &QueryRequest) -> Vec<u8> {
    let body = request.to_json();
    format!(
        "POST /v1/synthetic/query HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Reads HTTP/1.1 responses off a raw socket, carrying leftover bytes
/// between calls (pipelined responses can arrive in one segment).
struct ResponseReader {
    buf: Vec<u8>,
}

impl ResponseReader {
    fn new() -> Self {
        ResponseReader { buf: Vec::new() }
    }

    /// Reads exactly one response: head, then `Content-Length` body.
    /// Returns `(status, body)`.
    fn next(&mut self, stream: &mut TcpStream) -> (u16, String) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "EOF before response head completed");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).expect("UTF-8 head");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .expect("numeric length");
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let n = stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "EOF before response body completed");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .expect("UTF-8 body");
        self.buf.drain(..body_start + content_length);
        (status, body)
    }
}

fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut reader = ResponseReader::new();
    let got = reader.next(stream);
    assert!(
        reader.buf.is_empty(),
        "unexpected trailing bytes after response"
    );
    got
}

/// Pulls a numeric field out of the flat `/metrics` JSON by key.
fn metric_u64(metrics_body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = metrics_body.find(&needle).unwrap_or_else(|| {
        panic!("metric {key:?} missing in {metrics_body}");
    });
    metrics_body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric metric")
}

fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn byte_dribble_request_parses_and_answers_byte_identical() {
    let (server, snapshot) = serve(ServeConfig::default());
    let request = query_request(7);
    let expected = direct_body(&snapshot, &request);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // One byte per write, with a real pause every few bytes so the server
    // observes genuinely partial arrivals (not one coalesced segment).
    for (i, byte) in raw_query_bytes(&request).iter().enumerate() {
        stream
            .write_all(std::slice::from_ref(byte))
            .expect("dribble byte");
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let (status, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "dribbled request must not change bits");

    // The connection survived the dribble: a normal request on the same
    // socket still answers.
    stream
        .write_all(&raw_query_bytes(&request))
        .expect("second request");
    let (status, body) = read_one_response(&mut stream);
    assert_eq!((status, body.as_str()), (200, expected.as_str()));
    assert!(server.shutdown(), "drain");
}

#[test]
fn pipelined_requests_answer_in_order_byte_identical() {
    let (server, snapshot) = serve(ServeConfig::default());
    // Three distinct query shapes so each response body is distinguishable
    // and an out-of-order answer cannot pass by accident.
    let requests = [
        QueryRequest::new(Query::new(["tb"]).aggregate(Agg::CountStar), 1),
        QueryRequest::new(
            Query::new(["ta", "tb"])
                .group_by(["b"])
                .aggregate(Agg::CountStar),
            1,
        ),
        QueryRequest::new(Query::new(["ta"]).aggregate(Agg::CountStar), 1),
    ];
    let expected: Vec<String> = requests.iter().map(|r| direct_body(&snapshot, r)).collect();
    for (i, a) in expected.iter().enumerate() {
        for b in expected.iter().skip(i + 1) {
            assert_ne!(a, b, "ordering check needs distinguishable responses");
        }
    }

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // All three requests land in one burst before any response is written.
    let burst: Vec<u8> = requests.iter().flat_map(raw_query_bytes).collect();
    stream.write_all(&burst).expect("pipelined burst");
    let mut reader = ResponseReader::new();
    for (i, want) in expected.iter().enumerate() {
        let (status, body) = reader.next(&mut stream);
        assert_eq!(status, 200, "pipelined response {i}: {body}");
        assert_eq!(&body, want, "pipelined response {i} out of order or torn");
    }
    assert!(server.shutdown(), "drain");
}

#[test]
fn torn_response_fault_truncates_and_closes_under_event_loop() {
    let (server, _) = serve(ServeConfig {
        fault: Some(FaultConfig {
            seed: 3,
            window: (0, u64::MAX),
            torn_prob: 1.0,
            ..FaultConfig::default()
        }),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("request");
    // The server writes a strict prefix of the response and closes; the
    // bytes must never form a complete response.
    let mut torn = Vec::new();
    stream.read_to_end(&mut torn).expect("read until close");
    assert!(!torn.is_empty(), "torn response ships at least one byte");
    let text = String::from_utf8_lossy(&torn);
    assert!(text.starts_with("H"), "prefix of a real response: {text}");
    let complete = torn
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|head_end| {
            let head = String::from_utf8_lossy(&torn[..head_end]);
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse().ok())
                .unwrap_or(usize::MAX);
            torn.len() >= head_end + 4 + len
        })
        .unwrap_or(false);
    assert!(!complete, "response must be torn, got: {text}");
    assert!(server.shutdown(), "drain");
}

#[test]
fn slow_loris_is_cut_by_deadline_under_event_loop() {
    let (server, _) = serve(ServeConfig {
        request_deadline: Duration::from_millis(150),
        read_poll: Duration::from_millis(20),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let started = Instant::now();
    // A few head bytes, then silence: the reactor must answer 400 within
    // the deadline instead of holding the connection slot.
    stream
        .write_all(b"POST /v1/synthetic/query HTTP/1.1\r\nContent-")
        .expect("partial head");
    let mut answer = Vec::new();
    stream.read_to_end(&mut answer).expect("read until close");
    let text = String::from_utf8_lossy(&answer);
    assert!(
        text.starts_with("HTTP/1.1 400"),
        "slow-loris answers 400, got: {text}"
    );
    assert!(
        text.contains("did not complete in time"),
        "deadline detail in the body: {text}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cut must be prompt"
    );
    assert!(server.shutdown(), "drain");
}

#[test]
fn many_idle_connections_leave_the_hot_path_byte_identical() {
    const IDLE: usize = 2048;
    let soft_limit = raise_fd_limit().expect("raise fd limit");
    assert!(
        soft_limit > 2 * IDLE as u64 + 64,
        "test needs ~{} fds, soft limit is {soft_limit}",
        2 * IDLE + 64
    );
    let (server, snapshot) = serve(ServeConfig::default());
    let addr: SocketAddr = server.local_addr();

    // An armada of idle keep-alive connections: each sends one healthz to
    // prove it is established and keep-alive, then just sits there.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| {
            panic!("idle connect {i}: {e}");
        });
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("idle healthz");
        idle.push(stream);
    }
    // Answers arrive asynchronously; drain each socket's single response
    // so every connection is parked in KeepAliveIdle.
    for stream in &mut idle {
        let (status, _) = read_one_response(stream);
        assert_eq!(status, 200);
    }

    // With the armada parked, the hot path still answers bit-identically.
    let request = query_request(11);
    let expected = direct_body(&snapshot, &request);
    let mut hot = HttpClient::connect(addr).expect("hot connect");
    for _ in 0..5 {
        let (status, body) = hot
            .post("/v1/synthetic/query", &request.to_json())
            .expect("hot query");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected, "idle armada must not change bits");
    }

    // The event loop accounts every socket.
    let (status, metrics) = hot.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metric_u64(&metrics, "open_connections") > IDLE as u64,
        "all idle sockets open: {metrics}"
    );
    assert!(
        metric_u64(&metrics, "keepalive_idle") >= IDLE as u64,
        "armada parked idle: {metrics}"
    );
    assert!(metric_u64(&metrics, "accepts") > IDLE as u64);
    assert!(metric_u64(&metrics, "epoll_wakeups") >= 1);
    assert_eq!(server.connections_active(), IDLE + 1);

    // Shutdown releases the whole armada promptly (idle sockets close at
    // the trigger, none of them is in-flight work).
    let started = Instant::now();
    assert!(server.shutdown(), "idle armada must drain");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "drain must not wait on idle sockets"
    );
    // Every idle socket observes EOF.
    let eof = wait_until(Duration::from_secs(5), || {
        idle.iter().take(8).all(|s| {
            s.set_nonblocking(true).is_ok() && {
                let mut probe = [0u8; 1];
                matches!((&*s).read(&mut probe), Ok(0))
            }
        })
    });
    assert!(eof, "idle sockets must see EOF after shutdown");
}
