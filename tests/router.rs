//! Shard-router contract (fleet mode of `restore-serve`), in-process: two
//! stock worker servers behind a router server whose `ServeConfig::fleet`
//! points at their fixed addresses.
//!
//! * Forwarded responses are **byte-identical** (status + body) to asking
//!   the tenant's worker directly, for every wire route — success,
//!   confidence intervals, completed tables, protocol errors, unknown
//!   tenants, method mismatches. The router adds transport, never bits.
//! * The tenant→shard mapping is the documented stable FNV-1a hash and
//!   survives a worker being replaced.
//! * Failover: a dead shard degrades `/healthz`, its requests answer 503
//!   after the retry budget (without touching the healthy shard), and
//!   re-registering a replacement worker restores byte-identical service.
//! * The router's `/metrics` carries a `fleet` section whose counters
//!   track forwards and failures.
//!
//! Process-level spawn/re-exec failover is covered by the `router_smoke`
//! binary; these tests pin the routing semantics without process churn.

use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use restore_bench::{balanced_fleet_tenants, sealed_synthetic_snapshot, serving_workload};

use restore::core::wire::QueryRequest;
use restore::core::{ConfidenceQuery, Snapshot, SnapshotRegistry};
use restore::db::{Agg, Query};
use restore::serve::router::{Fleet, FleetConfig, ShardConfig};
use restore::serve::{ClientConfig, HttpClient, RetryPolicy, ServeConfig, Server};
use restore::util::json::parse;

fn snapshot() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| sealed_synthetic_snapshot(31, 31)))
}

/// A stock worker serving every fleet tenant (which shard *receives* a
/// tenant is purely the router's hash mapping).
fn worker(tenants: &[String]) -> Server {
    let registry = Arc::new(SnapshotRegistry::new());
    for tenant in tenants {
        registry.publish(tenant, snapshot());
    }
    Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind worker")
}

/// A fleet over fixed worker addresses with a short retry budget, so the
/// shard-unavailable path answers in ~a second instead of the production
/// ten, and a fast health-probe cadence to keep the failover test quick.
fn fixed_fleet(addrs: &[SocketAddr]) -> Arc<Fleet> {
    Fleet::start(FleetConfig {
        shards: addrs
            .iter()
            .map(|&addr| ShardConfig {
                addr: Some(addr),
                worker: None,
            })
            .collect(),
        client: ClientConfig {
            read_timeout: Duration::from_secs(5),
            retry: RetryPolicy {
                budget: Duration::from_secs(1),
                ..RetryPolicy::default()
            },
        },
        health_interval: Duration::from_millis(50),
        ..FleetConfig::default()
    })
    .expect("fleet over fixed addrs")
}

fn router(fleet: &Arc<Fleet>) -> Server {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(SnapshotRegistry::new()),
        ServeConfig {
            fleet: Some(Arc::clone(fleet)),
            ..ServeConfig::default()
        },
    )
    .expect("bind router")
}

/// (status, body) of one request — the byte-equality comparison unit.
/// Headers are excluded on purpose: request ids are per-server counters.
fn ask(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let response = HttpClient::connect(addr)
        .expect("connect")
        .request_full(method, path, body, &[])
        .expect("request");
    (response.status, response.body)
}

fn plain_query() -> String {
    QueryRequest::new(serving_workload()[0].clone(), 3).to_json()
}

#[test]
fn forwarded_responses_are_byte_identical_for_every_route() {
    let tenants = balanced_fleet_tenants(1, 2);
    let workers = [worker(&tenants), worker(&tenants)];
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let fleet = fixed_fleet(&addrs);
    let router = router(&fleet);
    let via = router.local_addr();

    let confident = QueryRequest::new(Query::new(["ta", "tb"]).aggregate(Agg::CountStar), 5)
        .with_confidence(
            ConfidenceQuery::CountFraction {
                table: "tb".into(),
                column: "b".into(),
                value: "b1".into(),
            },
            0.95,
        )
        .to_json();
    let plain = plain_query();
    let mut forwards = 0u64;
    for tenant in &tenants {
        // The mapping is the documented hash — computable without the fleet.
        let shard = fleet.shard_for(tenant);
        assert_eq!(
            shard,
            (restore::util::fnv1a64(tenant.as_bytes()) % 2) as usize
        );
        let direct = addrs[shard];
        let base = format!("/v1/{tenant}");
        let cases: Vec<(&str, String, Option<&str>, u16)> = vec![
            ("POST", format!("{base}/query"), Some(plain.as_str()), 200),
            (
                "POST",
                format!("{base}/query"),
                Some(confident.as_str()),
                200,
            ),
            ("GET", format!("{base}/tables/tb?seed=2"), None, 200),
            ("POST", format!("{base}/query"), Some("not json"), 400),
            ("GET", format!("{base}/query"), None, 405),
        ];
        for (method, path, body, expected_status) in cases {
            let routed = ask(via, method, &path, body);
            assert_eq!(
                routed,
                ask(direct, method, &path, body),
                "router must pass bytes through untouched: {method} {path}"
            );
            assert_eq!(routed.0, expected_status, "{method} {path}");
            forwards += 1;
        }
    }
    // Unknown tenants route by the same hash and 404 identically.
    let ghost = "never-published";
    let routed = ask(via, "POST", &format!("/v1/{ghost}/query"), Some(&plain));
    assert_eq!(
        routed,
        ask(
            addrs[fleet.shard_for(ghost)],
            "POST",
            &format!("/v1/{ghost}/query"),
            Some(&plain)
        )
    );
    assert_eq!(routed.0, 404);
    forwards += 1;

    // The fleet section of the router's /metrics accounts for every
    // forward (worker errors like 404/405 *are* successful forwards).
    let (status, metrics) = ask(via, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let root = parse(&metrics).expect("metrics parse");
    let section = root.get("fleet").expect("fleet section");
    assert_eq!(
        section.get("forwarded").and_then(|v| v.as_f64()),
        Some(forwards as f64)
    );
    assert_eq!(section.get("failed").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(section.get("shards").and_then(|v| v.as_f64()), Some(2.0));

    assert!(router.shutdown());
    fleet.shutdown();
    for w in workers {
        assert!(w.shutdown());
    }
}

#[test]
fn dead_shard_degrades_and_a_replacement_restores_byte_identical_service() {
    let tenants = balanced_fleet_tenants(1, 2);
    let (shard0_tenant, shard1_tenant) = {
        let by_hash = |s: usize| {
            tenants
                .iter()
                .find(|t| (restore::util::fnv1a64(t.as_bytes()) % 2) as usize == s)
                .expect("balanced list covers both shards")
                .clone()
        };
        (by_hash(0), by_hash(1))
    };
    let worker0 = worker(&tenants);
    let worker1 = worker(&tenants);
    let addrs = vec![worker0.local_addr(), worker1.local_addr()];
    let fleet = fixed_fleet(&addrs);
    let router = router(&fleet);
    let via = router.local_addr();
    let plain = plain_query();
    let path0 = format!("/v1/{shard0_tenant}/query");
    let path1 = format!("/v1/{shard1_tenant}/query");

    let baseline = ask(via, "POST", &path0, Some(&plain));
    assert_eq!(baseline.0, 200);

    // Kill shard 0's worker. The monitor degrades the fleet; requests to
    // its tenants answer 503 once the retry budget is spent; the healthy
    // shard keeps answering 200 throughout.
    assert!(worker0.shutdown());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = ask(via, "GET", "/healthz", None);
        if health.contains("\"status\":\"degraded\"") && health.contains("\"up\":1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "monitor must degrade the fleet: {health}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, body) = ask(via, "POST", &path0, Some(&plain));
    assert_eq!(status, 503, "dead shard answers 503 after retries: {body}");
    assert!(!fleet.shard_is_up(0));
    assert_eq!(ask(via, "POST", &path1, Some(&plain)).0, 200);

    // Register a replacement worker (new process in production; here a
    // fresh in-process server on a fresh port). Service is restored
    // immediately, the tenant's shard index is unchanged, and the answer
    // is byte-identical — same snapshot, same bytes.
    let replacement = worker(&tenants);
    fleet.set_shard_addr(0, replacement.local_addr());
    assert!(fleet.shard_is_up(0));
    assert_eq!(fleet.shard_for(&shard0_tenant), 0, "mapping is stable");
    assert_eq!(
        ask(via, "POST", &path0, Some(&plain)),
        baseline,
        "replacement worker must answer byte-identically"
    );
    let (_, health) = ask(via, "GET", "/healthz", None);
    assert!(health.contains("\"status\":\"ok\"") && health.contains("\"up\":2"));

    // The outage is on the books.
    let root = parse(&fleet.metrics_json()).expect("fleet metrics parse");
    assert!(root.get("failed").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0);

    assert!(router.shutdown());
    fleet.shutdown();
    assert!(replacement.shutdown());
    assert!(worker1.shutdown());
}
