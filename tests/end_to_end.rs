//! End-to-end integration: annotate → train → complete → query across all
//! workspace crates, on both the synthetic and the housing schema.

use restore::core::{ReStore, RestoreConfig, SelectionStrategy, TrainConfig};
use restore::data::housing::{generate_housing, HousingConfig};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{execute, Agg, Expr, Query};

fn quick_config() -> RestoreConfig {
    RestoreConfig {
        train: TrainConfig {
            epochs: 8,
            hidden: vec![32, 32],
            min_steps: 250,
            max_train_rows: 6000,
            ..TrainConfig::default()
        },
        max_candidates: 2,
        strategy: SelectionStrategy::BestValLoss,
        ..RestoreConfig::default()
    }
}

#[test]
fn synthetic_count_query_is_debiased() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 250,
            predictability: 0.95,
            ..Default::default()
        },
        501,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.4, 0.6);
    removal.seed = 501;
    let sc = apply_removal(&db, &removal);
    let value = sc.bias_value.clone().unwrap();

    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("tb");
    rs.train(501).unwrap();

    let q = Query::new(["tb"])
        .filter(Expr::col("b").eq(Expr::lit(value.as_str())))
        .aggregate(Agg::CountStar);
    let truth = execute(&sc.complete, &q).unwrap().scalar().unwrap();
    let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
    let completed = rs.execute(&q, 501).unwrap().scalar().unwrap();
    assert!(
        (completed - truth).abs() < (incomplete - truth).abs(),
        "COUNT of the biased value: truth {truth}, incomplete {incomplete}, completed {completed}"
    );
}

#[test]
fn housing_sum_query_improves() {
    // The paper's H1-style scenario: expensive apartments missing.
    let complete = generate_housing(&HousingConfig::scaled(0.15), 502);
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.4, 0.7);
    removal.seed = 502;
    removal.tf_keep_rate = 0.3;
    let sc = apply_removal(&complete, &removal);

    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("apartment");
    rs.train(502).unwrap();

    let q = Query::new(["apartment"]).aggregate(Agg::Sum("price".into()));
    let truth = execute(&complete, &q).unwrap().scalar().unwrap();
    let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
    let completed = rs.execute(&q, 502).unwrap().scalar().unwrap();
    assert!(
        (completed - truth).abs() < (incomplete - truth).abs() * 0.7,
        "SUM(price): truth {truth:.0}, incomplete {incomplete:.0}, completed {completed:.0}"
    );
}

#[test]
fn housing_join_query_executes_and_adds_rows() {
    let complete = generate_housing(&HousingConfig::scaled(0.15), 503);
    let mut removal = RemovalConfig::new(BiasSpec::categorical("apartment", "room_type"), 0.5, 0.5);
    removal.seed = 503;
    let sc = apply_removal(&complete, &removal);

    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("apartment");

    let q = Query::new(["landlord", "apartment"]).aggregate(Agg::CountStar);
    let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
    let completed = rs.execute(&q, 503).unwrap().scalar().unwrap();
    let truth = execute(&complete, &q).unwrap().scalar().unwrap();
    assert!(completed > incomplete, "completion must add joined rows");
    assert!(
        (completed - truth).abs() < (incomplete - truth).abs(),
        "join COUNT: truth {truth}, incomplete {incomplete}, completed {completed}"
    );
}

#[test]
fn landlord_n_to_1_completion_works() {
    // H4-style: the *parent* side (landlord) is incomplete.
    let complete = generate_housing(&HousingConfig::scaled(0.15), 504);
    let mut removal =
        RemovalConfig::new(BiasSpec::continuous("landlord", "landlord_since"), 0.4, 0.6);
    removal.seed = 504;
    let sc = apply_removal(&complete, &removal);

    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("landlord");
    let q = Query::new(["landlord"]).aggregate(Agg::CountStar);
    let truth = execute(&complete, &q).unwrap().scalar().unwrap();
    let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
    let completed = rs.execute(&q, 504).unwrap().scalar().unwrap();
    assert!(
        (completed - truth).abs() < (incomplete - truth).abs(),
        "landlord COUNT: truth {truth}, incomplete {incomplete}, completed {completed}"
    );
}

#[test]
fn queries_on_complete_tables_are_exact() {
    let complete = generate_housing(&HousingConfig::scaled(0.15), 505);
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.5, 0.5);
    removal.seed = 505;
    let sc = apply_removal(&complete, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("apartment");
    // Neighborhood is complete: ReStore must not touch it.
    let q = Query::new(["neighborhood"]).aggregate(Agg::Avg("pop_density".into()));
    let truth = execute(&complete, &q).unwrap().scalar().unwrap();
    let got = rs.execute(&q, 505).unwrap().scalar().unwrap();
    assert_eq!(truth, got);
}

#[test]
fn completed_join_cache_reuses_results() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        506,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 506;
    let sc = apply_removal(&db, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("tb");
    let q1 = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
    let q2 = Query::new(["ta", "tb"])
        .group_by(["a"])
        .aggregate(Agg::CountStar);
    let a = rs.execute(&q1, 506).unwrap().scalar().unwrap();
    let (h0, _) = rs.cache_stats();
    let groups = rs.execute(&q2, 506).unwrap().groups();
    let (h1, _) = rs.cache_stats();
    assert!(
        h1 > h0,
        "second query over the same join path must hit the cache"
    );
    let total: f64 = groups.values().map(|v| v[0]).sum();
    assert_eq!(total, a, "cached join must be consistent across queries");
}
