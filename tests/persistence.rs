//! Snapshot persistence contract (`restore-core`'s `persist` +
//! `restore-serve`'s `SnapshotStore`):
//!
//! * **round trip** — `load(save(snapshot))` serves byte-identically to
//!   the in-memory original over the full query suite: every workload
//!   query × seed, confidence intervals, and completed tables under a
//!   multi-worker completer;
//! * **atomicity at boot** — a crash inside the write window (temp file
//!   present, rename never happened) is invisible to the boot scan, and a
//!   corrupt newest version falls back to the newest *valid* one;
//! * **idempotence** — re-saving the same snapshot version is byte-equal,
//!   and a server boots tenants straight from the snapshot directory;
//! * **hot swap from disk** — a *loaded* v2 publishes over an in-memory
//!   v1 under concurrent load torn-free (the `http_serving.rs` harness,
//!   with the replacement snapshot coming off disk).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use restore_bench::{
    result_fingerprint as fingerprint, sealed_synthetic_snapshot, serving_workload as workload,
};

use restore::core::wire::{self, QueryRequest};
use restore::core::{
    CompleterConfig, ConfidenceQuery, ReStore, RestoreConfig, Snapshot, SnapshotRegistry,
    TrainConfig,
};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{Agg, Query};
use restore::serve::{HttpClient, ServeConfig, Server, SnapshotStore};

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "restore-persistence-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Serving fingerprints across every execution path the snapshot exposes:
/// the query workload under several seeds, a confidence interval, and a
/// completed table.
fn serve_fingerprints(snapshot: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    for q in workload() {
        for seed in [0u64, 7, 40] {
            out.push(fingerprint(&snapshot.execute(&q, seed).expect("execute")));
        }
    }
    let tables = vec!["ta".to_string(), "tb".to_string()];
    let cq = ConfidenceQuery::CountFraction {
        table: "tb".into(),
        column: "b".into(),
        value: "b0".into(),
    };
    let ci = snapshot
        .confidence(&tables, &cq, 0.95, 7)
        .expect("confidence");
    out.push(format!(
        "ci:{:016x},{:016x},{:016x}",
        ci.lo.to_bits(),
        ci.hi.to_bits(),
        ci.estimate.to_bits()
    ));
    out.push(wire::table_json(
        &snapshot.completed_table("tb", 3).expect("completed table"),
    ));
    out
}

#[test]
fn round_trip_serves_byte_identically() {
    let dir = temp_dir("roundtrip");
    let path = dir.join("v00001.snap");
    let snapshot = sealed_synthetic_snapshot(11, 23);
    snapshot.save(&path).expect("save");
    let loaded = Snapshot::load(&path).expect("load");
    assert_eq!(loaded.serve_seed(), snapshot.serve_seed());
    assert_eq!(
        serve_fingerprints(&loaded),
        serve_fingerprints(&snapshot),
        "loaded snapshot must serve byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn round_trip_is_exact_under_multi_worker_completion() {
    // A completer fanning rows over 4 workers exercises the seed-derived
    // parallel synthesis paths; the loaded snapshot must still match the
    // original bit for bit.
    let db = generate_synthetic(
        &SyntheticConfig {
            predictability: 0.9,
            n_parent: 120,
            ..Default::default()
        },
        13,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 13;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 2,
            min_steps: 40,
            hidden: vec![16, 16],
            max_train_rows: 2_000,
            workers: 1,
            ..TrainConfig::default()
        },
        completer: CompleterConfig {
            workers: 4,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    rs.train(13).expect("train");
    let q = Query::new(["ta", "tb"])
        .group_by(["b"])
        .aggregate(Agg::CountStar);
    rs.ensure_query_models(&q.tables, 13).expect("ensure");
    let snapshot = rs.seal(29);

    let dir = temp_dir("workers");
    let path = dir.join("v00001.snap");
    snapshot.save(&path).expect("save");
    let loaded = Snapshot::load(&path).expect("load");
    for seed in [0u64, 5] {
        assert_eq!(
            fingerprint(&loaded.execute(&q, seed).expect("loaded")),
            fingerprint(&snapshot.execute(&q, seed).expect("original")),
            "multi-worker completion diverged at seed {seed}"
        );
    }
    assert_eq!(
        wire::table_json(&loaded.completed_table("tb", 2).expect("loaded table")),
        wire::table_json(&snapshot.completed_table("tb", 2).expect("original table")),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resave_of_same_version_is_byte_idempotent() {
    let dir = temp_dir("idempotent");
    let store = SnapshotStore::new(&dir);
    let snapshot = sealed_synthetic_snapshot(17, 5);
    store.save_version("t", 1, &snapshot).expect("first save");
    let first = std::fs::read(store.version_path("t", 1)).expect("read");
    store.save_version("t", 1, &snapshot).expect("re-save");
    let second = std::fs::read(store.version_path("t", 1)).expect("read");
    assert_eq!(first, second, "re-saving the same version must be a no-op");
    // And a load → save cycle reproduces the bytes too.
    let loaded = Snapshot::load(&store.version_path("t", 1)).expect("load");
    assert_eq!(loaded.to_bytes(), first, "serialization is deterministic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn boot_scan_ignores_crash_window_temp_files_and_corrupt_versions() {
    let dir = temp_dir("bootscan");
    let store = SnapshotStore::new(&dir);
    let snapshot = sealed_synthetic_snapshot(19, 7);
    store.save_version("t", 1, &snapshot).expect("save v1");

    // Crash window: a temp file that never got renamed. Must be invisible.
    std::fs::write(dir.join("t").join("v00002.snap.tmp-4242"), b"half a write").expect("write tmp");
    // Corrupt newest version: one flipped byte. Must be skipped with a
    // reason, falling back to v1.
    let mut corrupt = snapshot.to_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    std::fs::write(store.version_path("t", 3), &corrupt).expect("write corrupt v3");

    assert_eq!(store.versions("t"), vec![1, 3], "tmp file must not list");
    let (loaded, skipped) = store.load_latest("t");
    let loaded = loaded.expect("v1 must load");
    assert_eq!(loaded.version, 1, "scan must fall back to the valid v1");
    assert_eq!(skipped.len(), 1, "corrupt v3 must be skipped, not fatal");
    assert!(
        skipped[0].reason.contains("checksum"),
        "skip reason names the failure: {}",
        skipped[0].reason
    );

    // End to end: a server pointed at the directory boots the tenant and
    // serves it byte-identically to the in-memory snapshot it came from.
    let registry = Arc::new(SnapshotRegistry::new());
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            snapshot_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let request = QueryRequest::new(Query::new(["ta", "tb"]).aggregate(Agg::CountStar), 3);
    let expected =
        wire::query_response_json(&snapshot.execute(&request.query, 3).expect("direct"), None);
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"t\""), "booted tenant missing: {health}");
    let (status, body) = client
        .post("/v1/t/query", &request.to_json())
        .expect("query");
    assert_eq!((status, body.as_str()), (200, expected.as_str()));
    let (_, metrics) = client.get("/metrics").expect("metrics");
    assert!(
        metrics.contains("\"snapshots_loaded\":1"),
        "boot scan must account its load: {metrics}"
    );
    assert!(server.shutdown(), "drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rebuild_endpoint_retrains_saves_and_republishes() {
    // The background pipeline end to end: boot v1 from disk, POST rebuild
    // with pinned seeds, and wait for the new version to be trained,
    // atomically saved as v2, and hot-swapped into the registry.
    let dir = temp_dir("rebuild");
    let store = SnapshotStore::new(&dir);
    let v1 = sealed_synthetic_snapshot(19, 7);
    store.save_version("t", 1, &v1).expect("save v1");

    let registry = Arc::new(SnapshotRegistry::new());
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            snapshot_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    // Guard rails first: unknown tenant 404s, a bad seed param 400s.
    let (status, _) = client.post("/v1/nope/rebuild", "").expect("rebuild");
    assert_eq!(status, 404, "unknown tenant must 404");
    let (status, _) = client
        .post("/v1/t/rebuild?train_seed=banana", "")
        .expect("rebuild");
    assert_eq!(status, 400, "unparseable seed must 400");

    let (status, body) = client
        .post("/v1/t/rebuild?train_seed=5&serve_seed=77", "")
        .expect("rebuild");
    assert_eq!(status, 202, "rebuild must be accepted: {body}");
    assert!(body.contains("\"version\":2"), "next version is 2: {body}");
    assert!(
        body.contains("\"serve_seed\":\"77\""),
        "pinned seed: {body}"
    );

    // The pipeline runs on a detached thread; poll the registry for the
    // hot swap (the publish happens only after the atomic save).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let v2 = loop {
        if let Some(snap) = registry.get("t") {
            if snap.serve_seed() == Some(77) {
                break snap;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "rebuild did not publish within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    // v2 landed on disk through the atomic path and round-trips.
    assert_eq!(store.versions("t"), vec![1, 2], "v2 must be saved");
    let from_disk = Snapshot::load(&store.version_path("t", 2)).expect("load v2");
    assert_eq!(from_disk.serve_seed(), Some(77));

    // And the server now serves the rebuilt snapshot, byte-identical to
    // direct execution against both the published and the on-disk v2.
    let request = QueryRequest::new(Query::new(["ta", "tb"]).aggregate(Agg::CountStar), 3);
    let expected = wire::query_response_json(&v2.execute(&request.query, 3).expect("direct"), None);
    assert_eq!(
        wire::query_response_json(&from_disk.execute(&request.query, 3).expect("disk"), None),
        expected,
        "published and on-disk v2 must serve the same bytes"
    );
    let (status, body) = client
        .post("/v1/t/query", &request.to_json())
        .expect("query");
    assert_eq!((status, body.as_str()), (200, expected.as_str()));
    let (_, metrics) = client.get("/metrics").expect("metrics");
    assert!(
        metrics.contains("\"completed\":1"),
        "rebuild must be accounted: {metrics}"
    );
    assert!(server.shutdown(), "drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_swap_from_loaded_snapshot_under_load_is_torn_free() {
    // The http_serving.rs torn-free harness, with the twist that v2 comes
    // off disk: publishing a *loaded* snapshot over a draining in-memory
    // v1 must behave exactly like publishing an in-memory one.
    let v1 = sealed_synthetic_snapshot(31, 31);
    let dir = temp_dir("hotswap");
    let path = dir.join("v00002.snap");
    sealed_synthetic_snapshot(31, 99)
        .save(&path)
        .expect("save v2");
    let v2 = Arc::new(Snapshot::load(&path).expect("load v2"));

    let query = Query::new(["ta", "tb"])
        .group_by(["b"])
        .aggregate(Agg::CountStar);
    let request = QueryRequest::new(query, 5);
    let body = Arc::new(request.to_json());
    let direct = |snap: &Snapshot| {
        wire::query_response_json(&snap.execute(&request.query, 5).expect("direct"), None)
    };
    let e1 = Arc::new(direct(&v1));
    let e2 = Arc::new(direct(&v2));
    assert_ne!(e1, e2, "serve seeds must give distinguishable responses");

    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("swap", Arc::clone(&v1));
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let responded = Arc::new(AtomicUsize::new(0));
    let threads = 4;
    let iters = 10;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let (body, responded) = (Arc::clone(&body), Arc::clone(&responded));
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let mut responses = Vec::with_capacity(iters);
            for _ in 0..iters {
                let (status, response) = client.post("/v1/swap/query", &body).expect("request");
                assert_eq!(status, 200, "no request may fail across the swap");
                responses.push(response);
                responded.fetch_add(1, Ordering::SeqCst);
            }
            responses
        }));
    }
    while responded.load(Ordering::SeqCst) < threads * 2 {
        std::thread::yield_now();
    }
    registry.publish("swap", Arc::clone(&v2));

    for handle in handles {
        let responses = handle.join().expect("client thread");
        let mut seen_v2 = false;
        for response in &responses {
            let is_v1 = response == e1.as_str();
            let is_v2 = response == e2.as_str();
            assert!(is_v1 || is_v2, "torn response: {response}");
            if is_v2 {
                seen_v2 = true;
            }
            assert!(!(is_v1 && seen_v2), "regressed to v1 after observing v2");
        }
    }
    let (status, response) = HttpClient::connect(addr)
        .expect("connect")
        .post("/v1/swap/query", &body)
        .expect("request");
    assert_eq!((status, response.as_str()), (200, e2.as_str()));
    assert!(server.shutdown(), "drain");
    let _ = std::fs::remove_dir_all(&dir);
}
