//! Cross-crate randomized property tests on the invariants the system
//! relies on: autograd correctness, MADE autoregressiveness, encoder
//! round-trips, removal accounting, and join/aggregate semantics.
//!
//! Written as plain seeded-random sweeps (no proptest in this offline
//! environment): each property is checked over a fixed number of random
//! cases drawn from a seeded generator, so failures are reproducible.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore::nn::{AttrSpec, Made, MadeConfig, Matrix, ParamStore, Tape};

const CASES: usize = 24;

/// d(sum((x·W)·2 + x·W))/dW matches finite differences for random shapes
/// (smooth ops only — ReLU's kink makes finite differences unreliable and
/// is covered by targeted unit tests in restore-nn).
#[test]
fn autograd_matches_finite_differences() {
    let mut meta = StdRng::seed_from_u64(0xa0);
    for case in 0..CASES {
        let rows = meta.random_range(1..4usize);
        let inner = meta.random_range(1..4usize);
        let cols = meta.random_range(1..4usize);
        let seed = meta.random_range(0..1000u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::rand_uniform(rows, inner, -1.0, 1.0, &mut rng);
        let mut store = ParamStore::new();
        let w = store.register(Matrix::rand_uniform(inner, cols, -1.0, 1.0, &mut rng));

        let forward = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new();
            let xi = tape.input(x.clone());
            let wi = tape.param(store, w);
            let h = tape.matmul(xi, wi);
            let s = tape.scale(h, 2.0);
            let y = tape.add(s, h);
            tape.value(y).data().iter().sum()
        };

        let mut tape = Tape::new();
        let xi = tape.input(x.clone());
        let wi = tape.param(&store, w);
        let h = tape.matmul(xi, wi);
        let s = tape.scale(h, 2.0);
        let y = tape.add(s, h);
        let (r, c) = tape.value(y).shape();
        tape.backward(y, Matrix::filled(r, c, 1.0), &mut store);
        let analytic = store.grad(w).clone();

        let eps = 1e-2f32;
        for i in 0..inner {
            for j in 0..cols {
                let orig = store.value(w).get(i, j);
                store.value_mut(w).set(i, j, orig + eps);
                let up = forward(&store);
                store.value_mut(w).set(i, j, orig - eps);
                let down = forward(&store);
                store.value_mut(w).set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < 0.05 * (1.0 + a.abs().max(numeric.abs())),
                    "case {case}: dW[{i}][{j}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }
}

/// The MADE autoregressive property holds for random architectures:
/// perturbing attribute j never changes the logits of attributes ≤ j.
#[test]
fn made_is_autoregressive() {
    let mut meta = StdRng::seed_from_u64(0xa1);
    for case in 0..CASES {
        let n_attrs = meta.random_range(2..5usize);
        let card = meta.random_range(2..6u32);
        let hidden = meta.random_range(8..24usize);
        let seed = meta.random_range(0..1000u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let attrs = (0..n_attrs)
            .map(|_| AttrSpec::new(card as usize, 3))
            .collect();
        let cfg = MadeConfig::new(attrs).with_hidden(vec![hidden, hidden]);
        let made = Made::new(cfg, &mut store, &mut rng);
        let base: Vec<Arc<Vec<u32>>> = (0..n_attrs).map(|_| Arc::new(vec![0u32])).collect();
        let logits0 = made.logits(&store, &base, None);
        for j in 0..n_attrs {
            let mut toks = base.clone();
            toks[j] = Arc::new(vec![card - 1]);
            let logits = made.logits(&store, &toks, None);
            for i in 0..=j {
                let (off, c) = made.layout().block(i);
                for k in off..off + c {
                    assert_eq!(
                        logits0.get(0, k),
                        logits.get(0, k),
                        "case {case}: attr {i} depends on attr {j}"
                    );
                }
            }
        }
    }
}

/// Encoders round-trip every encodable value onto a representative of the
/// same token, and encoding is total on the fitted column.
#[test]
fn encoder_round_trip() {
    use restore::core::AttrEncoder;
    use restore::db::{Column, DataType, Value};
    let mut meta = StdRng::seed_from_u64(0xa2);
    for case in 0..CASES {
        let n = meta.random_range(2..200usize);
        let bins = meta.random_range(2..32usize);
        let vals: Vec<f64> = (0..n).map(|_| meta.random_range(-1e6..1e6f64)).collect();
        let mut col = Column::new(DataType::Float);
        for &v in &vals {
            col.push(&Value::Float(v)).unwrap();
        }
        let enc = AttrEncoder::fit(&col, bins);
        for &v in &vals {
            let tok = enc.encode(&Value::Float(v));
            assert!(tok.is_some(), "case {case}: fitted value must encode");
            let tok = tok.unwrap();
            assert!((tok as usize) < enc.cardinality());
            // Decoding then re-encoding is stable (token fixpoint).
            let dec = enc.decode(tok);
            assert_eq!(enc.encode(&dec), Some(tok), "case {case}: token fixpoint");
        }
    }
}

/// Biased removal hits the requested keep rate exactly (rounded).
#[test]
fn removal_keep_rate_is_exact() {
    use restore::data::{
        apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig,
    };
    let mut meta = StdRng::seed_from_u64(0xa3);
    for case in 0..CASES {
        let keep = meta.random_range(0.05..0.95f64);
        let corr = meta.random_range(0.0..1.0f64);
        let seed = meta.random_range(0..500u64);
        let db = generate_synthetic(
            &SyntheticConfig {
                n_parent: 60,
                ..Default::default()
            },
            seed,
        );
        let n = db.table("tb").unwrap().n_rows();
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), keep, corr);
        cfg.seed = seed;
        let sc = apply_removal(&db, &cfg);
        assert_eq!(
            sc.incomplete.table("tb").unwrap().n_rows(),
            (keep * n as f64).round() as usize,
            "case {case}: keep {keep}, corr {corr}, seed {seed}"
        );
    }
}

/// Hash join row count equals the nested-loop reference on random data.
#[test]
fn hash_join_matches_nested_loop() {
    use restore::db::{hash_join, DataType, Field, Table, Value};
    let mut meta = StdRng::seed_from_u64(0xa4);
    for case in 0..CASES {
        let nl = meta.random_range(1..40usize);
        let nr = meta.random_range(1..40usize);
        let left_keys: Vec<i64> = (0..nl).map(|_| meta.random_range(0..8i64)).collect();
        let right_keys: Vec<i64> = (0..nr).map(|_| meta.random_range(0..8i64)).collect();
        let mut l = Table::new("l", vec![Field::new("k", DataType::Int)]);
        for &k in &left_keys {
            l.push_row(&[Value::Int(k)]).unwrap();
        }
        let mut r = Table::new("r", vec![Field::new("k", DataType::Int)]);
        for &k in &right_keys {
            r.push_row(&[Value::Int(k)]).unwrap();
        }
        let out = hash_join(&l, "k", &r, "k", "j").unwrap();
        let expect: usize = left_keys
            .iter()
            .map(|lk| right_keys.iter().filter(|rk| *rk == lk).count())
            .sum();
        assert_eq!(out.table.n_rows(), expect, "case {case}");
    }
}

/// Grouped COUNT totals the table size for any grouping column.
#[test]
fn group_counts_partition_the_table() {
    use restore::db::{aggregate, Agg, DataType, Field, Table, Value};
    let mut meta = StdRng::seed_from_u64(0xa5);
    for case in 0..CASES {
        let n = meta.random_range(1..60usize);
        let keys: Vec<i64> = (0..n).map(|_| meta.random_range(0..5i64)).collect();
        let mut t = Table::new("t", vec![Field::new("g", DataType::Int)]);
        for &k in &keys {
            t.push_row(&[Value::Int(k)]).unwrap();
        }
        let out = aggregate(&t, &["g".to_string()], &[Agg::CountStar]).unwrap();
        let total: i64 = (0..out.n_rows())
            .map(|r| out.value(r, 1).as_i64().unwrap())
            .sum();
        assert_eq!(total as usize, keys.len(), "case {case}");
    }
}
