//! Reproducibility: every stochastic component is seeded, so the whole
//! pipeline must be bit-identical across runs with the same seed and
//! different across seeds.

use restore::core::{ReStore, RestoreConfig, TrainConfig};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{Agg, Query};

fn pipeline(seed: u64, query_seed: u64) -> f64 {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = seed;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 5,
            hidden: vec![24, 24],
            min_steps: 150,
            ..TrainConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    let q = Query::new(["tb"]).aggregate(Agg::CountStar);
    rs.execute(&q, query_seed).unwrap().scalar().unwrap()
}

#[test]
fn same_seed_same_answer() {
    assert_eq!(pipeline(11, 1), pipeline(11, 1));
}

#[test]
fn different_completion_seed_changes_sampling() {
    // Different query seeds resample the synthesized tuples; COUNTs may
    // coincide, so check over several seeds that at least one differs.
    let base = pipeline(11, 1);
    let any_different = (2..6).any(|qs| pipeline(11, qs) != base);
    assert!(
        any_different,
        "sampling should depend on the completion seed"
    );
}

/// The batching contract of the completion engine: for a fixed batch size
/// the sampled completion is bit-identical under any worker count.
#[test]
fn worker_count_never_changes_the_completion() {
    use restore::core::{
        Completer, CompleterConfig, CompletionModel, CompletionPath, SchemaAnnotation,
    };

    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        21,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 21;
    let sc = apply_removal(&db, &removal);
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    let cfg = TrainConfig {
        epochs: 5,
        hidden: vec![24, 24],
        min_steps: 150,
        ..TrainConfig::default()
    };
    let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 21).unwrap();

    let complete_with = |workers: usize| {
        let ccfg = CompleterConfig {
            batch_size: 64,
            workers,
            ..CompleterConfig::default()
        };
        let completer = Completer::new(&sc.incomplete, &ann).with_config(ccfg);
        completer.complete(&model, 9).unwrap()
    };
    let serial = complete_with(1);
    for workers in [2, 8] {
        let parallel = complete_with(workers);
        assert_eq!(serial.join.n_rows(), parallel.join.n_rows());
        for r in 0..serial.join.n_rows() {
            assert_eq!(
                serial.join.row(r),
                parallel.join.row(r),
                "row {r} differs at {workers} workers"
            );
        }
        assert_eq!(serial.syn, parallel.syn);
        assert_eq!(serial.tf, parallel.tf);
    }
}

/// Cross-engine sampling contract: the no-grad batched sampler draws the
/// exact token sequence a tape-driven sampler would (per attribute, rows
/// in order, one categorical draw per row) — the reference below runs the
/// sampling loop through the *training* engine, so a change to the
/// batched engine's logits or draw order cannot silently pass.
#[test]
fn batched_sampler_reproduces_tape_driven_sampling() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restore::nn::{
        sample_categorical, AttrSpec, InferenceSession, Made, MadeConfig, ParamStore, Tape,
    };
    use std::sync::Arc;

    let mut rng = StdRng::seed_from_u64(31);
    let mut store = ParamStore::new();
    let attrs = vec![
        AttrSpec::new(6, 4),
        AttrSpec::new(4, 4),
        AttrSpec::new(8, 4),
    ];
    let made = Made::new(
        MadeConfig::new(attrs).with_hidden(vec![24, 24]),
        &mut store,
        &mut rng,
    );
    for n in [1usize, 7, 33] {
        let base: Vec<Arc<Vec<u32>>> = vec![
            Arc::new((0..n as u32).map(|r| r % 6).collect()),
            Arc::new(vec![0; n]),
            Arc::new(vec![0; n]),
        ];
        // Reference: the same iterative sampling driven through the tape.
        let mut tape_cols = base.clone();
        let mut rng_a = StdRng::seed_from_u64(77);
        for attr in 1..3 {
            let mut tape = Tape::new();
            let out = made.forward(&mut tape, &store, &tape_cols, None);
            let logits = tape.value(out);
            let sampled: Vec<u32> = (0..n)
                .map(|r| {
                    let dist = made.layout().dist(logits.row(r), attr);
                    sample_categorical(&dist, &mut rng_a)
                })
                .collect();
            tape_cols[attr] = Arc::new(sampled);
        }
        // Engine under test: the batched no-grad sampler.
        let mut engine_cols = base.clone();
        let mut session = InferenceSession::new();
        let mut rng_b = StdRng::seed_from_u64(77);
        made.sample_range_in(
            &mut session,
            &store,
            &mut engine_cols,
            None,
            1,
            3,
            &[],
            &mut rng_b,
        );
        assert_eq!(
            tape_cols, engine_cols,
            "batched sampler diverged from tape-driven sampling at batch size {n}"
        );
    }
}

/// Wiring contract for the encode-once path: sampling through the
/// pre-encoded API one row at a time (what `Completer` issues at
/// `batch_size: 1`) matches the self-encoding `sample_table_columns`
/// wrapper under the same derived seeds. The *engine-level* single-row
/// contract — that these draws equal an independent tape-driven
/// sampler's — is pinned by `batched_sampler_reproduces_tape_driven_sampling`
/// above (which includes batch size 1); this test additionally covers the
/// token-encoding and context wiring of the model layer.
#[test]
fn batch_of_one_reproduces_single_row_sampling() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restore::core::{CompletionModel, CompletionPath, SchemaAnnotation};
    use restore::util::derive_seed;

    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        22,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 22;
    let sc = apply_removal(&db, &removal);
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    let cfg = TrainConfig {
        epochs: 5,
        hidden: vec![24, 24],
        min_steps: 150,
        ..TrainConfig::default()
    };
    let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 22).unwrap();

    let ta = sc.incomplete.table("ta").unwrap().qualified();
    let tf_slots: Vec<Vec<Option<i64>>> = vec![vec![None; ta.n_rows()]];
    let encoded = model.encode_tokens(&ta, &tf_slots);
    let base = 7u64;
    for (i, r) in (0..30usize).enumerate() {
        let seed = derive_seed(base, i as u64);
        // Batched engine, batch of exactly one row.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let batched = model
            .sample_table_columns_encoded(&ta, &encoded, 1, &[r], &mut rng_a)
            .unwrap();
        // Single-row API (re-encodes internally).
        let mut rng_b = StdRng::seed_from_u64(seed);
        let single = model
            .sample_table_columns(&ta, &tf_slots, 1, &[r], &mut rng_b)
            .unwrap();
        assert_eq!(
            batched, single,
            "row {r} diverged between B=1 and single-row path"
        );
    }
}

#[test]
fn different_data_seed_changes_data() {
    let db1 = generate_synthetic(&SyntheticConfig::default(), 1);
    let db2 = generate_synthetic(&SyntheticConfig::default(), 2);
    let t1 = db1.table("tb").unwrap();
    let t2 = db2.table("tb").unwrap();
    let differs = t1.n_rows() != t2.n_rows()
        || (0..t1.n_rows().min(t2.n_rows())).any(|r| t1.row(r) != t2.row(r));
    assert!(differs);
}
