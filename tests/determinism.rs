//! Reproducibility: every stochastic component is seeded, so the whole
//! pipeline must be bit-identical across runs with the same seed and
//! different across seeds.

use restore::core::{ReStore, RestoreConfig, TrainConfig};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{Agg, Query};

fn pipeline(seed: u64, query_seed: u64) -> f64 {
    let db = generate_synthetic(&SyntheticConfig { n_parent: 150, ..Default::default() }, seed);
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = seed;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig { epochs: 5, hidden: vec![24, 24], min_steps: 150, ..TrainConfig::default() },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    let q = Query::new(["tb"]).aggregate(Agg::CountStar);
    rs.execute(&q, query_seed).unwrap().scalar().unwrap()
}

#[test]
fn same_seed_same_answer() {
    assert_eq!(pipeline(11, 1), pipeline(11, 1));
}

#[test]
fn different_completion_seed_changes_sampling() {
    // Different query seeds resample the synthesized tuples; COUNTs may
    // coincide, so check over several seeds that at least one differs.
    let base = pipeline(11, 1);
    let any_different = (2..6).any(|qs| pipeline(11, qs) != base);
    assert!(any_different, "sampling should depend on the completion seed");
}

#[test]
fn different_data_seed_changes_data() {
    let db1 = generate_synthetic(&SyntheticConfig::default(), 1);
    let db2 = generate_synthetic(&SyntheticConfig::default(), 2);
    let t1 = db1.table("tb").unwrap();
    let t2 = db2.table("tb").unwrap();
    let differs = t1.n_rows() != t2.n_rows()
        || (0..t1.n_rows().min(t2.n_rows())).any(|r| t1.row(r) != t2.row(r));
    assert!(differs);
}
