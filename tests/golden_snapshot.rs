//! Golden snapshot fixture: a committed v1-format snapshot file that
//! today's loader must read and serve **byte-for-byte** as pinned when it
//! was created. This is the cross-PR format-compatibility gate — any
//! change to the on-disk layout, the rehydration path, or serving
//! numerics breaks it, and the only sanctioned escape is bumping
//! `SNAPSHOT_FORMAT_VERSION` and regenerating the fixture (run the
//! `#[ignore]`d `regenerate_golden_fixture` test and commit both files).

use std::path::PathBuf;

use restore_bench::{result_fingerprint as fingerprint, serving_workload as workload};

use restore::core::{
    CompleterConfig, ConfidenceQuery, ReStore, RestoreConfig, Snapshot, TrainConfig,
    SNAPSHOT_FORMAT_VERSION,
};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

fn fixture_path() -> PathBuf {
    fixture_dir().join("golden_v1.snap")
}

fn expected_path() -> PathBuf {
    fixture_dir().join("golden_v1_expected.txt")
}

/// The fixture's serving transcript: the shared workload under two seeds,
/// plus one confidence interval — small but covering every execution path.
fn transcript(snapshot: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    for q in workload() {
        for seed in [1u64, 9] {
            out.push(fingerprint(&snapshot.execute(&q, seed).expect("execute")));
        }
    }
    let tables = vec!["ta".to_string(), "tb".to_string()];
    let cq = ConfidenceQuery::CountFraction {
        table: "tb".into(),
        column: "b".into(),
        value: "b0".into(),
    };
    let ci = snapshot
        .confidence(&tables, &cq, 0.95, 1)
        .expect("confidence");
    out.push(format!(
        "ci:{:016x},{:016x},{:016x}",
        ci.lo.to_bits(),
        ci.hi.to_bits(),
        ci.estimate.to_bits()
    ));
    out
}

/// Builds the snapshot behind the fixture — deliberately tiny (60 parents,
/// 8×8 hidden layers, 1 epoch) so the committed file stays a few KB.
fn build_golden() -> Snapshot {
    let db = generate_synthetic(
        &SyntheticConfig {
            predictability: 0.9,
            n_parent: 60,
            ..Default::default()
        },
        41,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 41;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 1,
            min_steps: 20,
            hidden: vec![8, 8],
            max_train_rows: 500,
            workers: 1,
            ..TrainConfig::default()
        },
        completer: CompleterConfig {
            workers: 1,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    rs.train(41).expect("train");
    for q in workload() {
        rs.ensure_query_models(&q.tables, 41).expect("ensure");
    }
    rs.seal(41)
}

#[test]
fn golden_fixture_loads_and_serves_pinned_results() {
    assert_eq!(
        SNAPSHOT_FORMAT_VERSION, 1,
        "format version changed: regenerate the golden fixture \
         (cargo test --test golden_snapshot -- --ignored) and rename it"
    );
    let snapshot = Snapshot::load(&fixture_path()).expect(
        "committed golden_v1.snap must load with today's loader \
         (format change without a version bump?)",
    );
    assert_eq!(snapshot.serve_seed(), Some(41));
    let expected: Vec<String> = std::fs::read_to_string(expected_path())
        .expect("committed golden_v1_expected.txt")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        transcript(&snapshot),
        expected,
        "golden snapshot no longer serves its pinned results byte-for-byte"
    );
}

/// Regenerates the committed fixture + expected transcript. Run manually
/// after an intentional format bump:
/// `cargo test --test golden_snapshot -- --ignored`
#[test]
#[ignore = "regenerates the committed fixture; run only on format bumps"]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all(fixture_dir()).expect("fixtures dir");
    let snapshot = build_golden();
    let bytes = snapshot.save(&fixture_path()).expect("save fixture");
    let mut expected = transcript(&snapshot).join("\n");
    expected.push('\n');
    std::fs::write(expected_path(), expected).expect("write expected");
    println!(
        "regenerated {} ({bytes} bytes) and {}",
        fixture_path().display(),
        expected_path().display()
    );
}
