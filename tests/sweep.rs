//! Equality contract of the band-incremental autoregressive sweep: with
//! `MadeConfig::incremental_sweep` on (the default), block logits and
//! sampled tokens must be **bit-identical** to the full-recompute
//! reference path (the escape hatch), across ragged batch shapes, resumed
//! ranges (`start > 0`), excluded tokens, and the SSAR DeepSets context —
//! all over warm, reused sessions, the way the completion engine runs it.
//! Worker-count invariance of completions under the sweep is pinned by
//! `tests/determinism.rs::worker_count_never_changes_the_completion`,
//! which runs with the sweep on by default.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore::nn::{
    AttrSpec, DeepSets, DeepSetsConfig, InferenceSession, Made, MadeConfig, ParamStore, SetBatch,
    SetTableSpec, TableSet,
};

const CARDS: [usize; 4] = [7, 5, 9, 4];

/// A `(sweep, full-recompute)` pair of the same trained-shape model: equal
/// weights, only the engine flag differs.
fn made_pair(ctx_dim: usize, hidden: Vec<usize>, seed: u64) -> (Made, Made, ParamStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let attrs = CARDS.iter().map(|&c| AttrSpec::new(c, 4)).collect();
    let cfg = MadeConfig::new(attrs).with_ctx(ctx_dim).with_hidden(hidden);
    let made = Made::new(cfg, &mut store, &mut rng);
    assert!(made.incremental_sweep(), "sweep must be the default");
    let mut full = made.clone();
    full.set_incremental_sweep(false);
    (made, full, store)
}

fn tokens(n: usize) -> Vec<Arc<Vec<u32>>> {
    CARDS
        .iter()
        .enumerate()
        .map(|(a, &card)| {
            Arc::new(
                (0..n as u32)
                    .map(|r| (r + a as u32) % card as u32)
                    .collect(),
            )
        })
        .collect()
}

fn assert_bits_eq(a: &restore::nn::Matrix, b: &restore::nn::Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value diverged");
    }
}

/// Every attribute's logit block from the sweep equals the full-trunk
/// block bit for bit, with one warm session per engine reused across
/// ragged batch shapes — and both equal the full-logits slice.
#[test]
fn sweep_block_logits_bit_identical_across_ragged_shapes() {
    // Residual trunk, non-residual ragged trunk, and a single hidden layer.
    for (hidden, seed) in [(vec![32, 32], 51u64), (vec![32, 16], 52), (vec![24], 53)] {
        let (sweep, full, store) = made_pair(0, hidden.clone(), seed);
        let mut s_sweep = InferenceSession::new();
        let mut s_full = InferenceSession::new();
        for &n in &[33usize, 1, 17, 33, 3] {
            let toks = tokens(n);
            let logits = sweep.logits(&store, &toks, None);
            for attr in 0..CARDS.len() {
                let a = sweep
                    .logits_attr_in(&mut s_sweep, &store, &toks, None, attr)
                    .clone();
                let b = full
                    .logits_attr_in(&mut s_full, &store, &toks, None, attr)
                    .clone();
                assert_bits_eq(&a, &b, &format!("hidden {hidden:?} n {n} attr {attr}"));
                let (off, card) = sweep.layout().block(attr);
                for r in 0..n {
                    assert_eq!(a.row(r), &logits.row(r)[off..off + card]);
                }
            }
        }
    }
}

/// The sweep sampler draws the exact token sequence of the full-recompute
/// sampler — including the RNG stream position afterwards — for resumed
/// ranges (`start > 0`) and partial ends.
#[test]
fn sweep_sampling_bit_identical_and_rng_aligned() {
    let (sweep, full, store) = made_pair(0, vec![32, 32], 54);
    let mut s_sweep = InferenceSession::new();
    let mut s_full = InferenceSession::new();
    for &n in &[1usize, 7, 33] {
        for start in 0..CARDS.len() {
            for end in start..=CARDS.len() {
                let base = tokens(n);
                let mut cols_a = base.clone();
                let mut rng_a = StdRng::seed_from_u64(1000 + start as u64);
                sweep.sample_range_in(
                    &mut s_sweep,
                    &store,
                    &mut cols_a,
                    None,
                    start,
                    end,
                    &[],
                    &mut rng_a,
                );
                let mut cols_b = base.clone();
                let mut rng_b = StdRng::seed_from_u64(1000 + start as u64);
                full.sample_range_in(
                    &mut s_full,
                    &store,
                    &mut cols_b,
                    None,
                    start,
                    end,
                    &[],
                    &mut rng_b,
                );
                assert_eq!(
                    cols_a, cols_b,
                    "tokens diverged at n {n} range {start}..{end}"
                );
                // Same number of draws consumed → streams stay aligned.
                assert_eq!(
                    rand::Rng::random::<u64>(&mut rng_a),
                    rand::Rng::random::<u64>(&mut rng_b),
                    "RNG streams misaligned at n {n} range {start}..{end}"
                );
            }
        }
    }
}

/// Excluded tokens are forwarded into the sweep unchanged: the exclusion
/// renormalization matches the reference path bit for bit and the
/// excluded token never appears.
#[test]
fn sweep_respects_excluded_tokens() {
    let (sweep, full, store) = made_pair(0, vec![32, 32], 55);
    let excluded = [None, Some(3u32), None, Some(0)];
    let mut s_sweep = InferenceSession::new();
    let mut s_full = InferenceSession::new();
    let base = tokens(64);
    let mut cols_a = base.clone();
    let mut rng_a = StdRng::seed_from_u64(9);
    sweep.sample_range_in(
        &mut s_sweep,
        &store,
        &mut cols_a,
        None,
        1,
        4,
        &excluded,
        &mut rng_a,
    );
    let mut cols_b = base.clone();
    let mut rng_b = StdRng::seed_from_u64(9);
    full.sample_range_in(
        &mut s_full,
        &store,
        &mut cols_b,
        None,
        1,
        4,
        &excluded,
        &mut rng_b,
    );
    assert_eq!(cols_a, cols_b, "excluded-token sampling diverged");
    assert!(cols_a[1].iter().all(|&t| t != 3), "excluded token sampled");
    assert!(cols_a[3].iter().all(|&t| t != 0), "excluded token sampled");
}

/// The SSAR path: a DeepSets-encoded context conditions the sweep exactly
/// as it conditions the full trunk (degree-0 hidden bands exist and are
/// computed at setup), for both block logits and sampling.
#[test]
fn sweep_matches_full_path_under_deepsets_context() {
    let mut rng = StdRng::seed_from_u64(56);
    let mut store = ParamStore::new();
    let ds_cfg = DeepSetsConfig {
        tables: vec![SetTableSpec::new(vec![6, 4], 4, 8)],
        ctx_dim: 5,
        post_hidden: 16,
    };
    let ds = DeepSets::new(&ds_cfg, &mut store, &mut rng);
    let attrs = CARDS.iter().map(|&c| AttrSpec::new(c, 4)).collect();
    let made = Made::new(
        MadeConfig::new(attrs).with_ctx(5).with_hidden(vec![24, 24]),
        &mut store,
        &mut rng,
    );
    let mut full = made.clone();
    full.set_incremental_sweep(false);

    let n = 9;
    let batch = SetBatch {
        tables: vec![TableSet {
            tokens: vec![
                Arc::new(vec![0, 1, 2, 3, 4, 5, 0, 1]),
                Arc::new(vec![3, 2, 1, 0, 3, 2, 1, 0]),
            ],
            segments: Arc::new(vec![0, 0, 1, 2, 4, 4, 4, 8]),
        }],
    };
    let mut s_sweep = InferenceSession::new();
    let mut s_full = InferenceSession::new();
    let ctx = ds.encode_in(&mut s_sweep, &store, &batch, n).clone();
    let toks = tokens(n);
    for attr in 0..CARDS.len() {
        let a = made
            .logits_attr_in(&mut s_sweep, &store, &toks, Some(&ctx), attr)
            .clone();
        let b = full
            .logits_attr_in(&mut s_full, &store, &toks, Some(&ctx), attr)
            .clone();
        assert_bits_eq(&a, &b, &format!("ctx attr {attr}"));
    }
    let mut cols_a = toks.clone();
    let mut rng_a = StdRng::seed_from_u64(4);
    made.sample_range_in(
        &mut s_sweep,
        &store,
        &mut cols_a,
        Some(&ctx),
        0,
        4,
        &[],
        &mut rng_a,
    );
    let mut cols_b = toks.clone();
    let mut rng_b = StdRng::seed_from_u64(4);
    full.sample_range_in(
        &mut s_full,
        &store,
        &mut cols_b,
        Some(&ctx),
        0,
        4,
        &[],
        &mut rng_b,
    );
    assert_eq!(cols_a, cols_b, "ctx-conditioned sampling diverged");
}

/// End to end through the system: a trained completion model produces a
/// bit-identical completed join with the sweep on (default) and off, and
/// the sweep result is worker-count invariant against the sweep-off
/// serial reference.
#[test]
fn completion_is_bit_identical_with_and_without_sweep() {
    use restore::core::{
        Completer, CompleterConfig, CompletionModel, CompletionPath, SchemaAnnotation, TrainConfig,
    };
    use restore::data::{
        apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig,
    };

    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        33,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 33;
    let sc = apply_removal(&db, &removal);
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    let cfg = TrainConfig {
        epochs: 5,
        hidden: vec![24, 24],
        min_steps: 150,
        ..TrainConfig::default()
    };
    let mut model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 33).unwrap();

    let complete_with = |model: &CompletionModel, workers: usize| {
        let ccfg = CompleterConfig {
            batch_size: 64,
            workers,
            ..CompleterConfig::default()
        };
        Completer::new(&sc.incomplete, &ann)
            .with_config(ccfg)
            .complete(model, 5)
            .unwrap()
    };
    let swept = complete_with(&model, 1);
    let swept_parallel = complete_with(&model, 4);
    model.set_incremental_sweep(false);
    let reference = complete_with(&model, 1);

    for out in [&swept, &swept_parallel] {
        assert_eq!(reference.join.n_rows(), out.join.n_rows());
        for r in 0..reference.join.n_rows() {
            assert_eq!(reference.join.row(r), out.join.row(r), "row {r} differs");
        }
        assert_eq!(reference.syn, out.syn);
        assert_eq!(reference.tf, out.tf);
    }
}
