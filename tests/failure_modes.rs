//! Failure injection: the system must degrade with clear errors, not
//! panics, when data is degenerate or requests are malformed.

use restore::core::{
    CompletionPath, CoreError, ReStore, RestoreConfig, SchemaAnnotation, TrainConfig,
};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{Agg, DataType, Database, Field, ForeignKey, Query, Table, Value};

fn quick_config() -> RestoreConfig {
    RestoreConfig {
        train: TrainConfig {
            epochs: 4,
            hidden: vec![16, 16],
            min_steps: 100,
            ..TrainConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    }
}

#[test]
fn unknown_table_in_query_errors() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 40,
            ..Default::default()
        },
        601,
    );
    let mut rs = ReStore::new(db, quick_config());
    rs.mark_incomplete("tb");
    let q = Query::new(["nonexistent"]).aggregate(Agg::CountStar);
    assert!(rs.execute(&q, 601).is_err());
}

#[test]
fn incomplete_table_without_evidence_errors() {
    // A lone table with no FK neighbors has no completion path.
    let mut db = Database::new();
    let mut t = Table::new(
        "island",
        vec![
            Field::new("id", DataType::Int),
            Field::new("x", DataType::Float),
        ],
    );
    for i in 0..50 {
        t.push_row(&[Value::Int(i), Value::Float(i as f64)])
            .unwrap();
    }
    db.add_table(t);
    let mut rs = ReStore::new(db, quick_config());
    rs.mark_incomplete("island");
    let q = Query::new(["island"]).aggregate(Agg::CountStar);
    let err = rs.execute(&q, 602).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::NoPath(_) | CoreError::NoModel(_) | CoreError::Invalid(_)
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn nearly_empty_incomplete_table_fails_training_gracefully() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 30,
            ..Default::default()
        },
        603,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.02, 0.0);
    removal.seed = 603;
    let sc = apply_removal(&db, &removal);
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    let result = restore::core::CompletionModel::train(
        &sc.incomplete,
        &ann,
        path,
        &quick_config().train,
        603,
    );
    assert!(matches!(result, Err(CoreError::InsufficientData(_))));
}

#[test]
fn constant_attribute_is_handled() {
    // A degenerate (constant) attribute must not break training/completion.
    let mut db = Database::new();
    let mut parent = Table::new(
        "p",
        vec![
            Field::new("id", DataType::Int),
            Field::new("a", DataType::Str),
        ],
    );
    let mut child = Table::new(
        "c",
        vec![
            Field::new("id", DataType::Int),
            Field::new("p_id", DataType::Int),
            Field::new("x", DataType::Str),
        ],
    );
    for i in 0..40 {
        parent
            .push_row(&[Value::Int(i), Value::str("same")])
            .unwrap();
        for j in 0..3 {
            child
                .push_row(&[Value::Int(i * 3 + j), Value::Int(i), Value::str("only")])
                .unwrap();
        }
    }
    db.add_table(parent);
    db.add_table(child);
    db.add_foreign_key(ForeignKey::new("c", "p_id", "p", "id"))
        .unwrap();
    // Remove a third of the children.
    let mut removal = RemovalConfig::new(BiasSpec::categorical("c", "x"), 0.66, 0.3);
    removal.seed = 604;
    let sc = apply_removal(&db, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("c");
    let q = Query::new(["c"]).aggregate(Agg::CountStar);
    let completed = rs.execute(&q, 604).unwrap().scalar().unwrap();
    assert!(
        completed > 70.0,
        "completion should restore the constant-attr table, got {completed}"
    );
}

#[test]
fn nulls_in_evidence_are_tolerated() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 80,
            ..Default::default()
        },
        605,
    );
    // Null out some evidence values.
    let mut ta = db.table("ta").unwrap().clone();
    let mut nulled = Table::new("ta", ta.fields().to_vec());
    for r in 0..ta.n_rows() {
        let mut row = ta.row(r);
        if r % 7 == 0 {
            row[1] = Value::Null;
        }
        nulled.push_row(&row).unwrap();
    }
    ta = nulled;
    let mut db2 = db.clone();
    db2.replace_table(ta);
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 605;
    let sc = apply_removal(&db2, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("tb");
    let q = Query::new(["tb"]).aggregate(Agg::CountStar);
    assert!(
        rs.execute(&q, 605).is_ok(),
        "NULL evidence must not break completion"
    );
}

#[test]
fn forced_path_must_end_at_target() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 40,
            ..Default::default()
        },
        606,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 606;
    let sc = apply_removal(&db, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("tb");
    let err = rs
        .set_selected_path("tb", &["tb".to_string(), "ta".to_string()], 606)
        .unwrap_err();
    assert!(matches!(err, CoreError::Invalid(_)));
}
