//! Concurrent serving contract: an `Arc<Snapshot>` serves any number of
//! threads through `&self`, results are **bit-identical** to serial
//! execution (a pure function of `(snapshot, query, seed)`), cold paths
//! synthesize exactly once under single-flight, and the cache honors its
//! memory budget.

use std::sync::Arc;

use restore_bench::{result_fingerprint as fingerprint, serving_workload as workload};

use restore::core::{CompleterConfig, ReStore, RestoreConfig, Snapshot, TrainConfig};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::db::{Agg, Query};

fn quick_config() -> RestoreConfig {
    RestoreConfig {
        train: TrainConfig {
            epochs: 3,
            min_steps: 60,
            hidden: vec![24, 24],
            max_train_rows: 2_000,
            workers: 1,
            ..TrainConfig::default()
        },
        completer: CompleterConfig {
            workers: 1,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    }
}

fn build_restore(seed: u64) -> ReStore {
    let db = generate_synthetic(
        &SyntheticConfig {
            predictability: 0.9,
            n_parent: 150,
            ..Default::default()
        },
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = seed;
    let sc = apply_removal(&db, &removal);
    let mut rs = ReStore::new(sc.incomplete.clone(), quick_config());
    rs.mark_incomplete("tb");
    rs
}

/// Builds a sealed snapshot with every workload model trained.
fn sealed(seed: u64) -> Arc<Snapshot> {
    let mut rs = build_restore(seed);
    rs.train(seed).expect("train");
    for q in workload() {
        rs.ensure_query_models(&q.tables, seed).expect("ensure");
    }
    Arc::new(rs.seal(seed))
}

#[test]
fn concurrent_execution_is_bit_identical_to_serial() {
    let queries = workload();
    let seeds: Vec<u64> = vec![11, 12, 13];

    // Serial reference on a fresh snapshot.
    let serial_snap = sealed(31);
    let mut reference = Vec::new();
    for q in &queries {
        for &s in &seeds {
            reference.push(fingerprint(&serial_snap.execute(q, s).unwrap()));
        }
    }

    // ≥4 threads over one fresh shared snapshot, same and different
    // queries, each thread in a different order.
    let snap = sealed(31);
    let barrier = Arc::new(std::sync::Barrier::new(5));
    let mut handles = Vec::new();
    for t in 0..5usize {
        let (snap, queries, seeds, barrier) = (
            Arc::clone(&snap),
            queries.clone(),
            seeds.clone(),
            Arc::clone(&barrier),
        );
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let n = queries.len() * seeds.len();
            let mut results = vec![String::new(); n];
            for k in 0..n {
                let idx = (k + t * 5) % n;
                let (qi, si) = (idx / seeds.len(), idx % seeds.len());
                results[idx] = fingerprint(&snap.execute(&queries[qi], seeds[si]).unwrap());
            }
            results
        }));
    }
    for (t, h) in handles.into_iter().enumerate() {
        let results = h.join().expect("serving thread");
        assert_eq!(
            results, reference,
            "thread {t} diverged from serial execution"
        );
    }
}

#[test]
fn single_flight_synthesizes_each_path_once() {
    // 8 threads hammer the same single completion path on a cold cache.
    let snap = sealed(32);
    assert!(snap.cached_completions().is_empty(), "cache starts cold");
    let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let (snap, q, barrier) = (Arc::clone(&snap), q.clone(), Arc::clone(&barrier));
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            snap.execute(&q, 100 + t).unwrap().scalar().unwrap()
        }));
    }
    let answers: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Same completed join underneath ⇒ identical COUNT(*) for every seed
    // (the count does not depend on the per-query thinning RNG here, and
    // the synthesis seed is path-derived, not query-derived).
    let stats = snap.full_cache_stats();
    let distinct_paths = snap.cached_completions().len() as u64;
    assert_eq!(distinct_paths, 1, "one chain serves this workload");
    assert_eq!(
        stats.misses, distinct_paths,
        "misses must count distinct paths, not the 8 requests: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.waits + stats.misses,
        8,
        "every request is a hit, a single-flight wait, or the one miss: {stats:?}"
    );
    assert!(
        answers.iter().all(|a| a.to_bits() == answers[0].to_bits()),
        "all threads must see the same completed join: {answers:?}"
    );
}

#[test]
fn sealed_results_do_not_depend_on_which_query_warmed_the_cache() {
    // Pure-function contract: execute(q, s) is the same whether the path
    // was first synthesized by this query or by an unrelated one.
    let q_count = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
    let q_group = Query::new(["ta", "tb"])
        .group_by(["b"])
        .aggregate(Agg::CountStar);

    let a = sealed(33);
    let first = fingerprint(&a.execute(&q_count, 5).unwrap());

    let b = sealed(33);
    // Different warm-up query, different seed populates the cache…
    b.execute(&q_group, 999).unwrap();
    let second = fingerprint(&b.execute(&q_count, 5).unwrap());
    assert_eq!(first, second, "cache population order leaked into results");
}

#[test]
fn seal_rewarms_build_cache_under_the_serve_seed() {
    // A cache warmed during the build phase (legacy query-derived seeds)
    // must not leak into sealed results: seal re-synthesizes each chain
    // under the serve seed, so a warm-sealed and a cold-sealed snapshot
    // serve identical bits — before *and* after any eviction.
    let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);

    let mut rs = build_restore(37);
    rs.train(37).expect("train");
    rs.ensure_query_models(&q.tables, 37).expect("ensure");
    rs.execute(&q, 12345).unwrap(); // warms the facade cache, seed 12345
    let warm = Arc::new(rs.seal(37));
    let stats = warm.full_cache_stats();
    assert!(stats.entries >= 1, "seal must arrive pre-warmed: {stats:?}");

    let cold = sealed(37);
    assert_eq!(
        fingerprint(&warm.execute(&q, 5).unwrap()),
        fingerprint(&cold.execute(&q, 5).unwrap()),
        "build-time cache contents leaked into sealed results"
    );
    // The pre-warmed entry serves the first query as a hit.
    assert!(warm.full_cache_stats().hits >= 1);
}

#[test]
fn snapshot_serves_through_shared_reference() {
    // The compile-time shape of the tentpole: all serving methods on &self
    // behind an Arc, no locks in user code.
    let snap = sealed(34);
    let snap2 = Arc::clone(&snap);
    let q = Query::new(["tb"]).aggregate(Agg::CountStar);
    let r1 = snap.execute(&q, 1).unwrap();
    let t = snap2.completed_table("tb", 1).unwrap();
    assert!(t.n_rows() > 0);
    assert!(r1.scalar().is_some());
    // Confidence intervals also serve from &self.
    let ci = snap.confidence(
        &["ta".to_string(), "tb".to_string()],
        &restore::core::ConfidenceQuery::CountFraction {
            table: "tb".into(),
            column: "b".into(),
            value: "b1".into(),
        },
        0.95,
        1,
    );
    assert!(ci.is_ok(), "confidence must serve from &self: {ci:?}");
}

/// A parent with two incomplete children → two distinct completion chains
/// (`p→c1`, `p→c2`), so eviction under a one-entry budget is observable
/// end-to-end.
fn two_chain_restore(budget: usize, seed: u64) -> ReStore {
    use restore::db::{DataType, Database, Field, ForeignKey, Table, Value};
    let mut db = Database::new();
    let mut parent = Table::new(
        "p",
        vec![
            Field::new("id", DataType::Int),
            Field::new("a", DataType::Str),
        ],
    );
    let mut c1 = Table::new(
        "c1",
        vec![
            Field::new("id", DataType::Int),
            Field::new("p_id", DataType::Int),
            Field::new("x", DataType::Str),
        ],
    );
    let mut c2 = Table::new(
        "c2",
        vec![
            Field::new("id", DataType::Int),
            Field::new("p_id", DataType::Int),
            Field::new("y", DataType::Str),
        ],
    );
    for i in 0..60i64 {
        parent
            .push_row(&[Value::Int(i), Value::str(format!("a{}", i % 5))])
            .unwrap();
        for j in 0..3i64 {
            c1.push_row(&[
                Value::Int(i * 3 + j),
                Value::Int(i),
                Value::str(format!("x{}", i % 5)),
            ])
            .unwrap();
            c2.push_row(&[
                Value::Int(i * 3 + j),
                Value::Int(i),
                Value::str(format!("y{}", (i + j) % 4)),
            ])
            .unwrap();
        }
    }
    db.add_table(parent);
    db.add_table(c1);
    db.add_table(c2);
    db.add_foreign_key(ForeignKey::new("c1", "p_id", "p", "id"))
        .unwrap();
    db.add_foreign_key(ForeignKey::new("c2", "p_id", "p", "id"))
        .unwrap();
    let mut removal = RemovalConfig::new(BiasSpec::categorical("c1", "x"), 0.6, 0.3);
    removal.seed = seed;
    let sc = apply_removal(&db, &removal);
    // Remove rows from c2 as well so both children need completion.
    let mut removal2 = RemovalConfig::new(BiasSpec::categorical("c2", "y"), 0.6, 0.3);
    removal2.seed = seed ^ 1;
    let sc2 = apply_removal(&sc.incomplete, &removal2);

    let mut cfg = quick_config();
    cfg.cache_budget_bytes = budget;
    let mut rs = ReStore::new(sc2.incomplete, cfg);
    rs.mark_incomplete("c1");
    rs.mark_incomplete("c2");
    rs
}

#[test]
fn cache_budget_evicts_lru_end_to_end() {
    let q1 = Query::new(["c1"]).aggregate(Agg::CountStar);
    let q2 = Query::new(["c2"]).aggregate(Agg::CountStar);

    // Probe run (unbounded) to size one completion entry.
    let mut rs = two_chain_restore(0, 36);
    rs.train(36).expect("train");
    for q in [&q1, &q2] {
        rs.ensure_query_models(&q.tables, 36).expect("ensure");
    }
    let probe = rs.seal(36);
    probe.execute(&q1, 1).unwrap();
    let one_entry = probe.full_cache_stats().bytes;
    assert!(one_entry > 0);
    probe.execute(&q2, 1).unwrap();
    assert_eq!(probe.full_cache_stats().entries, 2, "two distinct chains");

    // Budget fits one entry: serving both chains must evict, stay within
    // budget, and keep answering correctly.
    let mut rs = two_chain_restore(one_entry + one_entry / 2, 36);
    rs.train(36).expect("train");
    for q in [&q1, &q2] {
        rs.ensure_query_models(&q.tables, 36).expect("ensure");
    }
    let snap = rs.seal(36);
    let a1 = snap.execute(&q1, 1).unwrap().scalar().unwrap();
    let a2 = snap.execute(&q2, 1).unwrap().scalar().unwrap();
    let stats = snap.full_cache_stats();
    assert!(
        stats.evictions >= 1,
        "second chain must evict the first: {stats:?}"
    );
    assert!(stats.entries <= 2);
    assert!(
        stats.bytes <= snap.config().cache_budget_bytes,
        "resident bytes over budget: {stats:?}"
    );
    // Evicted path re-synthesizes deterministically: same answer as before.
    let a1_again = snap.execute(&q1, 1).unwrap().scalar().unwrap();
    assert_eq!(a1_again.to_bits(), a1.to_bits(), "resynthesis diverged");
    assert!(a2.is_finite());
}
