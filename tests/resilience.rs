//! Ingress resilience plane contract (`restore-serve`):
//!
//! * **admission control** — at most `max_in_flight` `/v1/*` requests run
//!   concurrently; excess sheds with 429 + `Retry-After`, counted in
//!   `/metrics`, and the gate reopens as soon as load passes;
//! * **per-tenant rate limiting** — one hot tenant exhausts its own token
//!   bucket (429 + `Retry-After`) without touching its neighbors;
//! * **deadline budgets** — a request that cannot start its next stage in
//!   budget answers 503 with stage detail instead of holding the line;
//! * **request ids** — every response carries an accept-order
//!   `X-Request-Id`, and a tenant's `/metrics` counters record the id of
//!   its most recent error;
//! * **deterministic chaos** — a seeded `FaultPlan` produces bit-identical
//!   per-request outcome classes across runs and client worker counts, the
//!   server never wedges, and traffic outside the fault window is clean;
//! * **retrying client** — backs off, honors `Retry-After`, recovers from
//!   transient 429s, and gives up cleanly on persistent transport faults;
//! * **drain edge cases** — slow-loris bodies are cut under the deadline,
//!   half-open connections don't block the drain, and shedding during
//!   shutdown still answers.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use restore_bench::sealed_synthetic_snapshot;

use restore::core::wire::QueryRequest;
use restore::core::{Snapshot, SnapshotRegistry};
use restore::db::{Agg, Query};
use restore::serve::{
    ClientConfig, FaultAction, FaultConfig, FaultPlan, HttpClient, RetryPolicy, ServeConfig, Server,
};
use restore::util::json::parse;
use restore::util::{BackoffConfig, RateLimitConfig};

fn snapshot() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| sealed_synthetic_snapshot(51, 51)))
}

fn registry_with(tenants: &[&str]) -> Arc<SnapshotRegistry> {
    let registry = Arc::new(SnapshotRegistry::new());
    for tenant in tenants {
        registry.publish(*tenant, snapshot());
    }
    registry
}

fn query_body() -> String {
    QueryRequest::new(Query::new(["tb"]).aggregate(Agg::CountStar), 1).to_json()
}

/// Parses `/metrics` and digs out a numeric field by path.
fn metric(client: &mut HttpClient, path: &[&str]) -> f64 {
    let (status, body) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200, "{body}");
    let parsed = parse(&body).expect("metrics is valid JSON");
    let mut node = &parsed;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("missing {key} in {body}"));
    }
    node.as_f64().expect("numeric metric")
}

/// Polls until `cond` holds or the timeout elapses.
fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// A fault plan that delays exactly the keys in `window` by `delay`.
fn delay_plan(window: (u64, u64), delay: Duration) -> FaultConfig {
    FaultConfig {
        seed: 1,
        window,
        delay_prob: 1.0,
        delay,
        ..FaultConfig::default()
    }
}

#[test]
fn admission_gate_sheds_with_retry_after_and_recovers() {
    let registry = registry_with(&["t"]);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            max_in_flight: 1,
            fault: Some(delay_plan((1, 2), Duration::from_millis(500))),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let body = query_body();

    // A delayed request (fault key 1) holds the single admission permit…
    let slow = {
        let body = body.clone();
        std::thread::spawn(move || {
            HttpClient::connect(addr)
                .expect("connect")
                .request_full("POST", "/v1/t/query", Some(&body), &[("X-Fault-Key", "1")])
                .expect("slow request")
        })
    };
    assert!(
        wait_until(Duration::from_secs(2), || server.requests_admitted() == 1),
        "the delayed request must be holding the admission permit"
    );

    // …so a concurrent clean request is shed immediately: 429, a computed
    // Retry-After, and an accept-order request id on the response.
    let mut client = HttpClient::connect(addr).expect("connect");
    let shed = client
        .request_full("POST", "/v1/t/query", Some(&body), &[])
        .expect("shed request answers");
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(
        shed.retry_after() >= Some(Duration::from_secs(1)),
        "429 must carry a computed Retry-After: {:?}",
        shed.headers
    );
    assert!(shed.request_id().is_some(), "{:?}", shed.headers);
    assert!(shed.body.contains("capacity"), "{}", shed.body);

    // The slow request itself succeeds — shedding never cancels admitted
    // work — and once the permit frees, the gate reopens.
    let slow = slow.join().expect("slow thread");
    assert_eq!(slow.status, 200, "{}", slow.body);
    let recovered = client
        .request_full("POST", "/v1/t/query", Some(&body), &[])
        .expect("post-overload request");
    assert_eq!(
        recovered.status, 200,
        "gate must reopen: {}",
        recovered.body
    );

    // The shed shows up in /metrics.
    assert!(metric(&mut client, &["requests", "shed"]) >= 1.0);
    assert_eq!(metric(&mut client, &["requests", "admitted"]), 0.0);
    assert!(server.shutdown(), "drain");
}

#[test]
fn rate_limit_is_per_tenant() {
    let registry = registry_with(&["hot", "cold"]);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            // Burst of two, then one token every 10 s: within this test no
            // refill happens, so the outcomes are fully deterministic.
            rate_limit: Some(RateLimitConfig::new(0.1, 2.0)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let body = query_body();

    // The hot tenant burns its burst, then sheds.
    for i in 0..2 {
        let (status, response) = client.post("/v1/hot/query", &body).expect("burst");
        assert_eq!(status, 200, "burst request {i}: {response}");
    }
    let limited = client
        .request_full("POST", "/v1/hot/query", Some(&body), &[])
        .expect("limited request answers");
    assert_eq!(limited.status, 429, "{}", limited.body);
    assert!(limited.body.contains("rate limit"), "{}", limited.body);
    let retry_after = limited.retry_after().expect("Retry-After present");
    // One token at 0.1/s is 10 s away; the header rounds up to whole secs.
    assert!(
        (10..=11).contains(&retry_after.as_secs()),
        "Retry-After should reflect the bucket refill: {retry_after:?}"
    );

    // The cold tenant is untouched by its neighbor's shedding.
    let (status, response) = client.post("/v1/cold/query", &body).expect("cold");
    assert_eq!(status, 200, "{response}");

    // Per-tenant metrics: the shed is attributed to the hot tenant, with
    // the shedding request's id recorded as its latest error.
    let hot_limited = metric(&mut client, &["tenants", "hot", "rate_limited"]);
    assert_eq!(hot_limited, 1.0);
    assert_eq!(
        metric(&mut client, &["tenants", "cold", "rate_limited"]),
        0.0
    );
    assert_eq!(
        metric(&mut client, &["tenants", "hot", "last_error_request_id"]),
        limited.request_id().expect("shed response has an id") as f64
    );
    assert!(server.shutdown(), "drain");
}

#[test]
fn deadline_budget_answers_503_with_stage_detail() {
    let registry = registry_with(&["t"]);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            request_deadline: Duration::from_millis(60),
            // Key 7 is delayed past the whole budget inside admission.
            fault: Some(delay_plan((7, 8), Duration::from_millis(200))),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let body = query_body();

    // An untouched request fits the budget comfortably.
    let (status, response) = client.post("/v1/t/query", &body).expect("fast request");
    assert_eq!(status, 200, "{response}");

    // The delayed request blows its budget and answers 503 with partial
    // progress: the stage it reached and elapsed-vs-budget milliseconds.
    let slow = client
        .request_full("POST", "/v1/t/query", Some(&body), &[("X-Fault-Key", "7")])
        .expect("over-budget request still answers");
    assert_eq!(slow.status, 503, "{}", slow.body);
    for needle in [
        "deadline budget exhausted",
        "\"stage\"",
        "elapsed_ms",
        "budget_ms",
    ] {
        assert!(
            slow.body.contains(needle),
            "missing {needle}: {}",
            slow.body
        );
    }
    assert_eq!(metric(&mut client, &["requests", "deadline_exceeded"]), 1.0);
    assert!(server.shutdown(), "drain");
}

#[test]
fn request_ids_are_accept_ordered_and_threaded_into_metrics() {
    let registry = registry_with(&["t"]);
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let body = query_body();

    let first = client
        .request_full("POST", "/v1/t/query", Some(&body), &[])
        .expect("first");
    let second = client
        .request_full("POST", "/v1/t/query", Some(&body), &[])
        .expect("second");
    let (a, b) = (
        first.request_id().expect("id on every response"),
        second.request_id().expect("id on every response"),
    );
    assert!(b > a, "accept-order ids must increase: {a} then {b}");

    // An erroring request stamps its id into the tenant's error counters.
    let bad = client
        .request_full("POST", "/v1/t/query", Some("not json"), &[])
        .expect("bad body answers");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let bad_id = bad.request_id().expect("errors carry ids too");
    assert!(bad_id > b);
    assert_eq!(metric(&mut client, &["tenants", "t", "errors"]), 1.0);
    assert_eq!(
        metric(&mut client, &["tenants", "t", "last_error_request_id"]),
        bad_id as f64
    );
    assert!(server.shutdown(), "drain");
}

/// Outcome class of one soaked request — the unit of the reproducibility
/// check. `Cut` covers every injected transport failure (read error, write
/// error, torn response): the client sees the connection die.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    Ok,
    Panicked,
    Cut,
}

fn expected_outcome(action: FaultAction) -> Outcome {
    match action {
        FaultAction::None | FaultAction::Delay(_) => Outcome::Ok,
        FaultAction::Panic => Outcome::Panicked,
        FaultAction::ReadError | FaultAction::WriteError | FaultAction::TornResponse => {
            Outcome::Cut
        }
    }
}

/// Soaks `keys` requests through a freshly faulted server with `workers`
/// client threads (key k handled by worker k % workers) and returns the
/// per-key outcome classes plus the server's final faults_injected count.
fn chaos_soak(config: &FaultConfig, keys: u64, workers: u64) -> (Vec<Outcome>, f64) {
    let registry = registry_with(&[]);
    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            fault: Some(*config),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for w in 0..workers {
        handles.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for key in (0..keys).filter(|k| k % workers == w) {
                let outcome = HttpClient::connect(addr).expect("connect").request_full(
                    "GET",
                    "/healthz",
                    None,
                    &[("X-Fault-Key", &key.to_string())],
                );
                let class = match outcome {
                    Ok(r) if r.status == 200 => Outcome::Ok,
                    Ok(r) if r.status == 500 => Outcome::Panicked,
                    Ok(r) => panic!("unexpected status {} for key {key}", r.status),
                    Err(_) => Outcome::Cut,
                };
                outcomes.push((key, class));
            }
            outcomes
        }));
    }
    let mut by_key = vec![Outcome::Ok; keys as usize];
    for handle in handles {
        for (key, class) in handle.join().expect("soak worker") {
            by_key[key as usize] = class;
        }
    }
    let mut client = HttpClient::connect(addr).expect("connect");
    let injected = metric(&mut client, &["requests", "faults_injected"]);
    assert!(server.shutdown(), "a faulted server must still drain");
    (by_key, injected)
}

#[test]
fn chaos_schedule_is_bit_reproducible_across_runs_and_worker_counts() {
    let config = FaultConfig {
        seed: 99,
        window: (0, 60),
        delay_prob: 0.15,
        delay: Duration::from_millis(5),
        read_error_prob: 0.15,
        write_error_prob: 0.15,
        torn_prob: 0.15,
        panic_prob: 0.15,
    };
    // The schedule is a pure function of (seed, key): derive the expected
    // outcome classes straight from the plan.
    let plan = FaultPlan::new(config);
    let expected: Vec<Outcome> = (0..90).map(|k| expected_outcome(plan.action(k))).collect();
    let expected_injected = (0..90)
        .filter(|&k| plan.action(k) != FaultAction::None)
        .count() as f64;
    assert!(
        expected[..60].iter().any(|&o| o != Outcome::Ok),
        "the window must actually fault something"
    );
    assert!(
        expected[60..].iter().all(|&o| o == Outcome::Ok),
        "keys past the window must be clean"
    );

    let (serial, injected_serial) = chaos_soak(&config, 90, 1);
    let (parallel_a, injected_a) = chaos_soak(&config, 90, 4);
    let (parallel_b, injected_b) = chaos_soak(&config, 90, 4);
    assert_eq!(
        serial, expected,
        "1-worker soak must match the plan exactly"
    );
    assert_eq!(parallel_a, expected, "4-worker soak must match the plan");
    assert_eq!(parallel_b, expected, "reruns must be bit-identical");
    assert_eq!(
        (injected_serial, injected_a, injected_b),
        (expected_injected, expected_injected, expected_injected),
        "every injected fault is counted, and only those"
    );
}

#[test]
fn retrying_client_honors_retry_after_through_transient_429s() {
    let registry = registry_with(&["t"]);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            // Burst of one; a token refills every 50 ms.
            rate_limit: Some(RateLimitConfig::new(20.0, 1.0)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = HttpClient::connect_with(
        server.local_addr(),
        ClientConfig {
            retry: RetryPolicy {
                max_attempts: 6,
                backoff: BackoffConfig {
                    initial: Duration::from_millis(20),
                    max: Duration::from_millis(80),
                    multiplier: 2.0,
                    jitter: 0.0,
                },
                budget: Duration::from_secs(5),
                // The server rounds Retry-After up to 1 s; cap the honored
                // wait so the test stays fast while still waiting longer
                // than the backoff alone would.
                retry_after_cap: Duration::from_millis(60),
                seed: 7,
            },
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let body = query_body();

    let first = client
        .request_with_retry("POST", "/v1/t/query", Some(&body), &[])
        .expect("first");
    assert_eq!(first.status, 200, "{}", first.body);
    // The bucket is empty now: the next request must ride retries through
    // at least one 429 and come out 200 once the token refills.
    let started = Instant::now();
    let second = client
        .request_with_retry("POST", "/v1/t/query", Some(&body), &[])
        .expect("retried");
    assert_eq!(second.status, 200, "{}", second.body);
    assert!(
        started.elapsed() >= Duration::from_millis(40),
        "success must have come through a waited retry, not instantly"
    );
    assert!(
        metric(&mut client, &["requests", "shed"]) >= 1.0,
        "the transient 429 must be visible in /metrics"
    );
    assert!(server.shutdown(), "drain");
}

#[test]
fn retrying_client_gives_up_cleanly_on_persistent_faults() {
    // Every request draws a torn response: the retry layer reconnects and
    // backs off, then surfaces the transport error after max_attempts.
    let registry = registry_with(&[]);
    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            fault: Some(FaultConfig {
                seed: 3,
                window: (0, u64::MAX),
                torn_prob: 1.0,
                ..FaultConfig::default()
            }),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = HttpClient::connect_with(
        server.local_addr(),
        ClientConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: BackoffConfig {
                    initial: Duration::from_millis(5),
                    max: Duration::from_millis(10),
                    multiplier: 2.0,
                    jitter: 0.5,
                },
                budget: Duration::from_secs(5),
                retry_after_cap: Duration::from_millis(20),
                seed: 0,
            },
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let started = Instant::now();
    let outcome = client.request_with_retry("GET", "/healthz", None, &[("X-Fault-Key", "5")]);
    assert!(outcome.is_err(), "persistent torn responses must surface");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "give-up must be prompt, not a hang"
    );
    assert!(server.shutdown(), "drain");
}

#[test]
fn slow_loris_body_is_cut_under_the_deadline() {
    use std::io::{Read, Write};
    let registry = registry_with(&[]);
    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            request_deadline: Duration::from_millis(120),
            read_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut loris = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    loris
        .write_all(b"POST /v1/t/query HTTP/1.1\r\nContent-Length: 50\r\n\r\ndrip")
        .expect("partial body");
    // Drip one more byte, then stall past the deadline.
    std::thread::sleep(Duration::from_millis(40));
    loris.write_all(b".").expect("drip");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut response = Vec::new();
    loris
        .read_to_end(&mut response)
        .expect("server answers then closes");
    let head = String::from_utf8_lossy(&response);
    assert!(
        head.starts_with("HTTP/1.1 400") && head.contains("did not complete in time"),
        "slow-loris must be cut with a 400, got: {head}"
    );
    assert!(server.shutdown(), "drain after cutting the loris");
}

#[test]
fn half_open_connection_does_not_block_drain() {
    let registry = registry_with(&[]);
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind");
    // The client FINs its write half and lingers: the server sees EOF and
    // must release the connection guard rather than wait on the read half.
    let half_open = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    half_open
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert!(
        server.shutdown(),
        "a half-open connection must not block the drain"
    );
    drop(half_open);
}

#[test]
fn shedding_during_shutdown_still_answers_and_drains() {
    let registry = registry_with(&["t"]);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            max_in_flight: 1,
            fault: Some(delay_plan((1, 2), Duration::from_millis(400))),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let body = query_body();

    // A delayed request rides into the drain window holding the permit…
    let slow = {
        let body = body.clone();
        std::thread::spawn(move || {
            HttpClient::connect(addr)
                .expect("connect")
                .request_full("POST", "/v1/t/query", Some(&body), &[("X-Fault-Key", "1")])
                .expect("slow request survives the drain")
        })
    };
    assert!(
        wait_until(Duration::from_secs(2), || server.requests_admitted() == 1),
        "delayed request must hold the permit"
    );

    // …a concurrent request sheds 429 while the server is saturated…
    let mut client = HttpClient::connect(addr).expect("connect");
    let shed = client
        .request_full("POST", "/v1/t/query", Some(&body), &[])
        .expect("shed request answers");
    assert_eq!(shed.status, 429, "{}", shed.body);

    // …then shutdown starts while the slow request is still in flight:
    // the drain must wait for it, and the shed client's later traffic must
    // complete (answer or clean close), never hang.
    let draining = std::thread::spawn(move || server.shutdown());
    let racing = client.request_full("POST", "/v1/t/query", Some(&body), &[]);
    if let Ok(response) = &racing {
        assert!(
            [200, 429, 503].contains(&response.status),
            "mid-shutdown answer must be a real outcome: {}",
            response.status
        );
    }
    let slow = slow.join().expect("slow thread");
    assert_eq!(
        slow.status, 200,
        "in-flight work rides through the drain: {}",
        slow.body
    );
    assert!(draining.join().expect("shutdown thread"), "drain completes");
}
