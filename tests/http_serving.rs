//! Network serving contract (`restore-serve` over a `SnapshotRegistry`):
//!
//! * HTTP responses are **byte-identical** to the wire encoding of direct
//!   `Snapshot::execute` / `completed_table` — the server adds transport,
//!   never bits;
//! * hot swap under concurrent load is torn-free: every response matches
//!   exactly one snapshot version, monotonically per connection, and no
//!   request errors while v1 drains under its `Arc` refs;
//! * tenants are isolated: each answers from its own snapshot and
//!   `retire` only 404s the retired one;
//! * a panicking handler (single-flight leader *and* its poisoned
//!   followers) answers 500 on its own connection without wedging the
//!   server;
//! * graceful shutdown drains idle keep-alive connections and stops
//!   accepting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};

use restore_bench::{sealed_synthetic_snapshot, serving_workload as workload};

use restore::core::wire::{self, QueryRequest};
use restore::core::{ConfidenceQuery, Snapshot, SnapshotRegistry};
use restore::db::{Agg, Expr, Query};
use restore::serve::{HttpClient, ServeConfig, Server};

/// Shared fixtures: the same data under two different serve seeds, so the
/// two snapshots answer observably differently while each stays perfectly
/// deterministic. Built once for the whole test binary.
fn snap_a() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| sealed_synthetic_snapshot(31, 31)))
}

fn snap_b() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| sealed_synthetic_snapshot(31, 99)))
}

fn serve(registry: &Arc<SnapshotRegistry>, config: ServeConfig) -> Server {
    Server::bind("127.0.0.1:0", Arc::clone(registry), config).expect("bind loopback")
}

/// The direct-execution reference body for a request against a snapshot.
fn direct_body(snapshot: &Snapshot, request: &QueryRequest) -> String {
    let result = snapshot
        .execute(&request.query, request.seed)
        .expect("direct execute");
    let interval = request.confidence.as_ref().map(|spec| {
        snapshot
            .confidence(&request.query.tables, &spec.query, spec.level, request.seed)
            .expect("direct confidence")
    });
    wire::query_response_json(&result, interval.as_ref())
}

#[test]
fn http_responses_are_byte_identical_to_direct_execution() {
    let snapshot = snap_a();
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", Arc::clone(&snapshot));
    let server = serve(&registry, ServeConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    // The shared workload plus a filtered query and a confidence request —
    // the full wire surface in one sweep.
    let mut requests: Vec<QueryRequest> = workload()
        .iter()
        .flat_map(|q| (1..3u64).map(|seed| QueryRequest::new(q.clone(), seed)))
        .collect();
    requests.push(QueryRequest::new(
        Query::new(["ta", "tb"])
            .filter(Expr::col("b").eq(Expr::lit("b1")))
            .aggregate(Agg::CountStar),
        4,
    ));
    requests.push(
        QueryRequest::new(Query::new(["ta", "tb"]).aggregate(Agg::CountStar), 5).with_confidence(
            ConfidenceQuery::CountFraction {
                table: "tb".into(),
                column: "b".into(),
                value: "b1".into(),
            },
            0.95,
        ),
    );

    for request in &requests {
        let (status, body) = client
            .post("/v1/synthetic/query", &request.to_json())
            .expect("request");
        assert_eq!(status, 200, "query must succeed: {body}");
        assert_eq!(
            body,
            direct_body(&snapshot, request),
            "HTTP must add transport, not bits: {}",
            request.to_json()
        );
    }

    // Completed table, byte-identical as well.
    let (status, body) = client
        .get("/v1/synthetic/tables/tb?seed=2")
        .expect("table request");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        wire::table_json(&snapshot.completed_table("tb", 2).expect("direct table"))
    );

    // Protocol errors answer cleanly and keep the server serving.
    let (status, _) = client
        .post("/v1/synthetic/query", "not json")
        .expect("bad body");
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/v1/synthetic/query", r#"{"tables":["nope_table"]}"#)
        .expect("bad table");
    assert!(
        status == 404 || status == 422,
        "unknown table is a client error, got {status}"
    );
    let (status, _) = client.get("/v1/synthetic/query").expect("wrong method");
    assert_eq!(status, 405);
    assert!(server.shutdown(), "drain");
}

#[test]
fn hot_swap_under_load_is_torn_free() {
    let (v1, v2) = (snap_a(), snap_b());
    let query = Query::new(["ta", "tb"])
        .group_by(["b"])
        .aggregate(Agg::CountStar);
    let request = QueryRequest::new(query, 5);
    let body = Arc::new(request.to_json());
    let e1 = Arc::new(direct_body(&v1, &request));
    let e2 = Arc::new(direct_body(&v2, &request));
    assert_ne!(
        e1, e2,
        "the two serve seeds must give distinguishable responses"
    );

    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("swap", Arc::clone(&v1));
    let server = serve(&registry, ServeConfig::default());
    let addr = server.local_addr();

    let responded = Arc::new(AtomicUsize::new(0));
    let threads = 4;
    let iters = 12;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let (body, responded) = (Arc::clone(&body), Arc::clone(&responded));
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let mut responses = Vec::with_capacity(iters);
            for _ in 0..iters {
                let (status, response) = client.post("/v1/swap/query", &body).expect("request");
                assert_eq!(
                    status, 200,
                    "no request may fail across the swap: {response}"
                );
                responses.push(response);
                responded.fetch_add(1, Ordering::SeqCst);
            }
            responses
        }));
    }
    // Publish v2 while every thread is mid-workload: wait until each has a
    // few responses in, then swap atomically. v1 keeps serving in-flight
    // requests under the Arc refs those requests already hold.
    while responded.load(Ordering::SeqCst) < threads * 2 {
        std::thread::yield_now();
    }
    registry.publish("swap", Arc::clone(&v2));

    for handle in handles {
        let responses = handle.join().expect("client thread");
        let mut seen_v2 = false;
        for response in &responses {
            let is_v1 = response == e1.as_str();
            let is_v2 = response == e2.as_str();
            assert!(
                is_v1 || is_v2,
                "torn response (matches neither v1 nor v2): {response}"
            );
            if is_v2 {
                seen_v2 = true;
            }
            assert!(
                !(is_v1 && seen_v2),
                "response regressed to v1 after observing v2"
            );
        }
    }
    // The swap has settled: every new request serves v2.
    let (status, response) = HttpClient::connect(addr)
        .expect("connect")
        .post("/v1/swap/query", &body)
        .expect("request");
    assert_eq!((status, response.as_str()), (200, e2.as_str()));
    assert!(server.shutdown(), "drain");
}

#[test]
fn tenants_are_isolated_and_retire_cleanly() {
    let (alpha, beta) = (snap_a(), snap_b());
    let request = QueryRequest::new(
        Query::new(["ta", "tb"])
            .group_by(["b"])
            .aggregate(Agg::CountStar),
        3,
    );
    let body = Arc::new(request.to_json());
    let expected_alpha = Arc::new(direct_body(&alpha, &request));
    let expected_beta = Arc::new(direct_body(&beta, &request));
    assert_ne!(expected_alpha, expected_beta);

    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("alpha", alpha);
    registry.publish("beta", beta);
    let server = serve(&registry, ServeConfig::default());
    let addr = server.local_addr();

    // Concurrent clients interleave both tenants on shared infrastructure;
    // answers must never cross.
    let mut handles = Vec::new();
    for _ in 0..3 {
        let (body, expected_alpha, expected_beta) = (
            Arc::clone(&body),
            Arc::clone(&expected_alpha),
            Arc::clone(&expected_beta),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            for _ in 0..6 {
                let (status, a) = client.post("/v1/alpha/query", &body).expect("alpha");
                assert_eq!((status, a.as_str()), (200, expected_alpha.as_str()));
                let (status, b) = client.post("/v1/beta/query", &body).expect("beta");
                assert_eq!((status, b.as_str()), (200, expected_beta.as_str()));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Retiring one tenant 404s it without disturbing the other.
    assert!(registry.retire("beta").is_some());
    let mut client = HttpClient::connect(addr).expect("connect");
    let (status, _) = client.post("/v1/beta/query", &body).expect("retired");
    assert_eq!(status, 404);
    let (status, a) = client.post("/v1/alpha/query", &body).expect("alpha");
    assert_eq!((status, a.as_str()), (200, expected_alpha.as_str()));
    let (_, health) = client.get("/healthz").expect("healthz");
    assert!(health.contains("\"alpha\"") && !health.contains("\"beta\""));
    assert!(server.shutdown(), "drain");
}

#[test]
fn panicking_handler_does_not_wedge_other_connections() {
    // Fault injection: /debug/panic/{key} panics inside the server's
    // shared single-flight, exercising leader-panic poisoning end to end —
    // the leader and every follower piled on the same cold key must each
    // get a 500 on their own connection, promptly, and the server must
    // keep serving everyone else.
    let registry = Arc::new(SnapshotRegistry::new());
    let server = serve(
        &registry,
        ServeConfig {
            panic_route: true,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            barrier.wait();
            client
                .get("/debug/panic/same-key")
                .expect("response, not a hang")
        }));
    }
    for handle in handles {
        let (status, body) = handle.join().expect("panic client");
        assert_eq!(status, 500, "panic surfaces as 500: {body}");
        assert!(body.contains("error"), "{body}");
    }

    // The cold path is not wedged: the key retired with the panic, a fresh
    // request on it still answers (500 again — it is a panic route), and
    // unrelated routes serve normally.
    let (status, _) = HttpClient::connect(addr)
        .expect("connect")
        .get("/debug/panic/same-key")
        .expect("retried key answers");
    assert_eq!(status, 500);
    let (status, health) = HttpClient::connect(addr)
        .expect("connect")
        .get("/healthz")
        .expect("healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"ok\""));
    assert!(
        server.shutdown(),
        "a panicked flight must not block draining"
    );
}

#[test]
fn graceful_shutdown_drains_stalled_mid_request_connections() {
    // A client that sends half a request and stalls must not defeat the
    // drain: a half-received request is not in-flight work.
    use std::io::Write;
    let registry = Arc::new(SnapshotRegistry::new());
    let server = serve(&registry, ServeConfig::default());
    let mut stalled = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stalled.write_all(b"POST /v1/x/query HTT").expect("partial");
    // Wait until the connection thread has registered its guard.
    while server.connections_active() == 0 {
        std::thread::yield_now();
    }
    assert!(server.shutdown(), "stalled sender must not block the drain");
}

#[test]
fn graceful_shutdown_drains_idle_keepalive_connections() {
    let registry = Arc::new(SnapshotRegistry::new());
    let server = serve(&registry, ServeConfig::default());
    let addr = server.local_addr();

    // An idle keep-alive connection holds a ConnectionGuard; shutdown must
    // release it at the next poll tick rather than time out.
    let mut idle = HttpClient::connect(addr).expect("connect");
    let (status, _) = idle.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert!(server.connections_active() >= 1);
    assert!(server.shutdown(), "idle connections must drain");
    assert!(
        HttpClient::connect(addr).is_err(),
        "listener closed after shutdown"
    );
}
