//! Equivalence contract between the two execution paths: the recording
//! tape (training) and the gradient-free inference engine must produce
//! **bit-identical** forward outputs from the same weights — the layer
//! definitions are shared, and the no-grad kernels replicate the tape ops'
//! loop order exactly.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore::nn::{
    AttrSpec, DeepSets, DeepSetsConfig, InferenceSession, Made, MadeConfig, Matrix, ParamStore,
    SetBatch, SetTableSpec, TableSet, Tape,
};

fn made_with_ctx(ctx_dim: usize, seed: u64) -> (Made, ParamStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let attrs = vec![
        AttrSpec::new(7, 4),
        AttrSpec::new(5, 4),
        AttrSpec::new(9, 4),
    ];
    let cfg = MadeConfig::new(attrs)
        .with_ctx(ctx_dim)
        .with_hidden(vec![32, 32]);
    let made = Made::new(cfg, &mut store, &mut rng);
    (made, store)
}

fn tokens(n: usize) -> Vec<Arc<Vec<u32>>> {
    vec![
        Arc::new((0..n as u32).map(|r| r % 7).collect()),
        Arc::new((0..n as u32).map(|r| (r * 3) % 5).collect()),
        Arc::new((0..n as u32).map(|r| (r + 2) % 9).collect()),
    ]
}

/// (a) of the determinism contract: no-grad logits == tape logits,
/// bit for bit, on a plain AR model.
#[test]
fn nograd_forward_matches_tape_bit_for_bit() {
    let (made, store) = made_with_ctx(0, 41);
    let toks = tokens(33);

    let mut tape = Tape::new();
    let out = made.forward(&mut tape, &store, &toks, None);
    let want = tape.value(out);

    let mut session = InferenceSession::new();
    let got = made.logits_in(&mut session, &store, &toks, None);
    assert_eq!(want, got, "no-grad logits diverged from tape logits");
}

/// Same contract with SSAR conditioning: the DeepSets context and the
/// conditioned MADE logits both match the tape path exactly.
#[test]
fn nograd_ssar_forward_matches_tape_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let ds_cfg = DeepSetsConfig {
        tables: vec![SetTableSpec::new(vec![6, 4], 4, 8)],
        ctx_dim: 5,
        post_hidden: 16,
    };
    let ds = DeepSets::new(&ds_cfg, &mut store, &mut rng);
    let attrs = vec![AttrSpec::new(7, 4), AttrSpec::new(5, 4)];
    let made = Made::new(
        MadeConfig::new(attrs).with_ctx(5).with_hidden(vec![24, 24]),
        &mut store,
        &mut rng,
    );

    let n = 9;
    let batch = SetBatch {
        tables: vec![TableSet {
            tokens: vec![
                Arc::new(vec![0, 1, 2, 3, 4, 5, 0, 1]),
                Arc::new(vec![3, 2, 1, 0, 3, 2, 1, 0]),
            ],
            segments: Arc::new(vec![0, 0, 1, 2, 4, 4, 4, 8]),
        }],
    };
    let toks: Vec<Arc<Vec<u32>>> = vec![
        Arc::new((0..n as u32).map(|r| r % 7).collect()),
        Arc::new((0..n as u32).map(|r| r % 5).collect()),
    ];

    // Tape path: context encoded on the tape, then MADE on the tape.
    let mut tape = Tape::new();
    let ctx_var = ds.forward(&mut tape, &store, &batch, n);
    let ctx_tape = tape.value(ctx_var).clone();
    let out = made.forward(&mut tape, &store, &toks, Some(ctx_var));
    let want = tape.value(out).clone();

    // No-grad path.
    let mut session = InferenceSession::new();
    let ctx_nograd = ds.encode_in(&mut session, &store, &batch, n).clone();
    assert_eq!(ctx_tape, ctx_nograd, "DeepSets context diverged");
    let mut session2 = InferenceSession::new();
    let got = made.logits_in(&mut session2, &store, &toks, Some(&ctx_nograd));
    assert_eq!(&want, got, "conditioned logits diverged");
}

/// Buffer reuse must not leak state between differently shaped batches.
#[test]
fn session_reuse_across_batch_shapes_is_exact() {
    let (made, store) = made_with_ctx(0, 43);
    let mut session = InferenceSession::new();
    for &n in &[64usize, 1, 17, 64, 3] {
        let toks = tokens(n);
        let want = {
            let mut tape = Tape::new();
            let out = made.forward(&mut tape, &store, &toks, None);
            tape.value(out).clone()
        };
        let got = made.logits_in(&mut session, &store, &toks, None);
        assert_eq!(&want, got, "batch of {n} rows diverged after reuse");
    }
}

/// The block-restricted output evaluation (what the sampler runs) equals
/// the corresponding slice of the full logits, bit for bit.
#[test]
fn block_logits_match_full_logits() {
    let (made, store) = made_with_ctx(0, 46);
    let toks = tokens(21);
    let full = made.logits(&store, &toks, None);
    for attr in 0..3 {
        let (off, card) = made.layout().block(attr);
        let mut session = InferenceSession::new();
        let block = made.logits_attr_in(&mut session, &store, &toks, None, attr);
        assert_eq!(block.shape(), (21, card));
        for r in 0..block.rows() {
            assert_eq!(
                block.row(r),
                &full.row(r)[off..off + card],
                "attr {attr} row {r} diverged"
            );
        }
    }
}

/// The convenience `logits` wrapper and the session path agree.
#[test]
fn logits_wrapper_matches_session_path() {
    let (made, store) = made_with_ctx(0, 44);
    let toks = tokens(12);
    let a = made.logits(&store, &toks, None);
    let mut session = InferenceSession::new();
    let b = made.logits_in(&mut session, &store, &toks, None);
    assert_eq!(&a, b);
}

/// Matrix-level kernel contract: the fused masked matmul equals
/// hadamard-then-matmul bit for bit.
#[test]
fn masked_matmul_into_matches_hadamard_matmul() {
    let mut rng = StdRng::seed_from_u64(45);
    let x = Matrix::rand_uniform(17, 13, -2.0, 2.0, &mut rng);
    let w = Matrix::rand_uniform(13, 11, -2.0, 2.0, &mut rng);
    let mask_f = Matrix::rand_uniform(13, 11, 0.0, 1.0, &mut rng);
    let mut mask = Matrix::zeros(13, 11);
    for r in 0..13 {
        for c in 0..11 {
            mask.set(r, c, if mask_f.get(r, c) > 0.5 { 1.0 } else { 0.0 });
        }
    }
    let want = x.matmul(&w.hadamard(&mask));
    let mut got = Matrix::zeros(0, 0);
    x.masked_matmul_into(&w, &mask, &mut got);
    assert_eq!(want, got);
}
