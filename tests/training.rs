//! Contracts of the data-parallel training engine and the completion-path
//! caches introduced with it:
//!
//! * training is **bit-identical** under any worker count (microbatch
//!   gradients are independent, the reduction order is pinned);
//! * arena tapes reused across ragged batch shapes reproduce fresh tapes
//!   exactly;
//! * per-worker `InferenceSession` reuse and the incremental encoding
//!   cache never change a completion's output.

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore::core::{
    Completer, CompleterConfig, CompletionModel, CompletionPath, SchemaAnnotation, TrainConfig,
};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};
use restore::nn::InferenceSession;

fn synthetic_scenario(seed: u64) -> restore::data::Scenario {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = seed;
    apply_removal(&db, &removal)
}

fn quick_cfg(workers: usize) -> TrainConfig {
    TrainConfig {
        epochs: 5,
        hidden: vec![24, 24],
        min_steps: 150,
        workers,
        ..TrainConfig::default()
    }
}

fn train_with_workers(
    sc: &restore::data::Scenario,
    cfg: TrainConfig,
    seed: u64,
) -> CompletionModel {
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    CompletionModel::train(&sc.incomplete, &ann, path, &cfg, seed).unwrap()
}

/// The headline contract of the data-parallel engine: the same seed gives
/// bit-identical training runs — losses, validation metrics, and every
/// parameter — no matter how many workers share the microbatches.
#[test]
fn training_is_bit_identical_across_worker_counts() {
    let sc = synthetic_scenario(31);
    let base = train_with_workers(&sc, quick_cfg(1), 31);
    for workers in [2usize, 8] {
        let other = train_with_workers(&sc, quick_cfg(workers), 31);
        assert_eq!(
            base.train_losses, other.train_losses,
            "train losses diverged at {workers} workers"
        );
        assert_eq!(
            base.val_loss.to_bits(),
            other.val_loss.to_bits(),
            "val loss diverged at {workers} workers"
        );
        assert_eq!(base.val_per_attr, other.val_per_attr);
        let (pa, pb) = (base.params(), other.params());
        assert_eq!(pa.len(), pb.len());
        for id in 0..pa.len() {
            assert_eq!(
                pa.value(id),
                pb.value(id),
                "parameter {id} diverged at {workers} workers"
            );
        }
    }
}

/// SSAR training (DeepSets context assembled per microbatch) obeys the
/// same worker-count invariance.
#[test]
fn ssar_training_is_bit_identical_across_worker_counts() {
    let sc = synthetic_scenario(32);
    let base = train_with_workers(&sc, quick_cfg(1).ssar(), 32);
    let other = train_with_workers(&sc, quick_cfg(4).ssar(), 32);
    assert!(base.is_ssar());
    assert_eq!(base.train_losses, other.train_losses);
    assert_eq!(base.val_loss.to_bits(), other.val_loss.to_bits());
    for id in 0..base.params().len() {
        assert_eq!(base.params().value(id), other.params().value(id));
    }
}

/// The microbatch size shapes the gradient reduction tree, so ragged last
/// microbatches (batch not divisible by the microbatch size) must reuse
/// the worker tapes without leaking shape state between steps: training
/// twice with the same config is bit-identical, and the raggedness only
/// perturbs results at the rounding level, never the training signal.
#[test]
fn tape_reuse_survives_ragged_microbatches() {
    let sc = synthetic_scenario(33);
    // 256-row batches with 48-row microbatches → last microbatch is ragged
    // (256 = 5·48 + 16); epochs > 1 re-feeds the tapes every shape.
    let cfg = TrainConfig {
        microbatch: 48,
        ..quick_cfg(3)
    };
    let a = train_with_workers(&sc, cfg.clone(), 33);
    let b = train_with_workers(&sc, cfg, 33);
    assert_eq!(a.train_losses, b.train_losses);
    assert_eq!(a.val_loss.to_bits(), b.val_loss.to_bits());
    for id in 0..a.params().len() {
        assert_eq!(a.params().value(id), b.params().value(id));
    }
    // And the run actually learned (the reused arenas computed something).
    assert!(a.train_losses.last().unwrap() < a.train_losses.first().unwrap());
}

/// Per-worker session reuse: sampling through one session across many
/// batches is bit-identical to a fresh session per batch.
#[test]
fn session_reuse_across_batches_is_bit_identical() {
    let sc = synthetic_scenario(34);
    let model = train_with_workers(&sc, quick_cfg(0), 34);
    let ta = sc.incomplete.table("ta").unwrap().qualified();
    let tf_slots: Vec<Vec<Option<i64>>> = vec![vec![None; ta.n_rows()]];
    let encoded = model.encode_tokens(&ta, &tf_slots);

    let batches: Vec<Vec<usize>> = vec![
        (0..32).collect(),
        (32..33).collect(), // ragged single-row batch in between
        (40..100).collect(),
        (0..32).collect(), // repeat of the first shape
    ];
    let mut reused = InferenceSession::new();
    for (k, rows) in batches.iter().enumerate() {
        let mut rng_a = StdRng::seed_from_u64(100 + k as u64);
        let with_reuse = model
            .sample_table_columns_encoded_in(&mut reused, &ta, &encoded, 1, rows, &mut rng_a)
            .unwrap();
        let mut fresh = InferenceSession::new();
        let mut rng_b = StdRng::seed_from_u64(100 + k as u64);
        let with_fresh = model
            .sample_table_columns_encoded_in(&mut fresh, &ta, &encoded, 1, rows, &mut rng_b)
            .unwrap();
        assert_eq!(
            with_reuse, with_fresh,
            "batch {k} diverged between reused and fresh sessions"
        );
    }
}

/// The incremental encoding cache must be invisible: a completion with
/// cached, incrementally-refreshed encodings equals the full re-encode
/// path bit for bit — rows, provenance, and tuple factors.
#[test]
fn incremental_encoding_matches_full_reencoding() {
    let sc = synthetic_scenario(35);
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
    let model = CompletionModel::train(&sc.incomplete, &ann, path, &quick_cfg(0), 35).unwrap();

    let complete_with = |incremental: bool| {
        let cfg = CompleterConfig {
            incremental_encoding: incremental,
            batch_size: 64,
            ..CompleterConfig::default()
        };
        Completer::new(&sc.incomplete, &ann)
            .with_config(cfg)
            .complete(&model, 12)
            .unwrap()
    };
    let full = complete_with(false);
    let inc = complete_with(true);
    assert_eq!(full.join.n_rows(), inc.join.n_rows());
    for r in 0..full.join.n_rows() {
        assert_eq!(full.join.row(r), inc.join.row(r), "row {r} differs");
    }
    assert_eq!(full.syn, inc.syn);
    assert_eq!(full.tf, inc.tf);
}

/// Same contract on a longer path (movies: director → movie_director →
/// movie) so the cache survives multiple joins, tuple-factor refreshes,
/// and nearest-neighbor replacement of intermediate tables.
#[test]
fn incremental_encoding_matches_full_reencoding_multistep() {
    let complete = restore::data::movies::generate_movies(
        &restore::data::movies::MoviesConfig::scaled(0.08),
        36,
    );
    let mut removal =
        RemovalConfig::new(BiasSpec::continuous("movie", "production_year"), 0.4, 0.4);
    removal.tf_keep_rate = 0.2;
    removal.cascade = vec![
        "movie_company".to_string(),
        "movie_actor".to_string(),
        "movie_director".to_string(),
    ];
    removal.seed = 36;
    let sc = apply_removal(&complete, &removal);
    let ann = SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
    let path = CompletionPath::from_tables(
        &sc.incomplete,
        &[
            "director".to_string(),
            "movie_director".to_string(),
            "movie".to_string(),
        ],
    )
    .unwrap();
    let cfg = TrainConfig {
        epochs: 3,
        min_steps: 60,
        hidden: vec![24, 24],
        max_train_rows: 2_000,
        ..TrainConfig::default()
    };
    let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 36).unwrap();

    let complete_with = |incremental: bool| {
        let ccfg = CompleterConfig {
            incremental_encoding: incremental,
            batch_size: 64,
            ..CompleterConfig::default()
        };
        Completer::new(&sc.incomplete, &ann)
            .with_config(ccfg)
            .complete(&model, 13)
            .unwrap()
    };
    let full = complete_with(false);
    let inc = complete_with(true);
    assert_eq!(full.join.n_rows(), inc.join.n_rows());
    for r in 0..full.join.n_rows() {
        assert_eq!(full.join.row(r), inc.join.row(r), "row {r} differs");
    }
    assert_eq!(full.syn, inc.syn);
    assert_eq!(full.tf, inc.tf);
}
