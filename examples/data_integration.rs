//! The data-integration scenario of §2.3: two regional housing databases
//! are merged — US (West) ships complete landlord/neighborhood/apartment
//! data, US (East) ships only landlords and neighborhoods. In the merged
//! database every eastern apartment is missing; ReStore uses the western
//! apartments as evidence to synthesize the eastern housing market.
//!
//! ```sh
//! cargo run --release --example data_integration
//! ```

use restore::core::{ReStore, RestoreConfig};
use restore::data::housing::{generate_housing, HousingConfig};
use restore::db::{execute, Agg, Database, Expr, Query};

fn main() {
    // One "national" ground truth; the merged warehouse lost all apartments
    // whose neighborhood lies in an eastern state (odd state index).
    let national = generate_housing(&HousingConfig::scaled(0.3), 99);
    let east = |state: &str| {
        state[1..]
            .parse::<u32>()
            .map(|s| s % 2 == 1)
            .unwrap_or(false)
    };

    let mut merged: Database = national.clone();
    let hoods = national.table("neighborhood").unwrap();
    let eastern_hoods: std::collections::HashSet<i64> = (0..hoods.n_rows())
        .filter(|&r| east(hoods.value(r, 1).as_str().unwrap()))
        .map(|r| hoods.value(r, 0).as_i64().unwrap())
        .collect();
    let apartments = national.table("apartment").unwrap();
    let keep: Vec<bool> = (0..apartments.n_rows())
        .map(|r| !eastern_hoods.contains(&apartments.value(r, 1).as_i64().unwrap()))
        .collect();
    let kept = keep.iter().filter(|&&k| k).count();
    merged.replace_table(apartments.filter(&keep));
    println!(
        "merged database: {} of {} apartments (all eastern listings missing)",
        kept,
        apartments.n_rows()
    );

    // ReStore: neighborhoods are complete evidence for the missing side.
    let mut restore = ReStore::new(merged.clone(), RestoreConfig::default());
    restore.mark_incomplete("apartment");
    restore.train(99).expect("training");

    // Rough understanding of the eastern market (never observed!).
    let eastern_filter = |q: Query| {
        // S01, S03, ... are eastern states.
        let mut pred: Option<Expr> = None;
        for s in (1..12).step_by(2) {
            let e = Expr::col("state").eq(Expr::lit(format!("S{s:02}").as_str()));
            pred = Some(match pred {
                Some(p) => p.or(e),
                None => e,
            });
        }
        q.filter(pred.unwrap())
    };
    let query = eastern_filter(Query::new(["neighborhood", "apartment"]))
        .aggregate(Agg::CountStar)
        .aggregate(Agg::Avg("price".into()));

    let truth = execute(&national, &query).unwrap();
    let incomplete = restore.execute_without_completion(&query).unwrap();
    let completed = restore.execute(&query, 99).unwrap();

    let row = |r: &restore::db::QueryResult| {
        (
            r.table.value(0, 0).as_f64().unwrap_or(0.0),
            r.table.value(0, 1).as_f64().unwrap_or(f64::NAN),
        )
    };
    let (tc, ta) = row(&truth);
    let (ic, ia) = row(&incomplete);
    let (cc, ca) = row(&completed);
    println!("\neastern apartments: COUNT / AVG(price)");
    println!("  true      : {tc:6.0} / {ta:7.0}");
    println!("  merged db : {ic:6.0} / {ia:7.0}   (the east looks empty!)");
    println!("  ReStore   : {cc:6.0} / {ca:7.0}");
    assert!(ic == 0.0, "merged database has no eastern apartments");
    assert!(cc > 0.0, "ReStore must synthesize the eastern market");
    println!(
        "\nReStore synthesized an eastern market within {:.1}% of the true count.",
        100.0 * (cc - tc).abs() / tc
    );
}
