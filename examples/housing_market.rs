//! The paper's running example (§1): a housing database where apartment
//! data for some states is missing *systematically* — most data comes from
//! dense, expensive states, biasing every rent statistic. ReStore debiases
//! group-by queries and reports completion confidence intervals (§6).
//!
//! ```sh
//! cargo run --release --example housing_market
//! ```

use restore::core::{ConfidenceQuery, ReStore, RestoreConfig};
use restore::data::housing::{generate_housing, HousingConfig};
use restore::data::{apply_removal, BiasSpec, RemovalConfig};
use restore::db::{execute, Agg, Query};

fn main() {
    let complete = generate_housing(&HousingConfig::scaled(0.3), 7);

    // Apartments disappear in proportion to pop-density-driven prices: the
    // dataset keeps mostly cheap, rural listings (keep 35%, correlation 0.8).
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.35, 0.8);
    removal.tf_keep_rate = 0.3;
    removal.seed = 7;
    let scenario = apply_removal(&complete, &removal);

    let mut restore = ReStore::new(scenario.incomplete.clone(), RestoreConfig::default());
    restore.mark_incomplete("apartment");
    restore.train(7).expect("training");

    // Listings and average rent per state (Fig. 1c) — the decision query.
    let query = Query::new(["neighborhood", "apartment"])
        .group_by(["state"])
        .aggregate(Agg::CountStar)
        .aggregate(Agg::Avg("price".into()));
    let truth = execute(&complete, &query).unwrap().groups();
    let incomplete = restore.execute_without_completion(&query).unwrap().groups();
    let completed = restore.execute(&query, 7).unwrap().groups();

    println!(
        "SELECT COUNT(*), AVG(price) FROM neighborhood NATURAL JOIN apartment GROUP BY state;\n"
    );
    println!(
        "{:<6} {:>13} {:>17} {:>16}",
        "state", "true cnt/avg", "incomplete", "completed"
    );
    let mut err_inc = 0.0;
    let mut err_comp = 0.0;
    for (state, t) in &truth {
        let i = incomplete
            .get(state)
            .cloned()
            .unwrap_or(vec![0.0, f64::NAN]);
        let c = completed.get(state).cloned().unwrap_or(vec![0.0, f64::NAN]);
        println!(
            "{:<6} {:>6.0}/{:>6.0} {:>9.0}/{:>7.0} {:>8.0}/{:>7.0}",
            state[0], t[0], t[1], i[0], i[1], c[0], c[1]
        );
        err_inc += ((i[0] - t[0]) / t[0]).abs();
        err_comp += ((c[0] - t[0]) / t[0]).abs();
    }
    let n = truth.len() as f64;
    println!(
        "\nmean relative COUNT error: incomplete {:.1}% → completed {:.1}%",
        100.0 * err_inc / n,
        100.0 * err_comp / n
    );

    // How sure is the model about the completed average rent? (§6)
    let ci = restore
        .confidence(
            &["apartment".to_string()],
            &ConfidenceQuery::Avg {
                table: "apartment".into(),
                column: "price".into(),
            },
            0.95,
            7,
        )
        .expect("confidence interval");
    let truth_avg = execute(
        &complete,
        &Query::new(["apartment"]).aggregate(Agg::Avg("price".into())),
    )
    .unwrap()
    .scalar()
    .unwrap();
    println!(
        "\n95% confidence interval for AVG(price): [{:.0}, {:.0}] (estimate {:.0}, truth {:.0})",
        ci.lo, ci.hi, ci.estimate, truth_avg
    );
}
