//! Completion confidence (§6): how sure is ReStore about its synthesized
//! data? This example sweeps the predictability of the synthetic Exp. 1
//! dataset and shows the 95% confidence intervals tightening as the
//! evidence gets stronger (the behaviour of Fig. 6).
//!
//! ```sh
//! cargo run --release --example confidence_intervals
//! ```

use restore::core::{ConfidenceQuery, ReStore, RestoreConfig};
use restore::data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};

fn main() {
    println!("count-query CI for the most-biased attribute value (keep 40%, corr 60%)\n");
    println!(
        "{:>14} {:>22} {:>10} {:>22} {:>8}",
        "predictability", "95% CI", "truth", "theoretical bounds", "covered"
    );
    for predictability in [0.25, 0.5, 0.75, 1.0] {
        let db = generate_synthetic(
            &SyntheticConfig {
                n_parent: 300,
                predictability,
                ..Default::default()
            },
            13,
        );
        let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.4, 0.6);
        removal.seed = 13;
        let sc = apply_removal(&db, &removal);
        let value = sc.bias_value.clone().unwrap();

        // True fraction of the biased value on the complete data.
        let t = sc.complete.table("tb").unwrap();
        let idx = t.resolve("b").unwrap();
        let truth = (0..t.n_rows())
            .filter(|&r| t.value(r, idx).to_string() == value)
            .count() as f64
            / t.n_rows() as f64;

        let mut restore = ReStore::new(sc.incomplete.clone(), RestoreConfig::default());
        restore.mark_incomplete("tb");
        let ci = restore
            .confidence(
                &["tb".to_string()],
                &ConfidenceQuery::CountFraction {
                    table: "tb".into(),
                    column: "b".into(),
                    value: value.clone(),
                },
                0.95,
                13,
            )
            .expect("confidence interval");
        let (tmin, tmax) = ci.theoretical.unwrap();
        let covered = ci.lo <= truth && truth <= ci.hi;
        println!(
            "{:>13.0}% {:>10.1}% – {:>6.1}% {:>9.1}% {:>10.1}% – {:>6.1}% {:>8}",
            predictability * 100.0,
            ci.lo * 100.0,
            ci.hi * 100.0,
            truth * 100.0,
            tmin * 100.0,
            tmax * 100.0,
            if covered { "yes" } else { "NO" },
        );
    }
    println!("\nHigher predictability ⇒ more certain completions ⇒ tighter intervals (Fig. 6).");
}
