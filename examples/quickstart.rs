//! Quickstart: the Fig. 1 walkthrough of the paper on a generated housing
//! database — annotate the schema, train completion models, and compare an
//! aggregate query on incomplete vs completed vs true data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use restore::core::{ReStore, RestoreConfig};
use restore::data::housing::{generate_housing, HousingConfig};
use restore::data::{apply_removal, BiasSpec, RemovalConfig};
use restore::db::{execute, Agg, Expr, Query};

fn main() {
    // 1. A complete housing database (neighborhood / landlord / apartment,
    //    Fig. 4a) — in reality this would be loaded from your warehouse.
    let complete = generate_housing(&HousingConfig::scaled(0.25), 42);

    // 2. Make it incomplete the way the paper's H1 setup does: expensive
    //    apartments are systematically missing (e.g. landlords in rich
    //    neighborhoods don't publish listings), keeping 40% of tuples.
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.4, 0.7);
    removal.tf_keep_rate = 0.3; // 30% of neighborhoods know their apartment count
    removal.seed = 42;
    let scenario = apply_removal(&complete, &removal);

    // 3. Annotate (§2.2 step 1): tell ReStore which table is incomplete.
    let mut restore = ReStore::new(scenario.incomplete.clone(), RestoreConfig::default());
    restore.mark_incomplete("apartment");

    // 4. Train the completion models (§3).
    let report = restore.train(42).expect("training");
    for m in &report.models {
        println!(
            "trained {} model for `{}` via {} ({} params, {:.1}s, held-out NLL {:.3})",
            if m.ssar { "SSAR" } else { "AR" },
            m.target,
            m.path,
            m.parameters,
            m.seconds,
            m.target_val_loss,
        );
    }

    // 5. Ask for the total price volume of entire homes — a query whose
    //    answer the biased removal corrupted (the paper's Q1).
    let query = Query::new(["apartment"])
        .filter(Expr::col("room_type").eq(Expr::lit("Entire home/apt")))
        .aggregate(Agg::Sum("price".into()));

    let truth = execute(&complete, &query).unwrap().scalar().unwrap();
    let incomplete = restore
        .execute_without_completion(&query)
        .unwrap()
        .scalar()
        .unwrap();
    let completed = restore.execute(&query, 42).unwrap().scalar().unwrap();

    println!("\nSELECT SUM(price) FROM apartment WHERE room_type='Entire home/apt'");
    println!("  true (complete) answer : {truth:9.2}");
    println!(
        "  on incomplete data     : {incomplete:9.2}  (rel. err {:5.2}%)",
        rel(incomplete, truth)
    );
    println!(
        "  after ReStore          : {completed:9.2}  (rel. err {:5.2}%)",
        rel(completed, truth)
    );
    assert!(
        (completed - truth).abs() < (incomplete - truth).abs(),
        "completion should move the answer towards the truth"
    );
    println!(
        "\nReStore recovered {:.0}% of the bias.",
        100.0 * (1.0 - (completed - truth).abs() / (incomplete - truth).abs())
    );
}

fn rel(est: f64, truth: f64) -> f64 {
    100.0 * (est - truth).abs() / truth.abs()
}
