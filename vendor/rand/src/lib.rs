//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the rand 0.9 API the workspace uses:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. `StdRng` is xoshiro256++ seeded through SplitMix64
//! — deterministic across platforms, which is all the reproduction needs
//! (statistical quality far beyond what seeded experiments require).

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only `seed_from_u64` is used by the workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution (floats in
    /// `[0, 1)`, full-range integers, fair bools).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling from range types.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, i64, i32);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_ranges!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
