//! Offline stand-in for the `criterion` crate.
//!
//! Provides the bench-definition API the workspace benches use
//! (`criterion_group!` / `criterion_main!` / `Criterion::benchmark_group` /
//! `bench_function` / `Bencher::iter`) backed by a simple
//! warmup-then-sample timing loop that prints mean / min / max per bench.
//! No statistics engine, no HTML reports — enough to compare variants and
//! track regressions by eye or script.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {} ==", name.as_ref());
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.default_sample_size, f);
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    warmup: bool,
}

impl Bencher {
    /// Times one closure call per sample (after one untimed warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.warmup {
            std::hint::black_box(f());
            return;
        }
        let start = Instant::now();
        std::hint::black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        warmup: true,
    };
    f(&mut b);
    b.warmup = false;
    for _ in 0..samples {
        f(&mut b);
    }
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!("{name:<44} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({n} samples)");
}

/// Re-export matching criterion's `black_box` (benches also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
