//! Error type shared by the relational engine.

use std::fmt;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist (table context in the message).
    UnknownColumn(String),
    /// A column reference matched several columns of a join result.
    AmbiguousColumn(String),
    /// A value had an unexpected type for the operation.
    TypeMismatch {
        expected: &'static str,
        found: String,
    },
    /// Row arity or column length did not match the schema.
    ShapeMismatch(String),
    /// The requested join is impossible (no FK path / cyclic).
    InvalidJoin(String),
    /// Generic invalid query description.
    InvalidQuery(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DbError::InvalidJoin(m) => write!(f, "invalid join: {m}"),
            DbError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used across the engine.
pub type DbResult<T> = Result<T, DbError>;
