//! Columnar storage. Strings are dictionary-encoded — the same dictionaries
//! double as the categorical token domains of the completion models.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Interned string dictionary.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the code of `s`, interning it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let arc: Arc<str> = Arc::from(s);
        let code = self.values.len() as u32;
        self.values.push(Arc::clone(&arc));
        self.index.insert(arc, code);
        code
    }

    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    pub fn value(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A typed column with per-row nullability.
#[derive(Clone, Debug)]
pub enum Column {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Str {
        dict: Dictionary,
        codes: Vec<Option<u32>>,
    },
}

impl Column {
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str {
                dict: Dictionary::new(),
                codes: Vec::new(),
            },
        }
    }

    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str {
                dict: Dictionary::new(),
                codes: Vec::with_capacity(cap),
            },
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str { .. } => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, coercing ints/floats as needed.
    pub fn push(&mut self, value: &Value) -> DbResult<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(i)) => v.push(Some(*i)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(f)) => v.push(Some(*f)),
            (Column::Float(v), Value::Int(i)) => v.push(Some(*i as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                let c = dict.intern(s);
                codes.push(Some(c));
            }
            (Column::Str { codes, .. }, Value::Null) => codes.push(None),
            (col, v) => {
                return Err(DbError::TypeMismatch {
                    expected: match col.dtype() {
                        DataType::Int => "INT",
                        DataType::Float => "FLOAT",
                        DataType::Str => "STR",
                    },
                    found: format!("{v:?}"),
                })
            }
        }
        Ok(())
    }

    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Float(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Str { dict, codes } => {
                codes[row].map_or(Value::Null, |c| Value::Str(Arc::clone(dict.value(c))))
            }
        }
    }

    /// New column with rows gathered by `indices` (duplicates allowed).
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str { dict, codes } => Column::Str {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[i]).collect(),
            },
        }
    }

    /// Appends all rows of `other` (must have the same dtype).
    pub fn extend_from(&mut self, other: &Column) -> DbResult<()> {
        if self.dtype() != other.dtype() {
            return Err(DbError::ShapeMismatch(format!(
                "cannot append {} column to {} column",
                other.dtype(),
                self.dtype()
            )));
        }
        for i in 0..other.len() {
            self.push(&other.get(i))?;
        }
        Ok(())
    }

    /// Mean of non-null numeric values (`None` for string columns / all-null).
    pub fn mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get(i).as_f64() {
                sum += x;
                n += 1;
            }
        }
        if n > 0 {
            Some(sum / n as f64)
        } else {
            None
        }
    }

    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str { codes, .. } => codes.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Approximate resident size in bytes — row storage plus, for string
    /// columns, the dictionary payload. Used by the serving cache's memory
    /// budget; an estimate (allocator slack and map overhead are not
    /// modeled), not an exact accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<Option<i64>>(),
            Column::Float(v) => v.len() * std::mem::size_of::<Option<f64>>(),
            Column::Str { dict, codes } => {
                let strings: usize = (0..dict.len())
                    .map(|c| dict.value(c as u32).len() + std::mem::size_of::<Arc<str>>())
                    .sum();
                // Interned strings are held twice (value vec + index map).
                codes.len() * std::mem::size_of::<Option<u32>>() + 2 * strings
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interning_is_stable() {
        let mut d = Dictionary::new();
        let a = d.intern("x");
        let b = d.intern("y");
        let a2 = d.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(&**d.value(b), "y");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut c = Column::new(DataType::Str);
        c.push(&Value::str("a")).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::str("a")).unwrap();
        assert_eq!(c.get(0), Value::str("a"));
        assert!(c.get(1).is_null());
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(&Value::str("nope")).is_err());
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let mut c = Column::new(DataType::Int);
        for i in 0..4 {
            c.push(&Value::Int(i)).unwrap();
        }
        let g = c.gather(&[3, 0, 0]);
        assert_eq!(g.get(0), Value::Int(3));
        assert_eq!(g.get(1), Value::Int(0));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn mean_skips_nulls() {
        let mut c = Column::new(DataType::Float);
        c.push(&Value::Float(1.0)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Float(3.0)).unwrap();
        assert_eq!(c.mean(), Some(2.0));
    }
}
