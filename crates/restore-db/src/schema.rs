//! The database catalog: tables plus the foreign-key schema graph.
//!
//! ReStore's completion paths and acyclic walks (§3.3, §4) are paths in this
//! graph, so the catalog exposes BFS path finding and neighbor enumeration.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::error::{DbError, DbResult};
use crate::table::Table;

/// A foreign-key relationship: `child.child_col` references
/// `parent.parent_col`. One parent row has many child rows (1:n from the
/// parent's perspective).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    pub child: String,
    pub child_col: String,
    pub parent: String,
    pub parent_col: String,
}

impl ForeignKey {
    pub fn new(
        child: impl Into<String>,
        child_col: impl Into<String>,
        parent: impl Into<String>,
        parent_col: impl Into<String>,
    ) -> Self {
        Self {
            child: child.into(),
            child_col: child_col.into(),
            parent: parent.into(),
            parent_col: parent_col.into(),
        }
    }
}

/// One step along a schema path: the FK edge plus the travel direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    pub fk: ForeignKey,
    /// `true` when travelling parent → child (a 1:n "fan-out" step);
    /// `false` when travelling child → parent (n:1).
    pub fan_out: bool,
}

impl PathStep {
    /// Table this step arrives at.
    pub fn to_table(&self) -> &str {
        if self.fan_out {
            &self.fk.child
        } else {
            &self.fk.parent
        }
    }

    /// Table this step departs from.
    pub fn from_table(&self) -> &str {
        if self.fan_out {
            &self.fk.parent
        } else {
            &self.fk.child
        }
    }
}

/// An in-memory database: named tables + foreign keys.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Registers a foreign key; both tables and columns must exist.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> DbResult<()> {
        let child = self.table(&fk.child)?;
        child.resolve(&fk.child_col)?;
        let parent = self.table(&fk.parent)?;
        parent.resolve(&fk.parent_col)?;
        self.foreign_keys.push(fk);
        Ok(())
    }

    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Replaces (or inserts) a table wholesale.
    pub fn replace_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// FK edge connecting two tables (either direction), if any.
    pub fn edge_between(&self, a: &str, b: &str) -> Option<PathStep> {
        for fk in &self.foreign_keys {
            if fk.parent == a && fk.child == b {
                return Some(PathStep {
                    fk: fk.clone(),
                    fan_out: true,
                });
            }
            if fk.child == a && fk.parent == b {
                return Some(PathStep {
                    fk: fk.clone(),
                    fan_out: false,
                });
            }
        }
        None
    }

    /// All schema-graph neighbors of `table` with their step descriptors.
    pub fn neighbors(&self, table: &str) -> Vec<PathStep> {
        let mut out = Vec::new();
        for fk in &self.foreign_keys {
            if fk.parent == table {
                out.push(PathStep {
                    fk: fk.clone(),
                    fan_out: true,
                });
            }
            if fk.child == table {
                out.push(PathStep {
                    fk: fk.clone(),
                    fan_out: false,
                });
            }
        }
        out
    }

    /// Shortest FK path from `from` to `to` (BFS over the undirected schema
    /// graph). Returns the steps to take, or an error when disconnected.
    pub fn find_path(&self, from: &str, to: &str) -> DbResult<Vec<PathStep>> {
        self.table(from)?;
        self.table(to)?;
        if from == to {
            return Ok(Vec::new());
        }
        let mut prev: HashMap<String, PathStep> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from.to_string());
        let mut seen: HashMap<String, bool> = HashMap::new();
        seen.insert(from.to_string(), true);
        while let Some(cur) = queue.pop_front() {
            for step in self.neighbors(&cur) {
                let nxt = step.to_table().to_string();
                if seen.contains_key(&nxt) {
                    continue;
                }
                seen.insert(nxt.clone(), true);
                prev.insert(nxt.clone(), step);
                if nxt == to {
                    // Reconstruct.
                    let mut path = Vec::new();
                    let mut cur = to.to_string();
                    while cur != from {
                        let step = prev[&cur].clone();
                        cur = step.from_table().to_string();
                        path.push(step);
                    }
                    path.reverse();
                    return Ok(path);
                }
                queue.push_back(nxt);
            }
        }
        Err(DbError::InvalidJoin(format!(
            "no FK path from {from} to {to}"
        )))
    }

    /// Orders `tables` into a connected join sequence: the first table, then
    /// each next table connected by an FK edge to some earlier table.
    /// Errors when the requested set is not connected in the schema graph.
    pub fn join_order(&self, tables: &[String]) -> DbResult<Vec<(String, Option<PathStep>)>> {
        if tables.is_empty() {
            return Err(DbError::InvalidQuery("empty table list".into()));
        }
        for t in tables {
            self.table(t)?;
        }
        let mut placed: Vec<(String, Option<PathStep>)> = vec![(tables[0].clone(), None)];
        let mut remaining: Vec<String> = tables[1..].to_vec();
        while !remaining.is_empty() {
            let mut advanced = false;
            for i in 0..remaining.len() {
                let cand = &remaining[i];
                if let Some(step) = placed.iter().find_map(|(t, _)| self.edge_between(t, cand)) {
                    placed.push((cand.clone(), Some(step)));
                    remaining.remove(i);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Err(DbError::InvalidJoin(format!(
                    "tables {remaining:?} are not FK-connected to {:?}",
                    placed.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>()
                )));
            }
        }
        Ok(placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;
    use crate::value::DataType;

    fn housing_db() -> Database {
        let mut db = Database::new();
        db.add_table(Table::new(
            "neighborhood",
            vec![Field::new("id", DataType::Int)],
        ));
        db.add_table(Table::new(
            "apartment",
            vec![
                Field::new("id", DataType::Int),
                Field::new("neighborhood_id", DataType::Int),
                Field::new("landlord_id", DataType::Int),
            ],
        ));
        db.add_table(Table::new(
            "landlord",
            vec![Field::new("id", DataType::Int)],
        ));
        db.add_table(Table::new(
            "school",
            vec![
                Field::new("id", DataType::Int),
                Field::new("neighborhood_id", DataType::Int),
            ],
        ));
        db.add_foreign_key(ForeignKey::new(
            "apartment",
            "neighborhood_id",
            "neighborhood",
            "id",
        ))
        .unwrap();
        db.add_foreign_key(ForeignKey::new(
            "apartment",
            "landlord_id",
            "landlord",
            "id",
        ))
        .unwrap();
        db.add_foreign_key(ForeignKey::new(
            "school",
            "neighborhood_id",
            "neighborhood",
            "id",
        ))
        .unwrap();
        db
    }

    #[test]
    fn foreign_key_validation() {
        let mut db = housing_db();
        assert!(db
            .add_foreign_key(ForeignKey::new("apartment", "nope", "neighborhood", "id"))
            .is_err());
        assert!(db
            .add_foreign_key(ForeignKey::new("missing", "id", "neighborhood", "id"))
            .is_err());
    }

    #[test]
    fn path_direction_is_tracked() {
        let db = housing_db();
        let path = db.find_path("neighborhood", "apartment").unwrap();
        assert_eq!(path.len(), 1);
        assert!(path[0].fan_out, "neighborhood->apartment is 1:n");
        let back = db.find_path("apartment", "neighborhood").unwrap();
        assert!(!back[0].fan_out, "apartment->neighborhood is n:1");
    }

    #[test]
    fn multi_hop_path() {
        let db = housing_db();
        let path = db.find_path("landlord", "school").unwrap();
        let tables: Vec<&str> = path.iter().map(|s| s.to_table()).collect();
        assert_eq!(tables, vec!["apartment", "neighborhood", "school"]);
    }

    #[test]
    fn disconnected_tables_error() {
        let mut db = housing_db();
        db.add_table(Table::new("island", vec![Field::new("id", DataType::Int)]));
        assert!(db.find_path("island", "apartment").is_err());
    }

    #[test]
    fn join_order_builds_connected_sequence() {
        let db = housing_db();
        let order = db
            .join_order(&["landlord".into(), "neighborhood".into(), "apartment".into()])
            .unwrap();
        assert_eq!(order[0].0, "landlord");
        assert_eq!(order[1].0, "apartment");
        assert_eq!(order[2].0, "neighborhood");
        assert!(order[1].1.as_ref().is_some());
    }

    #[test]
    fn join_order_rejects_disconnected_sets() {
        let db = housing_db();
        assert!(db
            .join_order(&["landlord".into(), "school".into()])
            .is_err());
        // (landlord and school only connect through apartment+neighborhood)
    }

    #[test]
    fn same_table_path_is_empty() {
        let db = housing_db();
        assert!(db.find_path("apartment", "apartment").unwrap().is_empty());
    }
}
