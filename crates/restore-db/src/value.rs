//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The data types the engine stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A scalar value. `Null` is a member of every type.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Numeric view: ints widen to floats; strings and nulls are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison: `Null` compares to nothing (returns `None`);
    /// ints and floats compare numerically; strings lexicographically.
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and equal-valued floats must hash alike (they are equal).
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.partial_cmp_sql(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).partial_cmp_sql(&Value::Null), None);
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        let a = Value::str("apple");
        let b = Value::str("banana");
        assert_eq!(a.partial_cmp_sql(&b), Some(Ordering::Less));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).partial_cmp_sql(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn string_never_equals_number() {
        assert_ne!(Value::str("1"), Value::Int(1));
    }
}
