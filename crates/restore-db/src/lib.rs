//! # restore-db — relational substrate for ReStore
//!
//! An in-memory relational engine purpose-built for the ReStore
//! reproduction:
//!
//! * typed, nullable, dictionary-encoded columnar storage
//!   ([`column::Column`], [`table::Table`]);
//! * a catalog with a foreign-key **schema graph** ([`schema::Database`]) —
//!   completion paths and acyclic walks are paths in this graph;
//! * scalar expressions for filter predicates ([`expr::Expr`]);
//! * hash equi-joins with row provenance ([`query::join`]) — the
//!   incompleteness join needs to know which evidence rows lack partners;
//! * grouped aggregation and an SPJA executor ([`query`]), including
//!   [`query::execute_on_join`] for running a query tail over a *completed*
//!   join produced by ReStore.

pub mod column;
pub mod error;
pub mod expr;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;

pub use column::{Column, Dictionary};
pub use error::{DbError, DbResult};
pub use expr::{ArithOp, CmpOp, Expr};
pub use query::{
    aggregate, execute, execute_on_join, hash_join, partner_counts, Agg, JoinOutput, Query,
    QueryResult,
};
pub use schema::{Database, ForeignKey, PathStep};
pub use table::{Field, Table};
pub use value::{DataType, Value};
