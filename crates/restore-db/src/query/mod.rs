//! SPJA query representation and execution.
//!
//! The paper supports acyclic Select-Project-Join-Aggregate queries with
//! equi-joins along foreign keys, arbitrary filters, and any number of
//! group-by attributes (§2.2). [`Query`] captures exactly that shape;
//! [`execute`] runs it over a [`Database`], and [`execute_on_join`] runs the
//! filter/aggregate tail over an externally provided (e.g. *completed*)
//! join — which is how ReStore answers queries after an incompleteness join.

pub mod aggregate;
pub mod executor;
pub mod join;

pub use aggregate::{aggregate, Agg};
pub use executor::{execute, execute_on_join, QueryResult};
pub use join::{hash_join, partner_counts, JoinOutput};

use crate::expr::Expr;

/// An SPJA query over FK-connected tables.
#[derive(Clone, Debug)]
pub struct Query {
    /// Tables to join (must form a connected acyclic subgraph of the FK
    /// schema graph). A single table means no join.
    pub tables: Vec<String>,
    /// Optional filter predicate applied after the join.
    pub filter: Option<Expr>,
    /// Group-by column references.
    pub group_by: Vec<String>,
    /// Aggregates to compute. Empty = return the filtered join itself.
    pub aggregates: Vec<Agg>,
}

impl Query {
    pub fn new(tables: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            tables: tables.into_iter().map(Into::into).collect(),
            filter: None,
            group_by: Vec::new(),
            aggregates: Vec::new(),
        }
    }

    pub fn filter(mut self, predicate: Expr) -> Self {
        self.filter = Some(predicate);
        self
    }

    pub fn group_by(mut self, cols: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.group_by = cols.into_iter().map(Into::into).collect();
        self
    }

    pub fn aggregate(mut self, agg: Agg) -> Self {
        self.aggregates.push(agg);
        self
    }
}
