//! Query execution: join planning + filter + aggregation.

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::schema::Database;
use crate::table::Table;

use super::aggregate::aggregate;
use super::join::hash_join;
use super::Query;

/// A query result with helpers for extracting scalars / group maps.
#[derive(Clone, Debug)]
pub struct QueryResult {
    pub table: Table,
    /// Number of leading group-key columns.
    pub group_cols: usize,
}

impl QueryResult {
    /// The single numeric result of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<f64> {
        if self.group_cols == 0 && self.table.n_rows() == 1 {
            self.table.value(0, 0).as_f64()
        } else {
            None
        }
    }

    /// Map from group key (rendered values) to the aggregate columns.
    pub fn groups(&self) -> BTreeMap<Vec<String>, Vec<f64>> {
        let mut out = BTreeMap::new();
        for r in 0..self.table.n_rows() {
            let key: Vec<String> = (0..self.group_cols)
                .map(|c| self.table.value(r, c).to_string())
                .collect();
            let vals: Vec<f64> = (self.group_cols..self.table.n_cols())
                .map(|c| self.table.value(r, c).as_f64().unwrap_or(f64::NAN))
                .collect();
            out.insert(key, vals);
        }
        out
    }
}

/// Computes the (natural, FK-directed) join of the query's tables.
///
/// The first table's columns come first; every further table is attached by
/// a hash join along the FK edge the planner discovered. Output column
/// names are fully qualified.
pub fn join_tables(db: &Database, tables: &[String]) -> DbResult<Table> {
    let order = db.join_order(tables)?;
    let mut joined = db.table(&order[0].0)?.qualified();
    for (name, step) in &order[1..] {
        let step = step
            .as_ref()
            .ok_or_else(|| DbError::InvalidJoin(format!("{name} lacks a join edge")))?;
        let right = db.table(name)?;
        let (left_on, right_on) = if step.fan_out {
            // Accumulated side holds the parent.
            (
                format!("{}.{}", step.fk.parent, step.fk.parent_col),
                format!("{}.{}", step.fk.child, step.fk.child_col),
            )
        } else {
            (
                format!("{}.{}", step.fk.child, step.fk.child_col),
                format!("{}.{}", step.fk.parent, step.fk.parent_col),
            )
        };
        let out = hash_join(&joined, &left_on, right, &right_on, "join")?;
        joined = out.table;
    }
    Ok(joined)
}

/// Executes an SPJA query over the database.
pub fn execute(db: &Database, query: &Query) -> DbResult<QueryResult> {
    let joined = join_tables(db, &query.tables)?;
    execute_on_join(&joined, query)
}

/// Executes the filter/group/aggregate tail of `query` over an externally
/// provided join result (e.g. a *completed* join produced by ReStore).
pub fn execute_on_join(joined: &Table, query: &Query) -> DbResult<QueryResult> {
    let filtered = match &query.filter {
        Some(pred) => {
            let mask = pred.eval_mask(joined)?;
            joined.filter(&mask)
        }
        None => joined.clone(),
    };
    if query.aggregates.is_empty() {
        return Ok(QueryResult {
            table: filtered,
            group_cols: query.group_by.len(),
        });
    }
    let table = aggregate(&filtered, &query.group_by, &query.aggregates)?;
    Ok(QueryResult {
        table,
        group_cols: query.group_by.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::Agg;
    use crate::schema::ForeignKey;
    use crate::table::Field;
    use crate::value::{DataType, Value};

    /// The running example of the paper: neighborhoods with apartments.
    fn housing() -> Database {
        let mut db = Database::new();
        let mut n = Table::new(
            "neighborhood",
            vec![
                Field::new("id", DataType::Int),
                Field::new("state", DataType::Str),
                Field::new("pop_density", DataType::Float),
            ],
        );
        n.push_row(&[Value::Int(1), Value::str("NYC"), Value::Float(27000.0)])
            .unwrap();
        n.push_row(&[Value::Int(2), Value::str("CA"), Value::Float(254.0)])
            .unwrap();
        db.add_table(n);
        let mut a = Table::new(
            "apartment",
            vec![
                Field::new("id", DataType::Int),
                Field::new("neighborhood_id", DataType::Int),
                Field::new("rent", DataType::Float),
            ],
        );
        a.push_row(&[Value::Int(1), Value::Int(1), Value::Float(2000.0)])
            .unwrap();
        a.push_row(&[Value::Int(2), Value::Int(1), Value::Float(3000.0)])
            .unwrap();
        a.push_row(&[Value::Int(3), Value::Int(2), Value::Float(3200.0)])
            .unwrap();
        a.push_row(&[Value::Int(4), Value::Int(2), Value::Float(2000.0)])
            .unwrap();
        a.push_row(&[Value::Int(5), Value::Int(2), Value::Float(1000.0)])
            .unwrap();
        db.add_table(a);
        db.add_foreign_key(ForeignKey::new(
            "apartment",
            "neighborhood_id",
            "neighborhood",
            "id",
        ))
        .unwrap();
        db
    }

    #[test]
    fn figure_1c_average_rent_per_state() {
        // SELECT AVG(rent) FROM neighborhood NATURAL JOIN apartment GROUP BY state
        let db = housing();
        let q = Query::new(["neighborhood", "apartment"])
            .group_by(["state"])
            .aggregate(Agg::Avg("rent".into()));
        let res = execute(&db, &q).unwrap();
        let groups = res.groups();
        assert_eq!(
            groups[&vec!["CA".to_string()]][0],
            (3200.0 + 2000.0 + 1000.0) / 3.0
        );
        assert_eq!(groups[&vec!["NYC".to_string()]][0], 2500.0);
    }

    #[test]
    fn single_table_scalar_query() {
        let db = housing();
        let q = Query::new(["apartment"])
            .filter(Expr::col("rent").ge(Expr::lit(2000.0)))
            .aggregate(Agg::CountStar);
        let res = execute(&db, &q).unwrap();
        assert_eq!(res.scalar(), Some(4.0));
    }

    #[test]
    fn filter_on_joined_table() {
        let db = housing();
        let q = Query::new(["apartment", "neighborhood"])
            .filter(Expr::col("state").eq(Expr::lit("CA")))
            .aggregate(Agg::Sum("rent".into()));
        let res = execute(&db, &q).unwrap();
        assert_eq!(res.scalar(), Some(6200.0));
    }

    #[test]
    fn no_aggregates_returns_filtered_join() {
        let db = housing();
        let q = Query::new(["neighborhood", "apartment"])
            .filter(Expr::col("rent").gt(Expr::lit(2500.0)));
        let res = execute(&db, &q).unwrap();
        assert_eq!(res.table.n_rows(), 2);
    }

    #[test]
    fn disconnected_query_errors() {
        let mut db = housing();
        db.add_table(Table::new("island", vec![Field::new("id", DataType::Int)]));
        let q = Query::new(["apartment", "island"]).aggregate(Agg::CountStar);
        assert!(execute(&db, &q).is_err());
    }

    #[test]
    fn execute_on_provided_join_matches_execute() {
        let db = housing();
        let q = Query::new(["neighborhood", "apartment"])
            .group_by(["state"])
            .aggregate(Agg::CountStar);
        let joined = join_tables(&db, &q.tables).unwrap();
        let a = execute(&db, &q).unwrap();
        let b = execute_on_join(&joined, &q).unwrap();
        assert_eq!(a.groups(), b.groups());
    }
}
