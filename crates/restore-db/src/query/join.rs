//! Hash equi-join along foreign keys.

use std::collections::HashMap;

use crate::error::DbResult;
use crate::table::Table;
use crate::value::Value;

/// Result of a hash join, keeping the row provenance that ReStore's
/// incompleteness join needs (which left rows had no partner, §4.2).
#[derive(Debug)]
pub struct JoinOutput {
    /// The joined table (columns of both inputs, qualified names).
    pub table: Table,
    /// For each output row: the source row in the left input.
    pub left_indices: Vec<usize>,
    /// For each output row: the source row in the right input.
    pub right_indices: Vec<usize>,
    /// Left rows that found no join partner.
    pub unmatched_left: Vec<usize>,
}

/// Inner hash join `left ⋈ right` on `left.left_on == right.right_on`.
///
/// Both inputs are qualified (`table.column`) before stacking so column
/// names never collide. NULL keys never match (SQL semantics).
pub fn hash_join(
    left: &Table,
    left_on: &str,
    right: &Table,
    right_on: &str,
    out_name: &str,
) -> DbResult<JoinOutput> {
    let lcol = left.resolve(left_on)?;
    let rcol = right.resolve(right_on)?;

    // Build on the right input.
    let mut build: HashMap<Value, Vec<usize>> = HashMap::with_capacity(right.n_rows());
    for r in 0..right.n_rows() {
        let key = right.value(r, rcol);
        if key.is_null() {
            continue;
        }
        build.entry(key).or_default().push(r);
    }

    let mut left_indices = Vec::new();
    let mut right_indices = Vec::new();
    let mut unmatched_left = Vec::new();
    for l in 0..left.n_rows() {
        let key = left.value(l, lcol);
        if key.is_null() {
            unmatched_left.push(l);
            continue;
        }
        match build.get(&key) {
            Some(rows) => {
                for &r in rows {
                    left_indices.push(l);
                    right_indices.push(r);
                }
            }
            None => unmatched_left.push(l),
        }
    }

    let lgath = left.qualified().gather(&left_indices);
    let rgath = right.qualified().gather(&right_indices);
    let table = lgath.hstack(&rgath, out_name)?;
    Ok(JoinOutput {
        table,
        left_indices,
        right_indices,
        unmatched_left,
    })
}

/// Number of join partners each left row has in `right` — the raw material
/// for tuple factors.
pub fn partner_counts(
    left: &Table,
    left_on: &str,
    right: &Table,
    right_on: &str,
) -> DbResult<Vec<usize>> {
    let lcol = left.resolve(left_on)?;
    let rcol = right.resolve(right_on)?;
    let mut counts: HashMap<Value, usize> = HashMap::with_capacity(left.n_rows());
    for r in 0..right.n_rows() {
        let key = right.value(r, rcol);
        if !key.is_null() {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    Ok((0..left.n_rows())
        .map(|l| {
            let key = left.value(l, lcol);
            if key.is_null() {
                0
            } else {
                counts.get(&key).copied().unwrap_or(0)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;
    use crate::value::DataType;

    fn parent() -> Table {
        let mut t = Table::new(
            "p",
            vec![
                Field::new("id", DataType::Int),
                Field::new("x", DataType::Str),
            ],
        );
        t.push_row(&[Value::Int(1), Value::str("a")]).unwrap();
        t.push_row(&[Value::Int(2), Value::str("b")]).unwrap();
        t.push_row(&[Value::Int(3), Value::str("c")]).unwrap();
        t
    }

    fn child() -> Table {
        let mut t = Table::new(
            "c",
            vec![
                Field::new("pid", DataType::Int),
                Field::new("y", DataType::Float),
            ],
        );
        t.push_row(&[Value::Int(1), Value::Float(10.0)]).unwrap();
        t.push_row(&[Value::Int(1), Value::Float(20.0)]).unwrap();
        t.push_row(&[Value::Int(3), Value::Float(30.0)]).unwrap();
        t.push_row(&[Value::Null, Value::Float(99.0)]).unwrap();
        t
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let p = parent();
        let c = child();
        let out = hash_join(&p, "id", &c, "pid", "j").unwrap();
        // Reference: nested loop.
        let mut expect = 0;
        for i in 0..p.n_rows() {
            for j in 0..c.n_rows() {
                if p.value(i, 0) == c.value(j, 0) && !p.value(i, 0).is_null() {
                    expect += 1;
                }
            }
        }
        assert_eq!(out.table.n_rows(), expect);
        assert_eq!(out.table.n_rows(), 3);
        // Provenance lines up.
        for (k, (&l, &r)) in out.left_indices.iter().zip(&out.right_indices).enumerate() {
            assert_eq!(out.table.value(k, 0), p.value(l, 0));
            assert_eq!(out.table.value(k, 3), c.value(r, 1));
        }
    }

    #[test]
    fn unmatched_left_rows_are_reported() {
        let p = parent();
        let c = child();
        let out = hash_join(&p, "id", &c, "pid", "j").unwrap();
        assert_eq!(out.unmatched_left, vec![1]); // id=2 has no children
    }

    #[test]
    fn null_keys_never_match() {
        let p = parent();
        let c = child();
        let out = hash_join(&c, "pid", &p, "id", "j").unwrap();
        // The NULL child is unmatched even though no parent key is NULL.
        assert!(out.unmatched_left.contains(&3));
    }

    #[test]
    fn qualified_output_names() {
        let out = hash_join(&parent(), "id", &child(), "pid", "j").unwrap();
        let names: Vec<&str> = out.table.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["p.id", "p.x", "c.pid", "c.y"]);
    }

    #[test]
    fn partner_counts_match_join() {
        let p = parent();
        let c = child();
        let counts = partner_counts(&p, "id", &c, "pid").unwrap();
        assert_eq!(counts, vec![2, 0, 1]);
    }
}
