//! Grouped aggregation.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::table::{Field, Table};
use crate::value::{DataType, Value};

/// Aggregate functions supported by the SPJA executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Agg {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)` — non-null values.
    Count(String),
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl Agg {
    /// Output column name, e.g. `sum_price`.
    pub fn output_name(&self) -> String {
        match self {
            Agg::CountStar => "count".to_string(),
            Agg::Count(c) => format!("count_{}", short(c)),
            Agg::Sum(c) => format!("sum_{}", short(c)),
            Agg::Avg(c) => format!("avg_{}", short(c)),
            Agg::Min(c) => format!("min_{}", short(c)),
            Agg::Max(c) => format!("max_{}", short(c)),
        }
    }

    pub fn input_column(&self) -> Option<&str> {
        match self {
            Agg::CountStar => None,
            Agg::Count(c) | Agg::Sum(c) | Agg::Avg(c) | Agg::Min(c) | Agg::Max(c) => Some(c),
        }
    }
}

fn short(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

struct AggState {
    count: usize,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        let better_min = self
            .min
            .as_ref()
            .is_none_or(|m| matches!(v.partial_cmp_sql(m), Some(std::cmp::Ordering::Less)));
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .is_none_or(|m| matches!(v.partial_cmp_sql(m), Some(std::cmp::Ordering::Greater)));
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, agg: &Agg, group_rows: usize) -> Value {
        match agg {
            Agg::CountStar => Value::Int(group_rows as i64),
            Agg::Count(_) => Value::Int(self.count as i64),
            Agg::Sum(_) => Value::Float(self.sum),
            Agg::Avg(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Agg::Min(_) => self.min.clone().unwrap_or(Value::Null),
            Agg::Max(_) => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Groups `table` by `group_by` columns and computes `aggs` per group.
///
/// Without group-by columns a single row is produced (even for an empty
/// input, matching SQL's global aggregation semantics).
pub fn aggregate(table: &Table, group_by: &[String], aggs: &[Agg]) -> DbResult<Table> {
    if aggs.is_empty() {
        return Err(DbError::InvalidQuery(
            "aggregation without aggregate functions".into(),
        ));
    }
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| table.resolve(g))
        .collect::<DbResult<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| a.input_column().map(|c| table.resolve(c)).transpose())
        .collect::<DbResult<_>>()?;

    // Group rows.
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    if group_idx.is_empty() {
        groups.insert(Vec::new(), (0..table.n_rows()).collect());
    } else {
        for r in 0..table.n_rows() {
            let key: Vec<Value> = group_idx.iter().map(|&c| table.value(r, c)).collect();
            groups.entry(key).or_default().push(r);
        }
    }

    // Deterministic output order.
    let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
    keys.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x
                .partial_cmp_sql(y)
                .unwrap_or_else(|| x.is_null().cmp(&y.is_null()));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    // Output schema.
    let mut fields: Vec<Field> = group_idx
        .iter()
        .map(|&i| table.fields()[i].clone())
        .collect();
    for (agg, idx) in aggs.iter().zip(&agg_idx) {
        let dtype = match agg {
            Agg::CountStar | Agg::Count(_) => DataType::Int,
            Agg::Sum(_) | Agg::Avg(_) => DataType::Float,
            Agg::Min(_) | Agg::Max(_) => table.fields()[idx.unwrap()].dtype,
        };
        fields.push(Field::new(agg.output_name(), dtype));
    }
    let mut out = Table::new(format!("{}_agg", table.name()), fields);

    for key in keys {
        let rows = &groups[key];
        let mut row: Vec<Value> = key.clone();
        for (agg, idx) in aggs.iter().zip(&agg_idx) {
            let mut state = AggState::new();
            if let Some(c) = idx {
                for &r in rows {
                    state.update(&table.value(r, *c));
                }
            }
            row.push(state.finish(agg, rows.len()));
        }
        out.push_row(&row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        let mut t = Table::new(
            "sales",
            vec![
                Field::new("region", DataType::Str),
                Field::new("amount", DataType::Float),
            ],
        );
        for (r, a) in [
            ("east", 10.0),
            ("east", 20.0),
            ("west", 5.0),
            ("west", 15.0),
            ("west", 10.0),
        ] {
            t.push_row(&[Value::str(r), Value::Float(a)]).unwrap();
        }
        t.push_row(&[Value::str("east"), Value::Null]).unwrap();
        t
    }

    #[test]
    fn grouped_aggregates_match_reference() {
        let t = sales();
        let out = aggregate(
            &t,
            &["region".into()],
            &[
                Agg::CountStar,
                Agg::Sum("amount".into()),
                Agg::Avg("amount".into()),
            ],
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
        // east: 3 rows, sum 30 (null skipped), avg 15
        assert_eq!(out.value(0, 0), Value::str("east"));
        assert_eq!(out.value(0, 1), Value::Int(3));
        assert_eq!(out.value(0, 2), Value::Float(30.0));
        assert_eq!(out.value(0, 3), Value::Float(15.0));
        // west: 3 rows, sum 30, avg 10
        assert_eq!(out.value(1, 1), Value::Int(3));
        assert_eq!(out.value(1, 3), Value::Float(10.0));
    }

    #[test]
    fn global_aggregate_without_groups() {
        let t = sales();
        let out = aggregate(
            &t,
            &[],
            &[Agg::Min("amount".into()), Agg::Max("amount".into())],
        )
        .unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Float(5.0));
        assert_eq!(out.value(0, 1), Value::Float(20.0));
    }

    #[test]
    fn empty_input_global_aggregate() {
        let t = Table::new("e", vec![Field::new("x", DataType::Float)]);
        let out = aggregate(&t, &[], &[Agg::CountStar, Agg::Avg("x".into())]).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(0));
        assert!(out.value(0, 1).is_null());
    }

    #[test]
    fn count_col_skips_nulls() {
        let t = sales();
        let out = aggregate(&t, &[], &[Agg::CountStar, Agg::Count("amount".into())]).unwrap();
        assert_eq!(out.value(0, 0), Value::Int(6));
        assert_eq!(out.value(0, 1), Value::Int(5));
    }

    #[test]
    fn output_is_sorted_by_group_key() {
        let t = sales();
        let out = aggregate(&t, &["region".into()], &[Agg::CountStar]).unwrap();
        assert_eq!(out.value(0, 0), Value::str("east"));
        assert_eq!(out.value(1, 0), Value::str("west"));
    }

    #[test]
    fn no_aggs_is_invalid() {
        let t = sales();
        assert!(aggregate(&t, &[], &[]).is_err());
    }
}
