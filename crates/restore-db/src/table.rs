//! Tables: a named schema plus columnar data.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// A named, typed column of a table schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

/// An in-memory table.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    fields: Vec<Field>,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        let columns = fields.iter().map(|f| Column::new(f.dtype)).collect();
        Self {
            name: name.into(),
            fields,
            columns,
            n_rows: 0,
        }
    }

    /// Builds a table directly from columns (all lengths must agree).
    pub fn from_columns(
        name: impl Into<String>,
        fields: Vec<Field>,
        columns: Vec<Column>,
    ) -> DbResult<Self> {
        if fields.len() != columns.len() {
            return Err(DbError::ShapeMismatch("fields/columns count".into()));
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (f, c) in fields.iter().zip(&columns) {
            if c.len() != n_rows {
                return Err(DbError::ShapeMismatch(format!("column {} length", f.name)));
            }
            if c.dtype() != f.dtype {
                return Err(DbError::TypeMismatch {
                    expected: "field dtype",
                    found: format!("{}", c.dtype()),
                });
            }
        }
        Ok(Self {
            name: name.into(),
            fields,
            columns,
            n_rows,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Approximate resident size in bytes (sum of the columns' estimates
    /// plus field-name payload) — see [`Column::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        let cols: usize = self.columns.iter().map(Column::approx_bytes).sum();
        let names: usize = self.fields.iter().map(|f| f.name.len() + 48).sum();
        cols + names
    }

    pub fn n_cols(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Resolves a possibly qualified column reference.
    ///
    /// Resolution order: exact match; stored-qualified vs bare reference
    /// (`apartment.price` matches reference `price`); bare-stored vs
    /// qualified reference (`price` matches reference `apartment.price`
    /// when this table is `apartment`). Ambiguity is an error.
    pub fn resolve(&self, reference: &str) -> DbResult<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == reference) {
            return Ok(i);
        }
        let suffix = format!(".{reference}");
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => return Ok(matches[0]),
            n if n > 1 => return Err(DbError::AmbiguousColumn(reference.to_string())),
            _ => {}
        }
        if let Some((table_part, col_part)) = reference.rsplit_once('.') {
            if table_part == self.name {
                if let Some(i) = self.fields.iter().position(|f| f.name == col_part) {
                    return Ok(i);
                }
            }
        }
        Err(DbError::UnknownColumn(format!(
            "{reference} in table {}",
            self.name
        )))
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, reference: &str) -> DbResult<&Column> {
        Ok(&self.columns[self.resolve(reference)?])
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Appends a row of values in schema order.
    pub fn push_row(&mut self, row: &[Value]) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ShapeMismatch(format!(
                "row arity {} vs schema {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v)?;
        }
        self.n_rows += 1;
        Ok(())
    }

    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materializes row `r` as a `Vec<Value>`.
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(r)).collect()
    }

    /// New table with rows gathered by `indices` (duplicates allowed).
    pub fn gather(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            name: self.name.clone(),
            fields: self.fields.clone(),
            columns,
            n_rows: indices.len(),
        }
    }

    /// New table keeping only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        assert_eq!(mask.len(), self.n_rows, "mask length mismatch");
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        self.gather(&idx)
    }

    /// Projects onto the referenced columns (in the given order).
    pub fn project(&self, references: &[&str]) -> DbResult<Table> {
        let mut fields = Vec::with_capacity(references.len());
        let mut columns = Vec::with_capacity(references.len());
        for r in references {
            let i = self.resolve(r)?;
            fields.push(self.fields[i].clone());
            columns.push(self.columns[i].clone());
        }
        Ok(Table {
            name: self.name.clone(),
            fields,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// Appends all rows of `other`; schemas must match by position & dtype.
    pub fn union(&mut self, other: &Table) -> DbResult<()> {
        if self.fields.len() != other.fields.len() {
            return Err(DbError::ShapeMismatch("union arity".into()));
        }
        for ((a, b), f) in self
            .columns
            .iter_mut()
            .zip(&other.columns)
            .zip(&self.fields)
        {
            if a.dtype() != b.dtype() {
                return Err(DbError::TypeMismatch {
                    expected: "matching dtypes",
                    found: f.name.clone(),
                });
            }
            a.extend_from(b)?;
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// Renames every unqualified field to `table.field`.
    pub fn qualified(&self) -> Table {
        let fields = self
            .fields
            .iter()
            .map(|f| {
                if f.name.contains('.') {
                    f.clone()
                } else {
                    Field::new(format!("{}.{}", self.name, f.name), f.dtype)
                }
            })
            .collect();
        Table {
            name: self.name.clone(),
            fields,
            columns: self.columns.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Adds a column to the table (length must equal `n_rows`).
    pub fn add_column(&mut self, field: Field, column: Column) -> DbResult<()> {
        if column.len() != self.n_rows {
            return Err(DbError::ShapeMismatch(format!(
                "column {} length",
                field.name
            )));
        }
        self.fields.push(field);
        self.columns.push(column);
        Ok(())
    }

    /// Side-by-side concatenation of two tables with equal row counts.
    pub fn hstack(&self, other: &Table, name: impl Into<String>) -> DbResult<Table> {
        if self.n_rows != other.n_rows {
            return Err(DbError::ShapeMismatch("hstack row counts".into()));
        }
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Ok(Table {
            name: name.into(),
            fields,
            columns,
            n_rows: self.n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(
            "people",
            vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("age", DataType::Float),
            ],
        );
        t.push_row(&[Value::Int(1), Value::str("ann"), Value::Float(31.0)])
            .unwrap();
        t.push_row(&[Value::Int(2), Value::str("bob"), Value::Float(25.0)])
            .unwrap();
        t.push_row(&[Value::Int(3), Value::Null, Value::Float(40.0)])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read_rows() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(1, 1), Value::str("bob"));
        assert!(t.value(2, 1).is_null());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut t = people();
        assert!(t.push_row(&[Value::Int(9)]).is_err());
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let t = people().qualified();
        assert_eq!(t.fields()[0].name, "people.id");
        assert!(t.resolve("id").is_ok());
        assert!(t.resolve("people.id").is_ok());
        assert!(t.resolve("nope").is_err());
        // bare table resolving a qualified reference
        let bare = people();
        assert!(bare.resolve("people.age").is_ok());
        assert!(bare.resolve("other.age").is_err());
    }

    #[test]
    fn ambiguous_reference_is_an_error() {
        let mut t = people().qualified();
        t.add_column(Field::new("pets.id", DataType::Int), {
            let mut c = Column::new(DataType::Int);
            for _ in 0..3 {
                c.push(&Value::Int(0)).unwrap();
            }
            c
        })
        .unwrap();
        assert!(matches!(t.resolve("id"), Err(DbError::AmbiguousColumn(_))));
    }

    #[test]
    fn filter_and_gather() {
        let t = people();
        let f = t.filter(&[true, false, true]);
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.value(1, 0), Value::Int(3));
        let g = t.gather(&[2, 2]);
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.value(0, 0), g.value(1, 0));
    }

    #[test]
    fn union_appends_rows() {
        let mut a = people();
        let b = people();
        a.union(&b).unwrap();
        assert_eq!(a.n_rows(), 6);
    }

    #[test]
    fn project_reorders_columns() {
        let t = people();
        let p = t.project(&["age", "id"]).unwrap();
        assert_eq!(p.fields()[0].name, "age");
        assert_eq!(p.value(0, 1), Value::Int(1));
    }

    #[test]
    fn hstack_requires_equal_rows() {
        let t = people();
        let short = t.filter(&[true, false, false]);
        assert!(t.hstack(&short, "x").is_err());
        let wide = t.hstack(&t.qualified(), "w").unwrap();
        assert_eq!(wide.n_cols(), 6);
    }
}
