//! Scalar expressions for filter predicates.
//!
//! ReStore supports "arbitrary filter predicates" (§2.2) because filters run
//! on the completed join with normal operators — this module provides the
//! comparison / boolean / arithmetic expression tree those filters use.

use crate::error::DbResult;
use crate::table::Table;
use crate::value::Value;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A scalar expression evaluated per row.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Column reference (possibly qualified, e.g. `apartment.price`).
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison; SQL semantics (NULL compares to nothing → false).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// True when the inner expression is NULL.
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(rhs))
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(rhs))
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(rhs))
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(rhs))
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(rhs))
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(rhs))
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates the expression for row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> DbResult<Value> {
        Ok(match self {
            Expr::Col(name) => {
                let idx = table.resolve(name)?;
                table.value(row, idx)
            }
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(a, op, b) => {
                let (va, vb) = (a.eval(table, row)?, b.eval(table, row)?);
                match (op, va.partial_cmp_sql(&vb)) {
                    (_, None) => {
                        // NULL comparison is false except explicit Ne of
                        // non-null vs null which is also NULL in SQL; we
                        // model three-valued logic collapsed to false.
                        Value::Int(0)
                    }
                    (CmpOp::Eq, Some(o)) => Value::Int((o == std::cmp::Ordering::Equal) as i64),
                    (CmpOp::Ne, Some(o)) => Value::Int((o != std::cmp::Ordering::Equal) as i64),
                    (CmpOp::Lt, Some(o)) => Value::Int((o == std::cmp::Ordering::Less) as i64),
                    (CmpOp::Le, Some(o)) => Value::Int((o != std::cmp::Ordering::Greater) as i64),
                    (CmpOp::Gt, Some(o)) => Value::Int((o == std::cmp::Ordering::Greater) as i64),
                    (CmpOp::Ge, Some(o)) => Value::Int((o != std::cmp::Ordering::Less) as i64),
                }
            }
            Expr::And(a, b) => {
                Value::Int((a.eval_bool(table, row)? && b.eval_bool(table, row)?) as i64)
            }
            Expr::Or(a, b) => {
                Value::Int((a.eval_bool(table, row)? || b.eval_bool(table, row)?) as i64)
            }
            Expr::Not(a) => Value::Int(!a.eval_bool(table, row)? as i64),
            Expr::Arith(a, op, b) => {
                let (va, vb) = (a.eval(table, row)?, b.eval(table, row)?);
                match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return Ok(Value::Null);
                                }
                                x / y
                            }
                        };
                        Value::Float(r)
                    }
                    _ => Value::Null,
                }
            }
            Expr::IsNull(a) => Value::Int(a.eval(table, row)?.is_null() as i64),
        })
    }

    /// Evaluates as a boolean; NULL and 0 are false.
    pub fn eval_bool(&self, table: &Table, row: usize) -> DbResult<bool> {
        Ok(match self.eval(table, row)? {
            Value::Null => false,
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            Value::Str(_) => true,
        })
    }

    /// Evaluates the predicate for every row, returning the selection mask.
    pub fn eval_mask(&self, table: &Table) -> DbResult<Vec<bool>> {
        (0..table.n_rows())
            .map(|r| self.eval_bool(table, r))
            .collect()
    }

    /// Collects every column reference in the expression tree.
    pub fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => out.push(name.clone()),
            Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(a, _, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;
    use crate::value::DataType;

    fn apartments() -> Table {
        let mut t = Table::new(
            "apartment",
            vec![
                Field::new("price", DataType::Float),
                Field::new("room_type", DataType::Str),
                Field::new("rooms", DataType::Int),
            ],
        );
        t.push_row(&[
            Value::Float(1000.0),
            Value::str("Entire home/apt"),
            Value::Int(3),
        ])
        .unwrap();
        t.push_row(&[
            Value::Float(500.0),
            Value::str("Private room"),
            Value::Int(1),
        ])
        .unwrap();
        t.push_row(&[Value::Null, Value::str("Entire home/apt"), Value::Int(2)])
            .unwrap();
        t
    }

    #[test]
    fn comparison_and_boolean_logic() {
        let t = apartments();
        let pred = Expr::col("price")
            .ge(Expr::lit(600.0))
            .and(Expr::col("room_type").eq(Expr::lit("Entire home/apt")));
        assert_eq!(pred.eval_mask(&t).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let t = apartments();
        let pred = Expr::col("price").lt(Expr::lit(1e9));
        assert_eq!(pred.eval_mask(&t).unwrap(), vec![true, true, false]);
        let isnull = Expr::IsNull(Box::new(Expr::col("price")));
        assert_eq!(isnull.eval_mask(&t).unwrap(), vec![false, false, true]);
    }

    #[test]
    fn arithmetic_with_division_by_zero() {
        let t = apartments();
        let e = Expr::Arith(
            Box::new(Expr::col("price")),
            ArithOp::Div,
            Box::new(Expr::lit(0.0)),
        );
        assert!(e.eval(&t, 0).unwrap().is_null());
        let e2 = Expr::Arith(
            Box::new(Expr::col("price")),
            ArithOp::Mul,
            Box::new(Expr::lit(2.0)),
        );
        assert_eq!(e2.eval(&t, 1).unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn not_and_or() {
        let t = apartments();
        let pred = Expr::col("rooms")
            .eq(Expr::lit(1i64))
            .or(Expr::col("rooms").eq(Expr::lit(2i64)));
        assert_eq!(pred.eval_mask(&t).unwrap(), vec![false, true, true]);
        assert_eq!(
            pred.clone().not().eval_mask(&t).unwrap(),
            vec![true, false, false]
        );
    }

    #[test]
    fn unknown_column_errors() {
        let t = apartments();
        assert!(Expr::col("nope").eval(&t, 0).is_err());
    }

    #[test]
    fn int_literal_compares_to_float_column() {
        let t = apartments();
        let pred = Expr::col("price").ge(Expr::lit(500i64));
        assert_eq!(pred.eval_mask(&t).unwrap(), vec![true, true, false]);
    }
}
