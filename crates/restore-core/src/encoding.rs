//! Attribute encoders: every model attribute becomes a categorical token
//! domain, mirroring naru [40] (the paper's stated starting point).
//!
//! * strings → dictionary codes;
//! * low-cardinality numerics → one token per distinct value;
//! * high-cardinality numerics → quantile bins (token decodes to the bin's
//!   mean, which preserves conditional averages — what the bias-reduction
//!   metric measures);
//! * tuple factors → a bounded integer range.
//!
//! The completion models reserve one extra **MASK** token per attribute for
//! unknown values (NULLs, unknown tuple factors); the MASK token is the
//! encoder cardinality and is excluded at sampling time.

use std::collections::{BTreeMap, HashMap};

use restore_db::{Column, Value};

/// Numeric columns with at most this many distinct values stay categorical.
/// High enough that year-like attributes (`production_year`,
/// `landlord_since`) keep exact values — group-by queries on them must
/// produce matching keys after completion.
pub const MAX_DISTINCT_CATEGORICAL: usize = 96;

/// An encoder mapping scalar values to dense tokens and back.
#[derive(Clone, Debug)]
pub enum AttrEncoder {
    /// Distinct-value dictionary (strings or small numeric domains).
    Categorical {
        values: Vec<Value>,
        index: HashMap<String, u32>,
    },
    /// Quantile bins over a continuous column. `edges` has `k+1` entries for
    /// `k` bins; `means` holds the mean of the training values per bin.
    Binned { edges: Vec<f64>, means: Vec<f64> },
    /// Clamped integer range (tuple factors).
    IntRange { min: i64, max: i64 },
}

impl AttrEncoder {
    /// Fits an encoder on a column. `max_bins` bounds the quantile bins.
    pub fn fit(column: &Column, max_bins: usize) -> AttrEncoder {
        match column {
            Column::Str { .. } => {
                let mut distinct: BTreeMap<String, Value> = BTreeMap::new();
                for i in 0..column.len() {
                    let v = column.get(i);
                    if !v.is_null() {
                        distinct.entry(v.to_string()).or_insert(v);
                    }
                }
                Self::categorical_from(distinct)
            }
            _ => {
                let mut vals: Vec<f64> = (0..column.len())
                    .filter_map(|i| column.get(i).as_f64())
                    .collect();
                vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut distinct: Vec<f64> = Vec::new();
                for &v in &vals {
                    if distinct.last().is_none_or(|&d| d != v) {
                        distinct.push(v);
                    }
                }
                if distinct.len() <= MAX_DISTINCT_CATEGORICAL {
                    let is_int = matches!(column, Column::Int(_));
                    let mut map: BTreeMap<String, Value> = BTreeMap::new();
                    for &v in &distinct {
                        let val = if is_int {
                            Value::Int(v as i64)
                        } else {
                            Value::Float(v)
                        };
                        map.insert(val.to_string(), val);
                    }
                    // Preserve numeric order rather than lexicographic.
                    let values: Vec<Value> = distinct
                        .iter()
                        .map(|&v| {
                            if is_int {
                                Value::Int(v as i64)
                            } else {
                                Value::Float(v)
                            }
                        })
                        .collect();
                    let index = values
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (v.to_string(), i as u32))
                        .collect();
                    AttrEncoder::Categorical { values, index }
                } else {
                    Self::fit_bins(&vals, max_bins)
                }
            }
        }
    }

    fn categorical_from(distinct: BTreeMap<String, Value>) -> AttrEncoder {
        let values: Vec<Value> = distinct.into_values().collect();
        let index = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), i as u32))
            .collect();
        AttrEncoder::Categorical { values, index }
    }

    /// Quantile-bins a sorted value slice.
    fn fit_bins(sorted: &[f64], max_bins: usize) -> AttrEncoder {
        let k = max_bins.max(2).min(sorted.len().max(2));
        let mut edges = Vec::with_capacity(k + 1);
        for i in 0..=k {
            let pos = (i * (sorted.len() - 1)) / k;
            edges.push(sorted[pos]);
        }
        edges.dedup();
        if edges.len() < 2 {
            edges = vec![sorted[0], sorted[sorted.len() - 1] + 1.0];
        }
        let bins = edges.len() - 1;
        let mut sums = vec![0.0f64; bins];
        let mut counts = vec![0usize; bins];
        for &v in sorted {
            let b = bin_of(&edges, v);
            sums[b] += v;
            counts[b] += 1;
        }
        let means = sums
            .iter()
            .zip(&counts)
            .enumerate()
            .map(|(b, (s, &c))| {
                if c > 0 {
                    s / c as f64
                } else {
                    (edges[b] + edges[b + 1]) / 2.0
                }
            })
            .collect();
        AttrEncoder::Binned { edges, means }
    }

    /// Fits a tuple-factor encoder for counts in `[0, max_observed]`.
    pub fn fit_tuple_factor(counts: impl IntoIterator<Item = i64>, cap: i64) -> AttrEncoder {
        let max = counts.into_iter().max().unwrap_or(0).clamp(0, cap);
        AttrEncoder::IntRange {
            min: 0,
            max: max.max(1),
        }
    }

    /// Number of real (non-MASK) tokens.
    pub fn cardinality(&self) -> usize {
        match self {
            AttrEncoder::Categorical { values, .. } => values.len().max(1),
            AttrEncoder::Binned { means, .. } => means.len(),
            AttrEncoder::IntRange { min, max } => (max - min + 1) as usize,
        }
    }

    /// The MASK token index (one past the real tokens).
    pub fn mask_token(&self) -> u32 {
        self.cardinality() as u32
    }

    /// Cardinality including the MASK token — the width the model uses.
    pub fn model_cardinality(&self) -> usize {
        self.cardinality() + 1
    }

    /// Encodes a value; NULLs and unknown values map to `None` (the model
    /// feeds MASK with zero loss weight for those).
    pub fn encode(&self, v: &Value) -> Option<u32> {
        if v.is_null() {
            return None;
        }
        match self {
            AttrEncoder::Categorical { index, .. } => index.get(&v.to_string()).copied(),
            AttrEncoder::Binned { edges, .. } => {
                let x = v.as_f64()?;
                Some(bin_of(edges, x) as u32)
            }
            AttrEncoder::IntRange { min, max } => {
                let x = v.as_i64()?;
                Some((x.clamp(*min, *max) - min) as u32)
            }
        }
    }

    /// Decodes a token back into a value (bin tokens decode to bin means).
    pub fn decode(&self, token: u32) -> Value {
        match self {
            AttrEncoder::Categorical { values, .. } => {
                values.get(token as usize).cloned().unwrap_or(Value::Null)
            }
            AttrEncoder::Binned { means, .. } => means
                .get(token as usize)
                .map_or(Value::Null, |&m| Value::Float(m)),
            AttrEncoder::IntRange { min, .. } => Value::Int(min + token as i64),
        }
    }

    /// Numeric view of a token (used for euclidean replacement features and
    /// confidence bounds over continuous attributes).
    pub fn token_numeric(&self, token: u32) -> Option<f64> {
        self.decode(token).as_f64()
    }
}

fn bin_of(edges: &[f64], v: f64) -> usize {
    // edges are sorted; bin i covers [edges[i], edges[i+1]) with the last
    // bin closed on the right.
    let bins = edges.len() - 1;
    match edges.binary_search_by(|e| e.partial_cmp(&v).unwrap()) {
        Ok(i) => i.min(bins - 1),
        Err(0) => 0,
        Err(i) => (i - 1).min(bins - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::DataType;

    fn str_column(vals: &[&str]) -> Column {
        let mut c = Column::new(DataType::Str);
        for v in vals {
            c.push(&Value::str(*v)).unwrap();
        }
        c
    }

    fn float_column(vals: &[f64]) -> Column {
        let mut c = Column::new(DataType::Float);
        for &v in vals {
            c.push(&Value::Float(v)).unwrap();
        }
        c
    }

    #[test]
    fn categorical_round_trip() {
        let enc = AttrEncoder::fit(&str_column(&["b", "a", "b", "c"]), 8);
        assert_eq!(enc.cardinality(), 3);
        for v in ["a", "b", "c"] {
            let t = enc.encode(&Value::str(v)).unwrap();
            assert_eq!(enc.decode(t), Value::str(v));
        }
        assert_eq!(enc.encode(&Value::str("zzz")), None);
        assert_eq!(enc.encode(&Value::Null), None);
    }

    #[test]
    fn small_int_domain_stays_categorical_in_order() {
        let mut c = Column::new(DataType::Int);
        for v in [2014i64, 2008, 2011, 2008, 2014] {
            c.push(&Value::Int(v)).unwrap();
        }
        let enc = AttrEncoder::fit(&c, 8);
        assert_eq!(enc.cardinality(), 3);
        // Numeric order preserved: token 0 = 2008 < token 1 = 2011 < ...
        assert_eq!(enc.decode(0), Value::Int(2008));
        assert_eq!(enc.decode(2), Value::Int(2014));
    }

    #[test]
    fn continuous_column_is_binned() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let enc = AttrEncoder::fit(&float_column(&vals), 10);
        assert!(matches!(enc, AttrEncoder::Binned { .. }));
        assert!(enc.cardinality() <= 10);
        // Encoding is monotone.
        let t_low = enc.encode(&Value::Float(5.0)).unwrap();
        let t_high = enc.encode(&Value::Float(995.0)).unwrap();
        assert!(t_low < t_high);
        // Decoding returns the bin mean, which lies inside the bin.
        let m = enc.decode(t_low).as_f64().unwrap();
        assert!((0.0..=150.0).contains(&m));
    }

    #[test]
    fn bin_means_preserve_global_mean() {
        let vals: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * 10.0).collect();
        let enc = AttrEncoder::fit(&float_column(&vals), 16);
        let true_mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let decoded_mean = vals
            .iter()
            .map(|&v| {
                enc.decode(enc.encode(&Value::Float(v)).unwrap())
                    .as_f64()
                    .unwrap()
            })
            .sum::<f64>()
            / vals.len() as f64;
        assert!(
            (true_mean - decoded_mean).abs() < 0.02 * true_mean.abs(),
            "encode/decode shifted the mean: {true_mean} -> {decoded_mean}"
        );
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let enc = AttrEncoder::fit(&float_column(&vals), 8);
        assert_eq!(enc.encode(&Value::Float(-50.0)), Some(0));
        let t = enc.encode(&Value::Float(1e9)).unwrap();
        assert_eq!(t as usize, enc.cardinality() - 1);
    }

    #[test]
    fn tuple_factor_encoder_clamps() {
        let enc = AttrEncoder::fit_tuple_factor([0i64, 3, 7], 64);
        assert_eq!(enc.cardinality(), 8);
        assert_eq!(enc.encode(&Value::Int(3)), Some(3));
        assert_eq!(enc.encode(&Value::Int(100)), Some(7));
        assert_eq!(enc.decode(5), Value::Int(5));
        assert_eq!(enc.mask_token(), 8);
    }

    #[test]
    fn constant_column_has_cardinality_one() {
        let enc = AttrEncoder::fit(&str_column(&["x", "x", "x"]), 8);
        assert_eq!(enc.cardinality(), 1);
        assert_eq!(enc.model_cardinality(), 2);
    }

    #[test]
    fn degenerate_numeric_column() {
        let enc = AttrEncoder::fit(&float_column(&[5.0; 200]), 8);
        // One distinct value -> categorical with a single token.
        assert_eq!(enc.cardinality(), 1);
        assert_eq!(enc.decode(0), Value::Float(5.0));
    }
}
