//! Model merging (§3.4): instead of one model per (evidence, target) pair,
//! merge completion tasks whose table sets nest and whose evidence→target
//! arcs admit a consistent (acyclic) variable ordering. The topological
//! order of the merged arc graph becomes the MADE attribute order, so one
//! model provides e.g. both `p(T1 | T2, T3)` and `p(T2 | T3)`.

use std::collections::{BTreeMap, BTreeSet};

/// One completion need: synthesize `target` using `evidence` tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletionTask {
    pub evidence: Vec<String>,
    pub target: String,
}

impl CompletionTask {
    pub fn new<I, S>(evidence: I, target: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            evidence: evidence.into_iter().map(Into::into).collect(),
            target: target.into(),
        }
    }

    fn tables(&self) -> BTreeSet<String> {
        let mut s: BTreeSet<String> = self.evidence.iter().cloned().collect();
        s.insert(self.target.clone());
        s
    }
}

/// A merged model: the tasks it serves plus the consistent table ordering.
#[derive(Clone, Debug)]
pub struct MergedModelSpec {
    pub tasks: Vec<CompletionTask>,
    /// Topological table order (evidence before targets) — the MADE
    /// variable ordering.
    pub table_order: Vec<String>,
}

impl MergedModelSpec {
    fn tables(&self) -> BTreeSet<String> {
        self.tasks.iter().flat_map(|t| t.tables()).collect()
    }
}

/// Tries to topologically order `tables` under the arcs `evidence → target`
/// of all tasks. Returns `None` when the arc graph is cyclic (no consistent
/// MADE ordering exists).
fn consistent_order(tasks: &[CompletionTask]) -> Option<Vec<String>> {
    let tables: BTreeSet<String> = tasks.iter().flat_map(|t| t.tables()).collect();
    // adjacency + in-degrees
    let mut out_edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut in_deg: BTreeMap<&str, usize> = tables.iter().map(|t| (t.as_str(), 0)).collect();
    for task in tasks {
        for e in &task.evidence {
            if out_edges
                .entry(e.as_str())
                .or_default()
                .insert(task.target.as_str())
            {
                *in_deg.get_mut(task.target.as_str()).unwrap() += 1;
            }
        }
    }
    // Kahn's algorithm with deterministic (sorted) tie-breaking.
    let mut ready: Vec<&str> = in_deg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&t, _)| t)
        .collect();
    let mut order = Vec::with_capacity(tables.len());
    while let Some(t) = ready.pop() {
        order.push(t.to_string());
        if let Some(succs) = out_edges.get(t) {
            for &s in succs {
                let d = in_deg.get_mut(s).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
        ready.sort();
        ready.reverse(); // pop smallest first
    }
    (order.len() == tables.len()).then_some(order)
}

/// Greedily merges completion tasks (§3.4): a task joins an existing model
/// when its table set nests with the model's and the combined arc graph
/// stays acyclic. Models are merged until no more non-conflicting merges
/// are available.
pub fn merge_tasks(tasks: &[CompletionTask]) -> Vec<MergedModelSpec> {
    // Largest table sets first so smaller tasks fold into them.
    let mut sorted: Vec<CompletionTask> = tasks.to_vec();
    sorted.sort_by(|a, b| {
        b.tables()
            .len()
            .cmp(&a.tables().len())
            .then_with(|| a.target.cmp(&b.target))
    });

    let mut models: Vec<MergedModelSpec> = Vec::new();
    'next_task: for task in sorted {
        for model in &mut models {
            let mt = model.tables();
            let tt = task.tables();
            let nests = tt.is_subset(&mt) || mt.is_subset(&tt);
            if !nests {
                continue;
            }
            let mut combined = model.tasks.clone();
            combined.push(task.clone());
            if let Some(order) = consistent_order(&combined) {
                model.tasks = combined;
                model.table_order = order;
                continue 'next_task;
            }
        }
        let order =
            consistent_order(std::slice::from_ref(&task)).expect("single task is always acyclic");
        models.push(MergedModelSpec {
            tasks: vec![task],
            table_order: order,
        });
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(evidence: &[&str], target: &str) -> CompletionTask {
        CompletionTask::new(evidence.iter().copied(), target)
    }

    #[test]
    fn paper_example_merges() {
        // §3.4: completing T2 from T3 and T1 from T2⋈T3 share one model.
        let models = merge_tasks(&[t(&["t3"], "t2"), t(&["t2", "t3"], "t1")]);
        assert_eq!(models.len(), 1);
        let order = &models[0].table_order;
        // T3 before T2 before T1.
        let pos = |x: &str| order.iter().position(|o| o == x).unwrap();
        assert!(pos("t3") < pos("t2"));
        assert!(pos("t2") < pos("t1"));
    }

    #[test]
    fn paper_counterexample_does_not_merge() {
        // §3.4: p(T2|T1) conflicts with p(T1|T2,T3) — no consistent order.
        let models = merge_tasks(&[t(&["t2", "t3"], "t1"), t(&["t1"], "t2")]);
        assert_eq!(models.len(), 2, "cyclic orderings must stay separate");
    }

    #[test]
    fn disjoint_table_sets_stay_separate() {
        let models = merge_tasks(&[t(&["a"], "b"), t(&["x"], "y")]);
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn subset_requirement_is_enforced() {
        // {a,b} and {b,c} overlap but neither nests — no merge even though
        // the union would be acyclic.
        let models = merge_tasks(&[t(&["a"], "b"), t(&["b"], "c")]);
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn chain_of_three_merges_into_one() {
        let models = merge_tasks(&[
            t(&["a", "b", "c"], "d"),
            t(&["a", "b"], "c"),
            t(&["a"], "b"),
        ]);
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].tasks.len(), 3);
        assert_eq!(models[0].table_order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn merge_reduces_model_count() {
        // Five tasks over nested sets collapse to fewer models.
        let tasks = vec![
            t(&["a"], "b"),
            t(&["a", "b"], "c"),
            t(&["a"], "c"),
            t(&["x"], "y"),
            t(&["y"], "x"),
        ];
        let models = merge_tasks(&tasks);
        assert!(
            models.len() <= 3,
            "expected ≤3 models, got {}",
            models.len()
        );
        let total: usize = models.iter().map(|m| m.tasks.len()).sum();
        assert_eq!(total, 5, "every task must be served");
    }
}
