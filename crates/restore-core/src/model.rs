//! Completion models (§3): AR models learn the joint distribution over all
//! attributes of the completion-path join `T1 ⋈ … ⋈ Tm` (including tuple
//! factors for fan-out steps); SSAR models additionally condition on a
//! DeepSets encoding of fan-out / self-evidence tuple sets.
//!
//! Attribute order is the topological order along the path — evidence
//! attributes first, each fan-out tuple factor before its child table's
//! attributes — so conditional sampling `p(t_m | t_e)` is a suffix sample.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore_db::{hash_join, partner_counts, Database, Table, Value};
use restore_nn::{
    block_cross_entropy_sums, Adam, AttrSpec, DeepSets, DeepSetsConfig, Forward, InferenceSession,
    Made, MadeConfig, Matrix, ParamStore, SetBatch, SetTableSpec, TableSet, TrainEngine,
};
use restore_util::default_workers;

use crate::annotation::{modeled_columns, tf_column_name, SchemaAnnotation};
use crate::encoding::AttrEncoder;
use crate::error::{CoreError, CoreResult};
use crate::paths::CompletionPath;

/// Hyper-parameters for training completion models.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub hidden: Vec<usize>,
    pub embed_dim: usize,
    pub max_bins: usize,
    pub val_fraction: f64,
    pub clip_norm: f32,
    /// Training joins larger than this are subsampled (stride sampling).
    pub max_train_rows: usize,
    /// Tuple factors are clamped to this maximum token.
    pub tf_cap: i64,
    /// Width of the SSAR conditioning context (0 disables DeepSets → AR).
    pub ctx_dim: usize,
    /// Per-row cap on fan-out evidence set sizes.
    pub max_set_size: usize,
    /// Minimum number of gradient steps: small training sets get extra
    /// epochs so the conditional is actually fit.
    pub min_steps: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Worker threads for the data-parallel gradient engine (`0` = one per
    /// available hardware thread). Training results are **bit-identical**
    /// under any worker count: microbatch gradients are computed
    /// independently and reduced in a fixed order.
    pub workers: usize,
    /// Rows per microbatch — the unit of training parallelism. A pure
    /// function of the batch (never of `workers`), so it fixes both the
    /// work split and the gradient reduction tree.
    pub microbatch: usize,
    /// Run autoregressive synthesis through the band-incremental sweep
    /// (per sampled attribute, recompute only the hidden-degree band the
    /// MADE masks say changed) instead of one full trunk forward per
    /// attribute. Completions are **bit-identical** either way; `false`
    /// keeps the full-recompute reference path.
    pub incremental_sweep: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 256,
            lr: 5e-3,
            hidden: vec![64, 64],
            embed_dim: 8,
            max_bins: 24,
            val_fraction: 0.1,
            clip_norm: 5.0,
            max_train_rows: 20_000,
            tf_cap: 64,
            ctx_dim: 0,
            max_set_size: 12,
            min_steps: 400,
            patience: 10,
            workers: 0,
            microbatch: 32,
            incremental_sweep: true,
        }
    }
}

impl TrainConfig {
    /// SSAR variant of this configuration.
    pub fn ssar(mut self) -> Self {
        self.ctx_dim = 16;
        self
    }

    pub fn is_ssar(&self) -> bool {
        self.ctx_dim > 0
    }
}

/// What a model attribute represents.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrKind {
    /// A modeled column of a path table.
    Column { table: String, column: String },
    /// The tuple factor of fan-out step `step` (children of `tables[step]`
    /// in `tables[step+1]`).
    TupleFactor { step: usize },
}

/// One attribute of the completion model.
#[derive(Clone, Debug)]
pub struct ModelAttr {
    pub kind: AttrKind,
    pub encoder: AttrEncoder,
}

impl ModelAttr {
    pub fn name(&self) -> String {
        match &self.kind {
            AttrKind::Column { table, column } => format!("{table}.{column}"),
            AttrKind::TupleFactor { step } => format!("__tf_step{step}"),
        }
    }
}

/// One fan-out evidence table of an SSAR model.
struct CtxTable {
    /// Set-tuple table name.
    table: String,
    /// Path table the set hangs off.
    anchor: String,
    /// Key column on the anchor (parent side of the fan-out edge).
    anchor_key: String,
    /// Encoded columns of the set table.
    columns: Vec<String>,
    encoders: Vec<AttrEncoder>,
    /// Pre-encoded tokens of the (incomplete) set table: `tokens[a][row]`.
    tokens: Vec<Vec<u32>>,
    /// `id` value per set row (None when the table has no `id` column);
    /// used to exclude the predicted row itself from self-evidence.
    row_ids: Option<Vec<Value>>,
    /// anchor key value → set row indices.
    index: HashMap<Value, Vec<usize>>,
    /// True when `table == path.target()` (self-evidence, §3.3).
    self_evidence: bool,
}

/// Everything about a model except trained weights: the output of
/// [`CompletionModel::build_structure`], shared by training and snapshot
/// rehydration.
struct ModelStructure {
    attrs: Vec<ModelAttr>,
    table_ranges: Vec<Range<usize>>,
    tf_attrs: Vec<Option<usize>>,
    made: Made,
    store: ParamStore,
    ctx: Vec<CtxTable>,
    deepsets: Option<DeepSets>,
}

/// The training-time statistics a snapshot persists alongside weights —
/// `val_per_attr` in particular feeds the §5 selection criterion, so a
/// loaded model must report exactly what the trained one did.
pub(crate) struct RehydratedStats {
    pub train_losses: Vec<f32>,
    pub val_per_attr: Vec<f32>,
    pub val_loss: f32,
    pub train_seconds: f64,
}

/// A trained completion model for one path.
pub struct CompletionModel {
    path: CompletionPath,
    attrs: Vec<ModelAttr>,
    /// Attr index range of each path table's columns.
    table_ranges: Vec<Range<usize>>,
    /// Attr index of the tuple factor for each step (fan-out steps only).
    tf_attrs: Vec<Option<usize>>,
    made: Made,
    store: ParamStore,
    ctx: Vec<CtxTable>,
    deepsets: Option<DeepSets>,
    cfg: TrainConfig,
    /// Per-epoch mean training loss.
    pub train_losses: Vec<f32>,
    /// Held-out per-attribute NLL (the §5 model-selection "test loss").
    pub val_per_attr: Vec<f32>,
    /// Held-out total NLL.
    pub val_loss: f32,
    /// Wall-clock training time in seconds (Fig. 11).
    pub train_seconds: f64,
}

impl CompletionModel {
    pub fn path(&self) -> &CompletionPath {
        &self.path
    }

    pub fn attrs(&self) -> &[ModelAttr] {
        &self.attrs
    }

    pub fn is_ssar(&self) -> bool {
        self.deepsets.is_some()
    }

    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// The trained parameter store — exposed so the training-determinism
    /// contract (bit-identical parameters under any worker count) can be
    /// asserted from outside the crate.
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Toggles the band-incremental synthesis sweep at runtime — the
    /// escape hatch back to the full-recompute reference path (completions
    /// are bit-identical either way; see
    /// [`TrainConfig::incremental_sweep`]).
    pub fn set_incremental_sweep(&mut self, on: bool) {
        self.made.set_incremental_sweep(on);
    }

    /// Whether the lane-padded banded trunk caches were frozen for
    /// cross-session sharing — true for snapshot-rehydrated models, which
    /// build them once at load instead of once per inference session.
    pub fn has_frozen_banded(&self) -> bool {
        self.made.has_frozen_banded()
    }

    /// Attr range holding the columns of path table `idx`.
    pub fn table_attr_range(&self, idx: usize) -> Range<usize> {
        self.table_ranges[idx].clone()
    }

    /// Attr index of the tuple factor of step `step`, if it is fan-out.
    pub fn tf_attr(&self, step: usize) -> Option<usize> {
        self.tf_attrs[step]
    }

    /// Mean held-out NLL over the target table's attributes — the §5 basic
    /// selection criterion.
    pub fn target_val_loss(&self) -> f32 {
        let range = self.table_attr_range(self.path.len() - 1);
        if range.is_empty() {
            return 0.0;
        }
        let vals = &self.val_per_attr[range.clone()];
        vals.iter().sum::<f32>() / vals.len() as f32
    }

    /// Trains a completion model for `path` on the available data of the
    /// (incomplete) database.
    pub fn train(
        db: &Database,
        annotation: &SchemaAnnotation,
        path: CompletionPath,
        cfg: &TrainConfig,
        seed: u64,
    ) -> CoreResult<Self> {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);

        // Structure first: it consumes RNG only for weight init, so hoisting
        // it before the join build leaves the training stream bit-identical.
        let structure = Self::build_structure(db, annotation, &path, cfg, &mut rng)?;

        // ---- training join ------------------------------------------------
        let join = build_path_join(db, &path)?;
        if join.n_rows() < 8 {
            return Err(CoreError::InsufficientData(format!(
                "path {} yields only {} joined rows",
                path.describe(),
                join.n_rows()
            )));
        }
        let (tokens, weights) =
            encode_training_tokens(db, &path, &structure.attrs, &structure.tf_attrs, &join)?;

        let mut model = Self::from_structure(path, structure, cfg);
        model.fit(&join, tokens, weights, &mut rng)?;
        model.train_seconds = started.elapsed().as_secs_f64();
        Ok(model)
    }

    /// Reconstructs a trained model from persisted weights: rebuilds the
    /// deterministic structure (encoders, context tables, network masks)
    /// from the same incomplete database it was trained on, then streams
    /// the stored little-endian weight bytes straight over the freshly
    /// initialized parameters — one copy, no intermediate matrices. The
    /// seed fed to weight init is irrelevant — every value it produces is
    /// replaced — so the result serves byte-identically to the original.
    /// The lane-padded band matrices the synthesis sweep reads are built
    /// once here and shared across all inference sessions, instead of
    /// being re-derived (a second copy) per session.
    pub(crate) fn rehydrate(
        db: &Database,
        annotation: &SchemaAnnotation,
        path: CompletionPath,
        cfg: &TrainConfig,
        weights: &[u8],
        stats: RehydratedStats,
    ) -> CoreResult<Self> {
        let mut rng = StdRng::seed_from_u64(0);
        let structure = Self::build_structure(db, annotation, &path, cfg, &mut rng)?;
        if stats.val_per_attr.len() != structure.attrs.len() {
            return Err(CoreError::Invalid(format!(
                "snapshot for path {} has {} per-attr losses, model has {} attrs",
                path.describe(),
                stats.val_per_attr.len(),
                structure.attrs.len()
            )));
        }
        let mut model = Self::from_structure(path, structure, cfg);
        model.store.import_raw_le(weights).map_err(|e| {
            CoreError::Invalid(format!(
                "snapshot weights for {}: {e}",
                model.path.describe()
            ))
        })?;
        model.train_losses = stats.train_losses;
        model.val_per_attr = stats.val_per_attr;
        model.val_loss = stats.val_loss;
        model.train_seconds = stats.train_seconds;
        model.made.freeze_banded(&model.store);
        Ok(model)
    }

    /// The training configuration this model was built with — persisted so
    /// a loaded snapshot can rebuild the identical structure.
    pub fn train_config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Wraps a built structure into an (untrained) model shell.
    fn from_structure(path: CompletionPath, s: ModelStructure, cfg: &TrainConfig) -> Self {
        Self {
            path,
            attrs: s.attrs,
            table_ranges: s.table_ranges,
            tf_attrs: s.tf_attrs,
            made: s.made,
            store: s.store,
            ctx: s.ctx,
            deepsets: s.deepsets,
            cfg: cfg.clone(),
            train_losses: Vec::new(),
            val_per_attr: Vec::new(),
            val_loss: 0.0,
            train_seconds: 0.0,
        }
    }

    /// Builds everything about a model except its trained weights: the
    /// attribute layout with fitted encoders, the SSAR context tables, and
    /// the network with freshly initialized parameters. Everything here is
    /// a deterministic function of `(db, annotation, path, cfg)` — the only
    /// RNG consumption is weight initialization — which is what makes
    /// snapshot rehydration byte-exact: the loader replays this and then
    /// overwrites the weights.
    fn build_structure(
        db: &Database,
        annotation: &SchemaAnnotation,
        path: &CompletionPath,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> CoreResult<ModelStructure> {
        // ---- attribute layout & encoders --------------------------------
        let mut attrs: Vec<ModelAttr> = Vec::new();
        let mut table_ranges = Vec::with_capacity(path.len());
        let mut tf_attrs = vec![None; path.steps().len()];
        for (i, tname) in path.tables().iter().enumerate() {
            let table = db.table(tname)?;
            let start = attrs.len();
            for col in modeled_columns(table) {
                let encoder = AttrEncoder::fit(table.column_by_name(&col)?, cfg.max_bins);
                attrs.push(ModelAttr {
                    kind: AttrKind::Column {
                        table: tname.clone(),
                        column: col,
                    },
                    encoder,
                });
            }
            table_ranges.push(start..attrs.len());
            if i < path.steps().len() {
                let step = &path.steps()[i];
                if step.fan_out {
                    // Tuple factor of this step, fit on known factors.
                    let parent = db.table(&step.fk.parent)?;
                    let known = Self::known_tf_values(db, parent, step)?;
                    let encoder = AttrEncoder::fit_tuple_factor(known, cfg.tf_cap);
                    tf_attrs[i] = Some(attrs.len());
                    attrs.push(ModelAttr {
                        kind: AttrKind::TupleFactor { step: i },
                        encoder,
                    });
                }
            }
        }
        if attrs.is_empty() {
            return Err(CoreError::Invalid(format!(
                "path {} has no modeled attributes",
                path.describe()
            )));
        }

        // ---- SSAR context (decided before the network: a path without
        // fan-out evidence degrades to a plain AR model) -------------------
        let ctx = if cfg.is_ssar() {
            build_ctx_tables(db, annotation, path, cfg)?
        } else {
            Vec::new()
        };
        let effective_ctx_dim = if ctx.is_empty() { 0 } else { cfg.ctx_dim };

        // ---- network -------------------------------------------------------
        let mut store = ParamStore::new();
        let specs: Vec<AttrSpec> = attrs
            .iter()
            .map(|a| AttrSpec::new(a.encoder.model_cardinality(), cfg.embed_dim))
            .collect();
        let made_cfg = MadeConfig::new(specs)
            .with_ctx(effective_ctx_dim)
            .with_hidden(cfg.hidden.clone())
            .with_incremental_sweep(cfg.incremental_sweep);
        let made = Made::new(made_cfg, &mut store, rng);

        let deepsets = if ctx.is_empty() {
            None
        } else {
            let ds_cfg = DeepSetsConfig {
                tables: ctx
                    .iter()
                    .map(|c| {
                        SetTableSpec::new(
                            c.encoders.iter().map(|e| e.model_cardinality()).collect(),
                            cfg.embed_dim,
                            16,
                        )
                    })
                    .collect(),
                ctx_dim: cfg.ctx_dim,
                post_hidden: 32,
            };
            Some(DeepSets::new(&ds_cfg, &mut store, rng))
        };

        Ok(ModelStructure {
            attrs,
            table_ranges,
            tf_attrs,
            made,
            store,
            ctx,
            deepsets,
        })
    }

    /// Known tuple factors of a fan-out step: the non-null `__tf_<child>`
    /// metadata if present, otherwise the observed partner counts (child
    /// table complete ⇒ observed = true).
    fn known_tf_values(
        db: &Database,
        parent: &Table,
        step: &restore_db::PathStep,
    ) -> CoreResult<Vec<i64>> {
        let tf_col = tf_column_name(&step.fk.child);
        if let Ok(idx) = parent.resolve(&tf_col) {
            Ok((0..parent.n_rows())
                .filter_map(|r| parent.value(r, idx).as_i64())
                .collect())
        } else {
            let child = db.table(&step.fk.child)?;
            Ok(
                partner_counts(parent, &step.fk.parent_col, child, &step.fk.child_col)?
                    .into_iter()
                    .map(|c| c as i64)
                    .collect(),
            )
        }
    }

    fn fit(
        &mut self,
        join: &Table,
        tokens: Vec<Vec<u32>>,
        weights: Vec<Vec<f32>>,
        rng: &mut StdRng,
    ) -> CoreResult<()> {
        let n = tokens[0].len();
        // Subsample + shuffle once; split off validation tail.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        order.truncate(self.cfg.max_train_rows.max(16));
        let n_val =
            ((order.len() as f64 * self.cfg.val_fraction) as usize).clamp(1, order.len() / 2 + 1);
        let val_rows: Vec<usize> = order.split_off(order.len() - n_val);
        let train_rows = order;

        let mut adam = Adam::new(&self.store, self.cfg.lr);
        // The engine's tapes and gradient-buffer pool live for the whole
        // training run: after the first epoch every step reuses its arenas.
        let workers = if self.cfg.workers == 0 {
            default_workers()
        } else {
            self.cfg.workers
        };
        let mut engine = TrainEngine::new(workers);
        let bs = self.cfg.batch_size.max(8);
        let batches_per_epoch = train_rows.len().div_ceil(bs).max(1);
        let epochs = self
            .cfg
            .epochs
            .max(self.cfg.min_steps.div_ceil(batches_per_epoch));

        // Early stopping on the held-out split: small training joins (a few
        // hundred rows) overfit quickly, which would both hurt the
        // completion and corrupt the §5 test-loss selection signal. Best
        // parameters are double-buffered: one buffer allocated on the first
        // improvement, value-copied in place on every later one.
        let mut best_val = f32::INFINITY;
        let mut best_store: Option<ParamStore> = None;
        let mut stale = 0usize;
        for _epoch in 0..epochs {
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in train_rows.chunks(bs) {
                let loss =
                    self.train_step(&mut engine, join, &tokens, &weights, chunk, &mut adam)?;
                epoch_loss += loss as f64;
                batches += 1;
            }
            self.train_losses
                .push((epoch_loss / batches.max(1) as f64) as f32);
            let val = self.validate(join, &tokens, &weights, &val_rows)?.loss;
            if val < best_val - 1e-4 {
                best_val = val;
                match &mut best_store {
                    Some(buf) => buf.copy_values_from(&self.store),
                    None => best_store = Some(self.store.clone()),
                }
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.cfg.patience {
                    break;
                }
            }
        }
        if let Some(best) = &best_store {
            self.store.copy_values_from(best);
        }

        let loss = self.validate(join, &tokens, &weights, &val_rows)?;
        self.val_per_attr = loss.per_attr;
        self.val_loss = loss.loss;
        Ok(())
    }

    /// Held-out NLL with the current parameters.
    fn validate(
        &self,
        join: &Table,
        tokens: &[Vec<u32>],
        weights: &[Vec<f32>],
        val_rows: &[usize],
    ) -> CoreResult<restore_nn::BlockLoss> {
        let (btoks, bweights) = gather_batch(tokens, weights, val_rows);
        let ctx_matrix = self.context_matrix(join, val_rows, true)?;
        let arc_toks: Vec<Arc<Vec<u32>>> = btoks.into_iter().map(Arc::new).collect();
        Ok(self
            .made
            .evaluate(&self.store, &arc_toks, ctx_matrix.as_ref(), Some(&bweights)))
    }

    /// One data-parallel gradient step: the batch is split into
    /// microbatches of `cfg.microbatch` rows, each microbatch's forward +
    /// backward runs on a worker with its own arena tape and gradient
    /// buffer, and the buffers reduce into the store in ascending
    /// microbatch order. Per-microbatch `dlogits` are normalized by the
    /// *whole batch's* target weight, so the reduced gradient equals the
    /// full-batch gradient regardless of the split — and is bit-identical
    /// under any worker count.
    fn train_step(
        &mut self,
        engine: &mut TrainEngine,
        join: &Table,
        tokens: &[Vec<u32>],
        weights: &[Vec<f32>],
        rows: &[usize],
        adam: &mut Adam,
    ) -> CoreResult<f32> {
        let mut w_total = 0.0f64;
        for col in weights {
            for &r in rows {
                w_total += col[r] as f64;
            }
        }
        if w_total == 0.0 {
            return Ok(0.0);
        }
        let norm = 1.0 / w_total as f32;

        // Disjoint field borrows: the closure reads the model parts while
        // the engine mutates the store.
        let made = &self.made;
        let deepsets = self.deepsets.as_ref();
        let ctx_tables = &self.ctx;
        let max_set_size = self.cfg.max_set_size;

        let loss_sum = engine.step(
            &mut self.store,
            rows,
            self.cfg.microbatch,
            |tape, store, chunk, grads| -> CoreResult<f64> {
                let (btoks, bweights) = gather_batch(tokens, weights, chunk);
                let arc_toks: Vec<Arc<Vec<u32>>> = btoks.iter().cloned().map(Arc::new).collect();
                let set_batch = match deepsets {
                    Some(_) => Some(assemble_set_batch(
                        ctx_tables,
                        max_set_size,
                        join,
                        chunk,
                        true,
                    )?),
                    None => None,
                };
                let mut f = tape.ctx(store);
                let ctx_var = deepsets
                    .zip(set_batch.as_ref())
                    .map(|(ds, batch)| ds.forward(&mut f, store, batch, chunk.len()));
                let logits = made.forward(&mut f, store, &arc_toks, ctx_var);
                let sums = block_cross_entropy_sums(
                    f.value(logits),
                    made.layout(),
                    &btoks,
                    Some(&bweights),
                );
                let mut dlogits = sums.dlogits;
                dlogits.scale_assign(norm);
                tape.backward_with(logits, dlogits, store, grads);
                Ok(sums.loss_sum)
            },
        )?;
        self.store.clip_grad_norm(self.cfg.clip_norm);
        adam.step(&mut self.store);
        Ok((loss_sum / w_total) as f32)
    }

    /// DeepSets context matrix for specific join rows (inference path —
    /// gradient-free batched encoding, no tape).
    fn context_matrix(
        &self,
        join: &Table,
        rows: &[usize],
        exclude_self: bool,
    ) -> CoreResult<Option<Matrix>> {
        let mut session = InferenceSession::new();
        self.context_matrix_in(&mut session, join, rows, exclude_self)
    }

    /// [`CompletionModel::context_matrix`] over a caller-owned session.
    fn context_matrix_in(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        rows: &[usize],
        exclude_self: bool,
    ) -> CoreResult<Option<Matrix>> {
        let Some(ds) = &self.deepsets else {
            return Ok(None);
        };
        let batch = self.build_set_batch(join, rows, exclude_self)?;
        Ok(Some(
            ds.encode_in(session, &self.store, &batch, rows.len())
                .clone(),
        ))
    }

    /// Assembles the fan-out evidence sets for a batch of join rows.
    fn build_set_batch(
        &self,
        join: &Table,
        rows: &[usize],
        exclude_self: bool,
    ) -> CoreResult<SetBatch> {
        assemble_set_batch(&self.ctx, self.cfg.max_set_size, join, rows, exclude_self)
    }

    /// Encodes the columns of a (partial) completed join into model tokens.
    /// Attributes whose table is not yet part of the join (or whose value is
    /// NULL) get the MASK token. Tuple-factor attrs are filled from
    /// `tf_values[step]` where available.
    pub fn encode_tokens(&self, join: &Table, tf_values: &[Vec<Option<i64>>]) -> Vec<Vec<u32>> {
        (0..self.attrs.len())
            .map(|a| self.encode_attr_column(join, tf_values, a))
            .collect()
    }

    /// Encodes one attribute's token column for every row of `join` — the
    /// unit of the completion engine's incremental encoding cache, which
    /// re-encodes only the attributes a synthesis step actually changed.
    pub fn encode_attr_column(
        &self,
        join: &Table,
        tf_values: &[Vec<Option<i64>>],
        attr_idx: usize,
    ) -> Vec<u32> {
        let n = join.n_rows();
        let attr = &self.attrs[attr_idx];
        let mut col = Vec::with_capacity(n);
        match &attr.kind {
            AttrKind::Column { table, column } => {
                match join.resolve(&format!("{table}.{column}")) {
                    Ok(idx) => {
                        for r in 0..n {
                            let v = join.value(r, idx);
                            col.push(attr.encoder.encode(&v).unwrap_or(attr.encoder.mask_token()));
                        }
                    }
                    Err(_) => col.resize(n, attr.encoder.mask_token()),
                }
            }
            AttrKind::TupleFactor { step } => match tf_values.get(*step) {
                Some(vals) if vals.len() == n => {
                    for v in vals {
                        col.push(match v {
                            Some(x) => attr
                                .encoder
                                .encode(&Value::Int(*x))
                                .unwrap_or(attr.encoder.mask_token()),
                            None => attr.encoder.mask_token(),
                        });
                    }
                }
                _ => col.resize(n, attr.encoder.mask_token()),
            },
        }
        col
    }

    /// Predicts the tuple factor of `step` for the given join rows,
    /// conditioning on everything before it. The *expected value* of the
    /// conditional distribution with stochastic rounding is used rather
    /// than a plain sample: the completion clamps factors to at least the
    /// observed partner count (`max(tf, existing)`), which would turn
    /// sampling variance into a systematic cardinality overshoot; the
    /// expectation keeps completed cardinalities unbiased.
    pub fn sample_tf(
        &self,
        join: &Table,
        tf_values: &[Vec<Option<i64>>],
        step: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<i64>> {
        let encoded = self.encode_tokens(join, tf_values);
        self.sample_tf_encoded(join, &encoded, step, rows, rng)
    }

    /// [`CompletionModel::sample_tf`] over pre-encoded tokens — the batched
    /// completion path encodes the working join once per step and fans
    /// chunks of rows out over workers, each calling this.
    pub fn sample_tf_encoded(
        &self,
        join: &Table,
        encoded: &[Vec<u32>],
        step: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<i64>> {
        let mut session = InferenceSession::new();
        self.sample_tf_encoded_in(&mut session, join, encoded, step, rows, rng)
    }

    /// [`CompletionModel::sample_tf_encoded`] over a caller-owned session —
    /// each completion worker keeps one session warm across batches and
    /// path steps (parameters are frozen at completion time, so the
    /// session's masked-weight cache stays valid for the whole walk).
    pub fn sample_tf_encoded_in(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        step: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<i64>> {
        let expectations = self.tf_expectations_encoded_in(session, join, encoded, step, rows)?;
        Ok(Self::round_tf_expectations(&expectations, rng))
    }

    /// The RNG-free evaluation half of
    /// [`CompletionModel::sample_tf_encoded_in`]: the per-row *expected*
    /// tuple factor under the conditional distribution. Each row's value
    /// depends only on that row's tokens, so the completion engine fuses
    /// rows into a few large chunks (one sweep setup pass per chunk
    /// instead of one per sampling batch) without changing any value.
    pub fn tf_expectations_encoded_in(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        step: usize,
        rows: &[usize],
    ) -> CoreResult<Vec<f64>> {
        let attr_idx = self.tf_attrs[step]
            .ok_or_else(|| CoreError::Invalid(format!("step {step} has no tuple factor")))?;
        // The per-row distributions are consumed in place, so the scratch
        // rides on the worker's warm session — across batches and steps
        // these calls reuse the same allocations.
        let mut dists = session.take_dists();
        let filled =
            self.conditional_dists_encoded_into(session, join, encoded, attr_idx, rows, &mut dists);
        let result = filled.map(|()| {
            let enc = &self.attrs[attr_idx].encoder;
            dists
                .iter()
                .map(|d| {
                    d.iter()
                        .enumerate()
                        .map(|(i, &p)| p as f64 * enc.decode(i as u32).as_i64().unwrap_or(0) as f64)
                        .sum()
                })
                .collect()
        });
        session.store_dists(dists);
        result
    }

    /// The stochastic-rounding half of
    /// [`CompletionModel::sample_tf_encoded_in`]: exactly one draw per row
    /// (unconditionally, so the stream position depends only on the row
    /// count), keeping completed cardinalities unbiased without sampling
    /// variance turning the `max(tf, existing)` clamp into overshoot.
    pub fn round_tf_expectations(expectations: &[f64], rng: &mut StdRng) -> Vec<i64> {
        expectations
            .iter()
            .map(|&expected| {
                let floor = expected.floor();
                let frac = expected - floor;
                floor as i64 + (rng.random::<f64>() < frac) as i64
            })
            .collect()
    }

    /// Samples all column attributes of path table `table_idx` for the given
    /// join rows; returns decoded values per modeled column.
    pub fn sample_table_columns(
        &self,
        join: &Table,
        tf_values: &[Vec<Option<i64>>],
        table_idx: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<Vec<Value>>> {
        let encoded = self.encode_tokens(join, tf_values);
        self.sample_table_columns_encoded(join, &encoded, table_idx, rows, rng)
    }

    /// [`CompletionModel::sample_table_columns`] over pre-encoded tokens —
    /// one no-grad forward pass per attribute fills the whole row batch.
    pub fn sample_table_columns_encoded(
        &self,
        join: &Table,
        encoded: &[Vec<u32>],
        table_idx: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<Vec<Value>>> {
        let mut session = InferenceSession::new();
        self.sample_table_columns_encoded_in(&mut session, join, encoded, table_idx, rows, rng)
    }

    /// [`CompletionModel::sample_table_columns_encoded`] over a
    /// caller-owned session (see [`CompletionModel::sample_tf_encoded_in`]).
    pub fn sample_table_columns_encoded_in(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        table_idx: usize,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<Vec<Value>>> {
        let range = self.table_attr_range(table_idx);
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let sampled = self.sample_attr_block(session, join, encoded, range.clone(), rows, rng)?;
        Ok(sampled
            .into_iter()
            .enumerate()
            .map(|(i, toks)| {
                let enc = &self.attrs[range.start + i].encoder;
                toks.into_iter().map(|t| enc.decode(t)).collect()
            })
            .collect())
    }

    /// Core sampling routine: fills the token block `attr_range` for the
    /// selected rows via batched iterative forward sampling on the no-grad
    /// engine, returning the sampled tokens (one vec per attr in the
    /// range). The session's activation buffers are reused across the
    /// autoregressive steps, so the loop is allocation-free after the first
    /// attribute.
    fn sample_attr_block(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        attr_range: Range<usize>,
        rows: &[usize],
        rng: &mut StdRng,
    ) -> CoreResult<Vec<Vec<u32>>> {
        let mut batch: Vec<Arc<Vec<u32>>> = encoded
            .iter()
            .map(|col| Arc::new(rows.iter().map(|&r| col[r]).collect::<Vec<u32>>()))
            .collect();
        let ctx = self.context_matrix_in(session, join, rows, false)?;
        let excluded: Vec<Option<u32>> = self
            .attrs
            .iter()
            .map(|a| Some(a.encoder.mask_token()))
            .collect();
        self.made.sample_range_in(
            session,
            &self.store,
            &mut batch,
            ctx.as_ref(),
            attr_range.start,
            attr_range.end,
            &excluded,
            rng,
        );
        Ok(batch[attr_range]
            .iter()
            .map(|col| col.as_ref().clone())
            .collect())
    }

    /// Conditional distribution of attribute `attr_idx` for the given rows
    /// of a completed join (used by the §6 confidence machinery).
    pub fn conditional_dist(
        &self,
        join: &Table,
        tf_values: &[Vec<Option<i64>>],
        attr_idx: usize,
        rows: &[usize],
    ) -> CoreResult<Vec<Vec<f32>>> {
        let encoded = self.encode_tokens(join, tf_values);
        self.conditional_dist_encoded(join, &encoded, attr_idx, rows)
    }

    /// [`CompletionModel::conditional_dist`] over pre-encoded tokens.
    pub fn conditional_dist_encoded(
        &self,
        join: &Table,
        encoded: &[Vec<u32>],
        attr_idx: usize,
        rows: &[usize],
    ) -> CoreResult<Vec<Vec<f32>>> {
        let mut session = InferenceSession::new();
        self.conditional_dist_encoded_in(&mut session, join, encoded, attr_idx, rows)
    }

    /// [`CompletionModel::conditional_dist_encoded`] over a caller-owned
    /// session.
    pub fn conditional_dist_encoded_in(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        attr_idx: usize,
        rows: &[usize],
    ) -> CoreResult<Vec<Vec<f32>>> {
        let mut dists = Vec::new();
        self.conditional_dists_encoded_into(session, join, encoded, attr_idx, rows, &mut dists)?;
        Ok(dists)
    }

    /// Fills `out` (allocations reused) with the conditional distribution
    /// of `attr_idx` for the given rows, MASK token dropped and
    /// renormalized — the buffer-reusing core of
    /// [`CompletionModel::conditional_dist_encoded_in`].
    #[allow(clippy::too_many_arguments)]
    fn conditional_dists_encoded_into(
        &self,
        session: &mut InferenceSession,
        join: &Table,
        encoded: &[Vec<u32>],
        attr_idx: usize,
        rows: &[usize],
        out: &mut Vec<Vec<f32>>,
    ) -> CoreResult<()> {
        let batch: Vec<Arc<Vec<u32>>> = encoded
            .iter()
            .map(|col| Arc::new(rows.iter().map(|&r| col[r]).collect::<Vec<u32>>()))
            .collect();
        let ctx = self.context_matrix_in(session, join, rows, false)?;
        self.made
            .conditional_dists_in(session, &self.store, &batch, ctx.as_ref(), attr_idx, out);
        // Drop the MASK token and renormalize.
        let card = self.attrs[attr_idx].encoder.cardinality();
        for d in out.iter_mut() {
            d.truncate(card);
            let s: f32 = d.iter().sum();
            if s > 0.0 {
                for v in d.iter_mut() {
                    *v /= s;
                }
            }
        }
        Ok(())
    }

    /// Marginal (training-data) distribution of an attribute — the
    /// `P_incomplete` of the §6 certainty computation.
    pub fn training_marginal(&self, db: &Database, attr_idx: usize) -> CoreResult<Vec<f32>> {
        let attr = &self.attrs[attr_idx];
        let AttrKind::Column { table, column } = &attr.kind else {
            return Err(CoreError::Invalid(
                "marginals only exist for column attrs".into(),
            ));
        };
        let t = db.table(table)?;
        let col = t.column_by_name(column)?;
        let card = attr.encoder.cardinality();
        let mut counts = vec![0.0f32; card];
        let mut total = 0.0f32;
        for r in 0..col.len() {
            if let Some(tok) = attr.encoder.encode(&col.get(r)) {
                counts[tok as usize] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        Ok(counts)
    }

    /// Index of the model attribute for `table.column`, if modeled.
    pub fn attr_index(&self, table: &str, column: &str) -> Option<usize> {
        self.attrs.iter().position(|a| {
            matches!(&a.kind, AttrKind::Column { table: t, column: c } if t == table && c == column)
        })
    }
}

/// Assembles the fan-out evidence sets for a batch of join rows — a free
/// function over the context tables so the training closure can capture it
/// disjointly from the parameter store.
fn assemble_set_batch(
    ctx: &[CtxTable],
    max_set_size: usize,
    join: &Table,
    rows: &[usize],
    exclude_self: bool,
) -> CoreResult<SetBatch> {
    let mut tables = Vec::with_capacity(ctx.len());
    for ct in ctx {
        let anchor_ref = format!("{}.{}", ct.anchor, ct.anchor_key);
        let anchor_idx = join.resolve(&anchor_ref).ok();
        // Self-evidence exclusion: match the set tuple's id against the
        // join row's target id.
        let self_id_idx = if exclude_self && ct.self_evidence {
            join.resolve(&format!("{}.id", ct.table)).ok()
        } else {
            None
        };
        let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); ct.columns.len()];
        let mut segments = Vec::new();
        if let Some(aidx) = anchor_idx {
            for (pos, &r) in rows.iter().enumerate() {
                let key = join.value(r, aidx);
                if key.is_null() {
                    continue;
                }
                let Some(members) = ct.index.get(&key) else {
                    continue;
                };
                let self_id = self_id_idx.map(|i| join.value(r, i));
                let mut taken = 0usize;
                for &m in members {
                    if taken >= max_set_size {
                        break;
                    }
                    if let (Some(sid), Some(ids)) = (&self_id, &ct.row_ids) {
                        if !sid.is_null() && &ids[m] == sid {
                            continue;
                        }
                    }
                    for (a, col) in tokens.iter_mut().enumerate() {
                        col.push(ct.tokens[a][m]);
                    }
                    segments.push(pos as u32);
                    taken += 1;
                }
            }
        }
        tables.push(TableSet {
            tokens: tokens.into_iter().map(Arc::new).collect(),
            segments: Arc::new(segments),
        });
    }
    Ok(SetBatch { tables })
}

/// Joins the path tables over the available (incomplete) data.
pub fn build_path_join(db: &Database, path: &CompletionPath) -> CoreResult<Table> {
    let mut join = db.table(path.root())?.qualified();
    for step in path.steps() {
        let right = db.table(step.to_table())?;
        let (lref, rref) = if step.fan_out {
            (
                format!("{}.{}", step.fk.parent, step.fk.parent_col),
                format!("{}.{}", step.fk.child, step.fk.child_col),
            )
        } else {
            (
                format!("{}.{}", step.fk.child, step.fk.child_col),
                format!("{}.{}", step.fk.parent, step.fk.parent_col),
            )
        };
        join = hash_join(&join, &lref, right, &rref, "join")?.table;
    }
    Ok(join)
}

/// Column-major training tokens plus per-attribute loss weights.
type TokenColumns = (Vec<Vec<u32>>, Vec<Vec<f32>>);

/// Encodes the training join into token + loss-weight columns.
fn encode_training_tokens(
    db: &Database,
    path: &CompletionPath,
    attrs: &[ModelAttr],
    tf_attrs: &[Option<usize>],
    join: &Table,
) -> CoreResult<TokenColumns> {
    let n = join.n_rows();
    let mut tokens: Vec<Vec<u32>> = vec![Vec::with_capacity(n); attrs.len()];
    let mut weights: Vec<Vec<f32>> = vec![Vec::with_capacity(n); attrs.len()];

    // Tuple factors per fan-out step, resolved once per step.
    let mut tf_per_step: Vec<Option<Vec<Option<i64>>>> = vec![None; path.steps().len()];
    for (i, step) in path.steps().iter().enumerate() {
        if tf_attrs[i].is_none() {
            continue;
        }
        let parent_ref = format!("{}.{}", step.fk.parent, tf_column_name(&step.fk.child));
        let vals: Vec<Option<i64>> = if let Ok(idx) = join.resolve(&parent_ref) {
            (0..n).map(|r| join.value(r, idx).as_i64()).collect()
        } else {
            // Child is complete: observed counts are the truth.
            let child = db.table(&step.fk.child)?;
            let counts = partner_counts(
                join,
                &format!("{}.{}", step.fk.parent, step.fk.parent_col),
                child,
                &step.fk.child_col,
            )?;
            counts.into_iter().map(|c| Some(c as i64)).collect()
        };
        tf_per_step[i] = Some(vals);
    }

    for (a, attr) in attrs.iter().enumerate() {
        match &attr.kind {
            AttrKind::Column { table, column } => {
                let idx = join.resolve(&format!("{table}.{column}"))?;
                for r in 0..n {
                    match attr.encoder.encode(&join.value(r, idx)) {
                        Some(t) => {
                            tokens[a].push(t);
                            weights[a].push(1.0);
                        }
                        None => {
                            tokens[a].push(attr.encoder.mask_token());
                            weights[a].push(0.0);
                        }
                    }
                }
            }
            AttrKind::TupleFactor { step } => {
                let vals = tf_per_step[*step].as_ref().expect("tf resolved above");
                for v in vals {
                    match v {
                        Some(x) => {
                            let t = attr
                                .encoder
                                .encode(&Value::Int(*x))
                                .unwrap_or(attr.encoder.mask_token());
                            tokens[a].push(t);
                            weights[a].push(1.0);
                        }
                        None => {
                            tokens[a].push(attr.encoder.mask_token());
                            weights[a].push(0.0);
                        }
                    }
                }
            }
        }
    }
    Ok((tokens, weights))
}

/// Gathers batch rows out of column-major token/weight storage.
fn gather_batch(
    tokens: &[Vec<u32>],
    weights: &[Vec<f32>],
    rows: &[usize],
) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
    let btoks = tokens
        .iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect();
    let bweights = weights
        .iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect();
    (btoks, bweights)
}

/// Builds the SSAR context tables: self-evidence (available target-table
/// siblings) plus fan-out neighbors of the evidence root that are not on
/// the path (§3.3).
fn build_ctx_tables(
    db: &Database,
    annotation: &SchemaAnnotation,
    path: &CompletionPath,
    cfg: &TrainConfig,
) -> CoreResult<Vec<CtxTable>> {
    let mut out = Vec::new();
    let mut candidates: Vec<(String, String, restore_db::PathStep, bool)> = Vec::new();

    // Self-evidence: when the final step fans out, the available children of
    // the second-to-last table are evidence for the missing ones.
    if let Some(last) = path.steps().last() {
        if last.fan_out {
            candidates.push((
                last.fk.child.clone(),
                last.fk.parent.clone(),
                last.clone(),
                true,
            ));
        }
    }
    // Fan-out neighbors of the evidence root not on the path.
    for step in db.neighbors(path.root()) {
        if step.fan_out && !path.tables().iter().any(|t| t == step.to_table()) {
            // Only complete neighbors are reliable evidence.
            if annotation.is_complete(step.to_table()) {
                candidates.push((
                    step.fk.child.clone(),
                    step.fk.parent.clone(),
                    step.clone(),
                    false,
                ));
            }
        }
    }

    for (table_name, anchor, step, self_evidence) in candidates {
        let table = db.table(&table_name)?;
        let columns = modeled_columns(table);
        if columns.is_empty() {
            continue;
        }
        let encoders: Vec<AttrEncoder> = columns
            .iter()
            .map(|c| Ok(AttrEncoder::fit(table.column_by_name(c)?, cfg.max_bins)))
            .collect::<CoreResult<_>>()?;
        // Pre-encode all rows.
        let mut tokens: Vec<Vec<u32>> = Vec::with_capacity(columns.len());
        for (c, enc) in columns.iter().zip(&encoders) {
            let idx = table.resolve(c)?;
            tokens.push(
                (0..table.n_rows())
                    .map(|r| enc.encode(&table.value(r, idx)).unwrap_or(enc.mask_token()))
                    .collect(),
            );
        }
        let row_ids = table.resolve("id").ok().map(|idx| {
            (0..table.n_rows())
                .map(|r| table.value(r, idx))
                .collect::<Vec<Value>>()
        });
        // Index by the FK value pointing at the anchor.
        let fk_idx = table.resolve(&step.fk.child_col)?;
        let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
        for r in 0..table.n_rows() {
            let key = table.value(r, fk_idx);
            if !key.is_null() {
                index.entry(key).or_default().push(r);
            }
        }
        out.push(CtxTable {
            table: table_name,
            anchor,
            anchor_key: step.fk.parent_col.clone(),
            columns,
            encoders,
            tokens,
            row_ids,
            index,
            self_evidence,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 128,
            hidden: vec![32, 32],
            max_train_rows: 4000,
            ..Default::default()
        }
    }

    fn synthetic_scenario(predictability: f64, seed: u64) -> restore_data::Scenario {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability,
                n_parent: 250,
                ..Default::default()
            },
            seed,
        );
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.6);
        cfg.seed = seed;
        apply_removal(&db, &cfg)
    }

    fn trained_model(predictability: f64, seed: u64) -> (restore_data::Scenario, CompletionModel) {
        let sc = synthetic_scenario(predictability, seed);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
        let model = CompletionModel::train(&sc.incomplete, &ann, path, &quick_cfg(), seed).unwrap();
        (sc, model)
    }

    #[test]
    fn attribute_layout_has_tf_before_target() {
        let (_, model) = trained_model(0.9, 1);
        // attrs: [ta.a, TF, tb.b]
        assert_eq!(model.attrs().len(), 3);
        assert!(matches!(model.attrs()[0].kind, AttrKind::Column { .. }));
        assert!(matches!(
            model.attrs()[1].kind,
            AttrKind::TupleFactor { step: 0 }
        ));
        assert_eq!(model.table_attr_range(0), 0..1);
        assert_eq!(model.table_attr_range(1), 2..3);
        assert_eq!(model.tf_attr(0), Some(1));
    }

    #[test]
    fn training_loss_decreases() {
        let (_, model) = trained_model(1.0, 2);
        let first = model.train_losses.first().copied().unwrap();
        let last = model.train_losses.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn predictable_data_has_lower_val_loss() {
        // Fig. 5b: test loss grows as predictability falls.
        let (_, hi) = trained_model(1.0, 3);
        let (_, lo) = trained_model(0.2, 3);
        assert!(
            hi.target_val_loss() < lo.target_val_loss(),
            "val loss: predictable {} vs noise {}",
            hi.target_val_loss(),
            lo.target_val_loss()
        );
    }

    #[test]
    fn sampled_values_follow_the_conditional() {
        let (sc, model) = trained_model(1.0, 4);
        // Evidence join = just ta (qualified); sample TF and b for each row.
        let ta = sc.incomplete.table("ta").unwrap().qualified();
        let rows: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let tf_slots: Vec<Vec<Option<i64>>> = vec![vec![None; ta.n_rows()]];
        let vals = model
            .sample_table_columns(&ta, &tf_slots, 1, &rows, &mut rng)
            .unwrap();
        // With predictability 1.0, b must equal f(a) = a mod 10 for most rows.
        let a_idx = ta.resolve("ta.a").unwrap();
        let mut correct = 0;
        for (i, &r) in rows.iter().enumerate() {
            let a: usize = ta.value(r, a_idx).as_str().unwrap()[1..].parse().unwrap();
            let b = vals[0][i].to_string();
            if b == format!("b{}", a % 10) {
                correct += 1;
            }
        }
        assert!(
            correct >= 30,
            "only {correct}/40 samples followed the deterministic rule"
        );
    }

    #[test]
    fn sampled_tuple_factors_are_plausible() {
        let (sc, model) = trained_model(0.9, 5);
        let ta = sc.incomplete.table("ta").unwrap().qualified();
        let rows: Vec<usize> = (0..ta.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(10);
        let tf_slots: Vec<Vec<Option<i64>>> = vec![vec![None; ta.n_rows()]];
        let tfs = model.sample_tf(&ta, &tf_slots, 0, &rows, &mut rng).unwrap();
        // True fan-outs are 5..7; sampled factors must stay in a sane band.
        let mean = tfs.iter().sum::<i64>() as f64 / tfs.len() as f64;
        assert!(
            (4.0..8.0).contains(&mean),
            "sampled TF mean {mean} implausible"
        );
        assert!(tfs.iter().all(|&t| (0..=64).contains(&t)));
    }

    #[test]
    fn conditional_dist_excludes_mask_and_normalizes() {
        let (sc, model) = trained_model(0.8, 6);
        let ta = sc.incomplete.table("ta").unwrap().qualified();
        let tf_slots: Vec<Vec<Option<i64>>> = vec![vec![None; ta.n_rows()]];
        let b_attr = model.attr_index("tb", "b").unwrap();
        let dists = model
            .conditional_dist(&ta, &tf_slots, b_attr, &[0, 1, 2])
            .unwrap();
        for d in dists {
            assert_eq!(d.len(), model.attrs()[b_attr].encoder.cardinality());
            let s: f32 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ssar_model_trains_with_self_evidence() {
        let sc = synthetic_scenario(0.5, 7);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
        let cfg = quick_cfg().ssar();
        let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 7).unwrap();
        assert!(model.is_ssar());
        let first = model.train_losses.first().copied().unwrap();
        let last = model.train_losses.last().copied().unwrap();
        assert!(last <= first);
    }

    #[test]
    fn insufficient_data_is_an_error() {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                n_parent: 10,
                ..Default::default()
            },
            8,
        );
        // Remove everything but a couple of rows.
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.02, 0.0);
        cfg.seed = 8;
        let sc = apply_removal(&db, &cfg);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
        assert!(matches!(
            CompletionModel::train(&sc.incomplete, &ann, path, &quick_cfg(), 8),
            Err(CoreError::InsufficientData(_))
        ));
    }
}
