//! Approximate nearest neighbors for the euclidean replacement step of the
//! incompleteness join (§4.2, Fig. 3).
//!
//! The paper notes that exact nearest-neighbor replacement "would come at a
//! high cost" and employs "approximate nearest neighbor approaches and
//! batching". This module implements signed-random-projection LSH with
//! multiple hash tables: candidates are collected from matching buckets and
//! re-ranked exactly; a linear scan is the fallback when the buckets are
//! empty, so a neighbor is always found.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LSH index over `f32` feature vectors.
pub struct AnnIndex {
    points: Vec<Vec<f32>>,
    dim: usize,
    /// One hyperplane set per table: `planes[t][b]` is a d-vector.
    planes: Vec<Vec<Vec<f32>>>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
}

impl AnnIndex {
    /// Builds an index with `n_tables` hash tables of `bits` hyperplanes.
    pub fn build(points: Vec<Vec<f32>>, bits: usize, n_tables: usize, seed: u64) -> Self {
        assert!(!points.is_empty(), "cannot index an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "ragged feature vectors"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = bits.clamp(1, 24);
        let mut planes = Vec::with_capacity(n_tables);
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables.max(1) {
            let set: Vec<Vec<f32>> = (0..bits)
                .map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0f32)).collect())
                .collect();
            let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, p) in points.iter().enumerate() {
                table.entry(Self::hash(&set, p)).or_default().push(i as u32);
            }
            planes.push(set);
            tables.push(table);
        }
        Self {
            points,
            dim,
            planes,
            tables,
        }
    }

    fn hash(planes: &[Vec<f32>], point: &[f32]) -> u64 {
        let mut h = 0u64;
        for (b, plane) in planes.iter().enumerate() {
            let dot: f32 = plane.iter().zip(point).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                h |= 1 << b;
            }
        }
        h
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn distance2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Index of (approximately) the nearest stored point.
    pub fn nearest(&self, query: &[f32]) -> usize {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut best = usize::MAX;
        let mut best_d = f32::INFINITY;
        let mut seen_any = false;
        for (set, table) in self.planes.iter().zip(&self.tables) {
            if let Some(bucket) = table.get(&Self::hash(set, query)) {
                for &i in bucket {
                    seen_any = true;
                    let d = Self::distance2(query, &self.points[i as usize]);
                    if d < best_d {
                        best_d = d;
                        best = i as usize;
                    }
                }
            }
        }
        if !seen_any {
            // Fallback: exact scan — rare when bits/tables are sized sanely.
            for (i, p) in self.points.iter().enumerate() {
                let d = Self::distance2(query, p);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
        }
        best
    }

    /// Batched variant of [`AnnIndex::nearest`].
    pub fn nearest_batch(&self, queries: &[Vec<f32>]) -> Vec<usize> {
        queries.iter().map(|q| self.nearest(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![i as f32, (i * 2) as f32 % 17.0])
            .collect()
    }

    #[test]
    fn exact_match_is_found() {
        let pts = grid_points(200);
        let idx = AnnIndex::build(pts.clone(), 8, 4, 1);
        for probe in [0usize, 57, 121, 199] {
            assert_eq!(idx.nearest(&pts[probe]), probe);
        }
    }

    #[test]
    fn approximate_neighbor_is_close() {
        let pts = grid_points(500);
        let idx = AnnIndex::build(pts.clone(), 10, 6, 2);
        let mut total_err = 0.0f32;
        for probe in (0..500).step_by(37) {
            let q: Vec<f32> = pts[probe].iter().map(|v| v + 0.25).collect();
            let found = idx.nearest(&q);
            let exact = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    AnnIndex::distance2(&q, a.1)
                        .partial_cmp(&AnnIndex::distance2(&q, b.1))
                        .unwrap()
                })
                .unwrap()
                .0;
            let err = AnnIndex::distance2(&q, &pts[found]) - AnnIndex::distance2(&q, &pts[exact]);
            total_err += err;
        }
        assert!(
            total_err < 10.0,
            "ANN answers drift too far from exact: {total_err}"
        );
    }

    #[test]
    fn fallback_scan_when_buckets_miss() {
        // A single point forces any query into the fallback path eventually.
        let idx = AnnIndex::build(vec![vec![1000.0, -1000.0]], 12, 2, 3);
        assert_eq!(idx.nearest(&[-1000.0, 1000.0]), 0);
    }

    #[test]
    fn batch_matches_single_queries() {
        let pts = grid_points(100);
        let idx = AnnIndex::build(pts.clone(), 8, 4, 4);
        let queries: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 + 0.1, i as f32]).collect();
        let batch = idx.nearest_batch(&queries);
        for (q, &b) in queries.iter().zip(&batch) {
            assert_eq!(idx.nearest(q), b);
        }
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_index_panics() {
        let _ = AnnIndex::build(Vec::new(), 8, 4, 5);
    }
}
