//! Model & path selection (§5).
//!
//! *Basic selection* filters models by their held-out test loss — an
//! unpredictable target attribute means the bias cannot be corrected
//! (Fig. 5b validates the criterion). *Advanced selection* derives an
//! additional incomplete scenario from the already-incomplete data (whose
//! ground truth we hold) and ranks candidates by how well they reconstruct
//! it. When the user *suspects* the direction of the bias, candidates are
//! ranked by how strongly they correct in that direction.

use restore_db::Database;

use crate::annotation::SchemaAnnotation;
use crate::completion::{Completer, CompletionOutput};
use crate::error::{CoreError, CoreResult};
use crate::model::{CompletionModel, TrainConfig};
use crate::paths::enumerate_paths;

/// The direction of a suspected bias on an attribute (§5): does the
/// incomplete data over- or under-estimate it?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BiasDirection {
    Overestimated,
    Underestimated,
}

/// User-provided hint that an attribute's aggregate is biased.
#[derive(Clone, Debug)]
pub struct SuspectedBias {
    pub table: String,
    pub column: String,
    pub direction: BiasDirection,
    /// For categorical attributes: the value whose share is biased.
    pub value: Option<String>,
}

/// How the facade selects among candidate completion paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Pick the shortest valid path (no training of alternatives).
    Shortest,
    /// Train every candidate and pick the lowest held-out target NLL
    /// (basic selection, §5).
    #[default]
    BestValLoss,
    /// Additionally rank the basic-filtered candidates by completing the
    /// data and scoring against the suspected bias direction.
    SuspectedBiasRanking,
}

/// Score sheet of one candidate path.
#[derive(Clone, Debug)]
pub struct CandidateScore {
    pub path: String,
    pub val_loss: f32,
    pub target_val_loss: f32,
    /// Strategy-specific ranking score (higher is better).
    pub score: f64,
    pub selected: bool,
}

/// Outcome of path selection for one incomplete table.
pub struct SelectionOutcome {
    pub model: CompletionModel,
    pub candidates: Vec<CandidateScore>,
}

/// Basic filter (§5): a model whose held-out NLL on the target attributes
/// is close to the uninformative (marginal-entropy) bound cannot correct
/// the bias. We filter candidates whose target NLL exceeds `factor` × the
/// best candidate's.
pub fn basic_filter(scored: &mut Vec<(CompletionModel, f64)>, factor: f32) {
    if scored.len() <= 1 {
        return;
    }
    let best = scored
        .iter()
        .map(|(m, _)| m.target_val_loss())
        .fold(f32::INFINITY, f32::min);
    scored.retain(|(m, _)| m.target_val_loss() <= best * factor + 1e-3);
}

/// Trains candidate models for all paths to `target` and applies the
/// selection strategy.
#[allow(clippy::too_many_arguments)]
pub fn select_model(
    db: &Database,
    annotation: &SchemaAnnotation,
    target: &str,
    max_path_len: usize,
    max_candidates: usize,
    strategy: &SelectionStrategy,
    suspected: Option<&SuspectedBias>,
    train_cfg: &TrainConfig,
    seed: u64,
) -> CoreResult<SelectionOutcome> {
    let mut paths = enumerate_paths(db, annotation, target, max_path_len);
    if paths.is_empty() {
        return Err(CoreError::NoPath(format!(
            "no completion path reaches {target}"
        )));
    }
    if *strategy == SelectionStrategy::Shortest {
        paths.truncate(1);
    } else {
        paths.truncate(max_candidates.max(1));
    }

    // Train all candidates.
    let mut trained: Vec<(CompletionModel, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        match CompletionModel::train(
            db,
            annotation,
            path.clone(),
            train_cfg,
            seed ^ (i as u64) << 8,
        ) {
            Ok(m) => trained.push((m, 0.0)),
            Err(e) => failures.push(format!("{}: {e}", path.describe())),
        }
    }
    if trained.is_empty() {
        return Err(CoreError::NoModel(format!(
            "all candidate paths failed for {target}: {failures:?}"
        )));
    }

    // Score per strategy.
    match strategy {
        SelectionStrategy::Shortest | SelectionStrategy::BestValLoss => {
            for (m, score) in trained.iter_mut() {
                *score = -(m.target_val_loss() as f64);
            }
        }
        SelectionStrategy::SuspectedBiasRanking => {
            basic_filter(&mut trained, 1.5);
            let sus = suspected.ok_or_else(|| {
                CoreError::Invalid("SuspectedBiasRanking needs a SuspectedBias hint".into())
            })?;
            for (m, score) in trained.iter_mut() {
                *score = suspected_bias_score(db, annotation, m, sus, seed)?;
            }
        }
    }

    // Pick the max-score candidate; report everything.
    let best_idx = trained
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let mut candidates = Vec::with_capacity(trained.len());
    for (i, (m, score)) in trained.iter().enumerate() {
        candidates.push(CandidateScore {
            path: m.path().describe(),
            val_loss: m.val_loss,
            target_val_loss: m.target_val_loss(),
            score: *score,
            selected: i == best_idx,
        });
    }
    let model = trained.swap_remove(best_idx).0;
    Ok(SelectionOutcome { model, candidates })
}

/// Scores a candidate by how strongly its completion corrects the
/// suspected bias: completes the data and measures the shift of the
/// attribute's mean (continuous) or target-value share (categorical) in the
/// suspected direction.
fn suspected_bias_score(
    db: &Database,
    annotation: &SchemaAnnotation,
    model: &CompletionModel,
    suspected: &SuspectedBias,
    seed: u64,
) -> CoreResult<f64> {
    let completer = Completer::new(db, annotation);
    let out = completer.complete(model, seed ^ 0xb1a5)?;
    let before = attr_statistic(StatInput::Incomplete(db), suspected)?;
    let after = attr_statistic(StatInput::Completed(&out), suspected)?;
    let shift = after - before;
    Ok(match suspected.direction {
        // Incomplete data overestimates → a good completion lowers it.
        BiasDirection::Overestimated => -shift,
        BiasDirection::Underestimated => shift,
    })
}

enum StatInput<'a> {
    Incomplete(&'a Database),
    Completed(&'a CompletionOutput),
}

/// Mean (continuous) or target-value share (categorical) of the suspected
/// attribute.
fn attr_statistic(input: StatInput<'_>, suspected: &SuspectedBias) -> CoreResult<f64> {
    let (values, n): (Vec<restore_db::Value>, usize) = match input {
        StatInput::Incomplete(db) => {
            let t = db.table(&suspected.table)?;
            let idx = t.resolve(&suspected.column)?;
            (
                (0..t.n_rows()).map(|r| t.value(r, idx)).collect(),
                t.n_rows(),
            )
        }
        StatInput::Completed(out) => {
            let idx = out
                .join
                .resolve(&format!("{}.{}", suspected.table, suspected.column))?;
            (
                (0..out.join.n_rows())
                    .map(|r| out.join.value(r, idx))
                    .collect(),
                out.join.n_rows(),
            )
        }
    };
    if n == 0 {
        return Ok(0.0);
    }
    Ok(match &suspected.value {
        Some(v) => values.iter().filter(|x| x.to_string() == *v).count() as f64 / n as f64,
        None => {
            let nums: Vec<f64> = values.iter().filter_map(|x| x.as_f64()).collect();
            if nums.is_empty() {
                0.0
            } else {
                nums.iter().sum::<f64>() / nums.len() as f64
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};

    fn scenario(seed: u64) -> restore_data::Scenario {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability: 0.95,
                n_parent: 200,
                ..Default::default()
            },
            seed,
        );
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.6);
        cfg.seed = seed;
        apply_removal(&db, &cfg)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            hidden: vec![32, 32],
            max_train_rows: 4000,
            ..Default::default()
        }
    }

    #[test]
    fn best_val_loss_selects_a_model() {
        let sc = scenario(41);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let outcome = select_model(
            &sc.incomplete,
            &ann,
            "tb",
            3,
            4,
            &SelectionStrategy::BestValLoss,
            None,
            &quick_cfg(),
            41,
        )
        .unwrap();
        assert_eq!(outcome.model.path().target(), "tb");
        assert!(outcome.candidates.iter().any(|c| c.selected));
    }

    #[test]
    fn no_path_is_an_error() {
        let sc = scenario(42);
        // Mark everything incomplete: no complete evidence root exists.
        let ann = SchemaAnnotation::with_incomplete(["ta", "tb"]);
        assert!(matches!(
            select_model(
                &sc.incomplete,
                &ann,
                "tb",
                3,
                4,
                &SelectionStrategy::BestValLoss,
                None,
                &quick_cfg(),
                42,
            ),
            Err(CoreError::NoPath(_))
        ));
    }

    #[test]
    fn suspected_bias_ranking_prefers_correcting_models() {
        let sc = scenario(43);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let sus = SuspectedBias {
            table: "tb".into(),
            column: "b".into(),
            direction: BiasDirection::Underestimated,
            value: sc.bias_value.clone(),
        };
        let outcome = select_model(
            &sc.incomplete,
            &ann,
            "tb",
            2,
            2,
            &SelectionStrategy::SuspectedBiasRanking,
            Some(&sus),
            &quick_cfg(),
            43,
        )
        .unwrap();
        // The biased value was depleted; a good completion raises its share,
        // so the winning score must be positive.
        let winner = outcome.candidates.iter().find(|c| c.selected).unwrap();
        assert!(
            winner.score > 0.0,
            "winning score {} should correct the bias",
            winner.score
        );
    }

    #[test]
    fn basic_filter_drops_bad_models() {
        let sc = scenario(44);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            crate::paths::CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()])
                .unwrap();
        let good =
            CompletionModel::train(&sc.incomplete, &ann, path.clone(), &quick_cfg(), 1).unwrap();
        // An untrained model: 0 epochs and no minimum-step floor.
        let mut bad_cfg = quick_cfg();
        bad_cfg.epochs = 0;
        bad_cfg.min_steps = 0;
        let bad = CompletionModel::train(&sc.incomplete, &ann, path, &bad_cfg, 1).unwrap();
        let mut scored = vec![(good, 0.0), (bad, 0.0)];
        basic_filter(&mut scored, 1.1);
        assert_eq!(scored.len(), 1, "the uninformative model must be filtered");
    }
}
