//! Completion confidence (§6): per-tuple certainty from the KL divergence
//! between the model's predictive distribution and the training-data
//! marginal, mixed with pessimistic bound distributions `P_lower`/`P_upper`
//! to yield confidence intervals for COUNT / AVG / SUM aggregates over
//! completed data.

use restore_db::{Database, Value};
use restore_nn::kl_divergence;

use crate::completion::CompletionOutput;
use crate::error::{CoreError, CoreResult};
use crate::model::CompletionModel;

/// The aggregate a confidence interval is requested for.
#[derive(Clone, Debug)]
pub enum ConfidenceQuery {
    /// Fraction of rows where `table.column == value` (count-queries of
    /// Figs. 6/13/14 report this fraction).
    CountFraction {
        table: String,
        column: String,
        value: String,
    },
    /// Average of `table.column` over the completed join.
    Avg { table: String, column: String },
    /// Sum of `table.column` over the completed join.
    Sum { table: String, column: String },
}

/// A confidence interval plus the point estimate and — for count-queries —
/// the theoretical min/max obtained by setting all synthesized values to /
/// away from the target value.
#[derive(Clone, Debug)]
pub struct ConfidenceInterval {
    pub lo: f64,
    pub hi: f64,
    pub estimate: f64,
    pub theoretical: Option<(f64, f64)>,
}

/// Per-row certainty `C(t_e) = 1 − exp(−D_KL(P_model ‖ P_incomplete))`.
fn certainty(dist: &[f32], marginal: &[f32]) -> f32 {
    (1.0 - (-kl_divergence(dist, marginal)).exp()).clamp(0.0, 1.0)
}

/// Computes the §6 confidence interval for an aggregate over a completed
/// join. `level` is the confidence level (e.g. 0.95).
pub fn confidence_interval(
    model: &CompletionModel,
    db: &Database,
    output: &CompletionOutput,
    query: &ConfidenceQuery,
    level: f64,
) -> CoreResult<ConfidenceInterval> {
    let (table, column) = match query {
        ConfidenceQuery::CountFraction { table, column, .. }
        | ConfidenceQuery::Avg { table, column }
        | ConfidenceQuery::Sum { table, column } => (table.as_str(), column.as_str()),
    };
    let attr_idx = model
        .attr_index(table, column)
        .ok_or_else(|| CoreError::Invalid(format!("{table}.{column} is not a model attribute")))?;
    let attr = &model.attrs()[attr_idx];
    let syn_flags = output
        .synthesized_for(table)
        .ok_or_else(|| CoreError::Invalid(format!("{table} is not on the completed path")))?;

    let join = &output.join;
    let col_idx = join.resolve(&format!("{table}.{column}"))?;
    let n = join.n_rows();
    let syn_rows: Vec<usize> = (0..n).filter(|&r| syn_flags[r]).collect();
    let real_rows: Vec<usize> = (0..n).filter(|&r| !syn_flags[r]).collect();

    // Model conditionals for synthesized rows + training marginal.
    let dists = if syn_rows.is_empty() {
        Vec::new()
    } else {
        model.conditional_dist(join, &output.tf, attr_idx, &syn_rows)?
    };
    let marginal = model.training_marginal(db, attr_idx)?;

    match query {
        ConfidenceQuery::CountFraction { value, .. } => {
            let target_tok = attr.encoder.encode(&Value::str(value.clone())).or_else(|| {
                // Numeric categorical values arrive as strings too.
                value
                    .parse::<f64>()
                    .ok()
                    .and_then(|f| attr.encoder.encode(&Value::Float(f)))
            });
            let existing = real_rows
                .iter()
                .filter(|&&r| join.value(r, col_idx).to_string() == *value)
                .count() as f64;
            let (p_hi, p_lo) = (level, 1.0 - level);
            let mut lo = existing;
            let mut hi = existing;
            let mut est = existing;
            for d in &dists {
                let p_model =
                    target_tok.map_or(0.0, |t| d.get(t as usize).copied().unwrap_or(0.0)) as f64;
                let c = certainty(d, &marginal) as f64;
                lo += c * p_model + (1.0 - c) * p_lo;
                hi += c * p_model + (1.0 - c) * p_hi;
                est += p_model;
            }
            let total = n.max(1) as f64;
            Ok(ConfidenceInterval {
                lo: lo / total,
                hi: hi / total,
                estimate: est / total,
                theoretical: Some((existing / total, (existing + syn_rows.len() as f64) / total)),
            })
        }
        ConfidenceQuery::Avg { .. } | ConfidenceQuery::Sum { .. } => {
            // Pessimistic bound values: the level-quantiles of the training
            // data (P_lower / P_upper concentrated on extreme values).
            let (q_lo, q_hi) = training_quantiles(db, table, column, 1.0 - level, level)?;
            let mut sum_lo = 0.0;
            let mut sum_hi = 0.0;
            let mut sum_est = 0.0;
            let mut count = 0usize;
            for &r in &real_rows {
                if let Some(x) = join.value(r, col_idx).as_f64() {
                    sum_lo += x;
                    sum_hi += x;
                    sum_est += x;
                    count += 1;
                }
            }
            for d in &dists {
                let e_model: f64 = d
                    .iter()
                    .enumerate()
                    .map(|(t, &p)| p as f64 * attr.encoder.token_numeric(t as u32).unwrap_or(0.0))
                    .sum();
                let c = certainty(d, &marginal) as f64;
                sum_lo += c * e_model + (1.0 - c) * q_lo;
                sum_hi += c * e_model + (1.0 - c) * q_hi;
                sum_est += e_model;
                count += 1;
            }
            let count = count.max(1) as f64;
            let (lo, hi, est) = match query {
                ConfidenceQuery::Avg { .. } => (sum_lo / count, sum_hi / count, sum_est / count),
                _ => (sum_lo, sum_hi, sum_est),
            };
            Ok(ConfidenceInterval {
                lo,
                hi,
                estimate: est,
                theoretical: None,
            })
        }
    }
}

/// Quantiles of the available (incomplete) data for a numeric column.
fn training_quantiles(
    db: &Database,
    table: &str,
    column: &str,
    lo_q: f64,
    hi_q: f64,
) -> CoreResult<(f64, f64)> {
    let t = db.table(table)?;
    let col = t.column_by_name(column)?;
    let mut vals: Vec<f64> = (0..col.len()).filter_map(|r| col.get(r).as_f64()).collect();
    if vals.is_empty() {
        return Ok((0.0, 0.0));
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| {
        let i = ((vals.len() - 1) as f64 * q).round() as usize;
        vals[i]
    };
    Ok((pick(lo_q.clamp(0.0, 1.0)), pick(hi_q.clamp(0.0, 1.0))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::SchemaAnnotation;
    use crate::completion::Completer;
    use crate::model::{CompletionModel, TrainConfig};
    use crate::paths::CompletionPath;
    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};

    fn run_scenario(
        predictability: f64,
        seed: u64,
    ) -> (restore_data::Scenario, CompletionModel, CompletionOutput) {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability,
                n_parent: 200,
                ..Default::default()
            },
            seed,
        );
        let mut rcfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.4);
        rcfg.seed = seed;
        let sc = apply_removal(&db, &rcfg);
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
        let cfg = TrainConfig {
            epochs: 10,
            hidden: vec![32, 32],
            ..Default::default()
        };
        let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, seed).unwrap();
        let completer = Completer::new(&sc.incomplete, &ann);
        let out = completer.complete(&model, seed).unwrap();
        (sc, model, out)
    }

    fn true_fraction(sc: &restore_data::Scenario, value: &str) -> f64 {
        let t = sc.complete.table("tb").unwrap();
        let i = t.resolve("b").unwrap();
        (0..t.n_rows())
            .filter(|&r| t.value(r, i).to_string() == value)
            .count() as f64
            / t.n_rows() as f64
    }

    #[test]
    fn count_interval_contains_truth_and_theoretical_bounds() {
        let (sc, model, out) = run_scenario(0.9, 31);
        let value = sc.bias_value.clone().unwrap();
        let q = ConfidenceQuery::CountFraction {
            table: "tb".into(),
            column: "b".into(),
            value: value.clone(),
        };
        let ci = confidence_interval(&model, &sc.incomplete, &out, &q, 0.95).unwrap();
        let truth = true_fraction(&sc, &value);
        let (tmin, tmax) = ci.theoretical.unwrap();
        assert!(ci.lo <= ci.hi);
        assert!(
            tmin <= ci.lo + 1e-9 && ci.hi <= tmax + 1e-9,
            "CI outside theoretical bounds"
        );
        assert!(
            ci.lo - 0.05 <= truth && truth <= ci.hi + 0.05,
            "true fraction {truth:.3} outside CI [{:.3}, {:.3}]",
            ci.lo,
            ci.hi
        );
    }

    #[test]
    fn higher_predictability_tightens_the_interval() {
        let (sc_hi, model_hi, out_hi) = run_scenario(1.0, 32);
        let (sc_lo, model_lo, out_lo) = run_scenario(0.2, 32);
        let q = |sc: &restore_data::Scenario| ConfidenceQuery::CountFraction {
            table: "tb".into(),
            column: "b".into(),
            value: sc.bias_value.clone().unwrap(),
        };
        let ci_hi =
            confidence_interval(&model_hi, &sc_hi.incomplete, &out_hi, &q(&sc_hi), 0.95).unwrap();
        let ci_lo =
            confidence_interval(&model_lo, &sc_lo.incomplete, &out_lo, &q(&sc_lo), 0.95).unwrap();
        assert!(
            ci_hi.hi - ci_hi.lo < ci_lo.hi - ci_lo.lo,
            "predictable CI ({:.3}) should be tighter than noise CI ({:.3})",
            ci_hi.hi - ci_hi.lo,
            ci_lo.hi - ci_lo.lo
        );
    }

    #[test]
    fn avg_interval_brackets_estimate() {
        let (sc, model, out) = run_scenario(0.8, 33);
        // `b` is categorical; use the tuple-factor-free parent attr instead —
        // avg over a categorical attr is meaningless, so test Sum over a
        // synthetic numeric view: here we simply check the Avg machinery on
        // the `a` attribute of the (complete) evidence table is rejected,
        // and Sum on `b` is rejected for non-numeric decode.
        let q = ConfidenceQuery::Avg {
            table: "tb".into(),
            column: "b".into(),
        };
        let ci = confidence_interval(&model, &sc.incomplete, &out, &q, 0.95).unwrap();
        // Categorical tokens decode to strings → numeric view is 0; the
        // interval still must be ordered and finite.
        assert!(ci.lo <= ci.hi);
        assert!(ci.lo.is_finite() && ci.hi.is_finite());
    }

    #[test]
    fn unknown_attr_is_an_error() {
        let (sc, model, out) = run_scenario(0.8, 34);
        let q = ConfidenceQuery::Avg {
            table: "tb".into(),
            column: "nope".into(),
        };
        assert!(confidence_interval(&model, &sc.incomplete, &out, &q, 0.95).is_err());
    }
}
