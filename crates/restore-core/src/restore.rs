//! The [`ReStore`] facade: annotate → train → complete → query (Fig. 1).
//!
//! [`ReStore`] is the *build phase* of the lifecycle: it owns the mutable
//! state (annotations, bias hints, on-demand model training) and answers
//! queries by training whatever candidate models the query needs first,
//! then delegating to the serving logic. [`ReStore::seal`] freezes the
//! build into an immutable [`Snapshot`] whose serving methods all take
//! `&self` — that is the type to share across threads in a server.
//!
//! Queries over incomplete tables are answered by (1) building an
//! *execution chain* — the selected completion path of the incomplete
//! table, extended by the remaining query tables, (2) running Algorithm 1
//! over the chain, (3) projecting the completed join onto the query tables
//! (with the §4.4 reweighting when the chain contains additional evidence
//! tables), and (4) executing the filter/aggregate tail with normal
//! operators.

use std::collections::HashMap;
use std::sync::Arc;

use restore_db::{Database, Query, QueryResult, Table};

use crate::annotation::{modeled_columns, SchemaAnnotation};
use crate::cache::{CacheStats, JoinCache};
use crate::completion::{CompleterConfig, CompletionOutput};
use crate::confidence::{ConfidenceInterval, ConfidenceQuery};
use crate::error::{CoreError, CoreResult};
use crate::model::{CompletionModel, TrainConfig};
use crate::paths::CompletionPath;
use crate::selection::{select_model, CandidateScore, SelectionStrategy, SuspectedBias};
use crate::snapshot::Snapshot;

/// Configuration of the ReStore facade.
#[derive(Clone, Debug)]
pub struct RestoreConfig {
    pub train: TrainConfig,
    pub completer: CompleterConfig,
    /// Maximum completion-path length (tables); the movie setups need 5.
    pub max_path_len: usize,
    /// Maximum candidate paths trained during selection.
    pub max_candidates: usize,
    pub strategy: SelectionStrategy,
    /// Approximate memory budget of the **sealed** snapshot's
    /// completed-join cache in bytes; least-recently-used completions are
    /// evicted beyond it (`0` = unbounded). Sized from
    /// [`CompletionOutput::approx_bytes`]. The build facade's own cache is
    /// always unbounded: its synthesis seeds follow the caller's query
    /// seed, so evicting would make repeated queries
    /// eviction-order-dependent — only sealed snapshots (whose synthesis
    /// seeds are path-derived, hence resynthesis-stable) can evict safely.
    pub cache_budget_bytes: usize,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            completer: CompleterConfig::default(),
            max_path_len: 5,
            max_candidates: 3,
            strategy: SelectionStrategy::default(),
            cache_budget_bytes: 1 << 30,
        }
    }
}

/// Summary of one trained completion model.
#[derive(Clone, Debug)]
pub struct ModelSummary {
    pub target: String,
    pub path: String,
    pub ssar: bool,
    pub val_loss: f32,
    pub target_val_loss: f32,
    pub seconds: f64,
    pub parameters: usize,
}

/// Output of [`ReStore::train`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub models: Vec<ModelSummary>,
    /// Candidate scores per incomplete table (for Fig. 10-style analysis).
    pub candidates: HashMap<String, Vec<CandidateScore>>,
}

/// The ReStore build phase: an incomplete database plus trained completion
/// models, ready to answer aggregate queries as if the data were complete.
///
/// Serving methods (`execute`, `completed_table`, `complete_join`,
/// `confidence`) train missing candidate models on demand and therefore
/// take `&mut self`; [`ReStore::seal`] produces the immutable, shareable
/// [`Snapshot`] for concurrent serving.
pub struct ReStore {
    inner: Snapshot,
}

impl ReStore {
    pub fn new(db: Database, config: RestoreConfig) -> Self {
        // Unbounded on purpose — see `RestoreConfig::cache_budget_bytes`.
        let cache = JoinCache::new();
        Self {
            inner: Snapshot {
                db: Arc::new(db),
                annotation: SchemaAnnotation::new(),
                config,
                models: HashMap::new(),
                selected: HashMap::new(),
                forced: HashMap::new(),
                suspected: Vec::new(),
                cache,
                base_seed: None,
            },
        }
    }

    pub fn db(&self) -> &Database {
        &self.inner.db
    }

    pub fn annotation(&self) -> &SchemaAnnotation {
        &self.inner.annotation
    }

    /// Annotates a table as incomplete (§2.2, step 1).
    pub fn mark_incomplete(&mut self, table: impl Into<String>) {
        self.inner.annotation.mark_incomplete(table);
        self.inner.cache.invalidate();
    }

    /// Registers a suspected bias hint used by
    /// [`SelectionStrategy::SuspectedBiasRanking`].
    pub fn suspect_bias(&mut self, bias: SuspectedBias) {
        self.inner.suspected.push(bias);
    }

    /// Cache statistics `(hits, misses)` (§4.5 instrumentation).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache_stats()
    }

    /// Full cache counters including single-flight waits and evictions.
    pub fn full_cache_stats(&self) -> CacheStats {
        self.inner.full_cache_stats()
    }

    /// All completed joins currently cached (diagnostics).
    pub fn cached_completions(&self) -> Vec<(Vec<String>, Arc<CompletionOutput>)> {
        self.inner.cached_completions()
    }

    /// All models trained so far (diagnostics).
    pub fn trained_models(&self) -> Vec<Arc<CompletionModel>> {
        self.inner.trained_models()
    }

    /// Seals the build into an immutable [`Snapshot`] for concurrent
    /// serving: models, selected paths and annotation are carried over;
    /// synthesis seeds derive from `serve_seed` so results are a pure
    /// function of `(snapshot, query, seed)` no matter how many threads
    /// execute. Chains the build phase completed (e.g. via
    /// [`ReStore::precompute_pairs`]) are **re-synthesized** under the
    /// serve-derived seed rather than carried verbatim — build-time
    /// entries used legacy query-derived seeds, and carrying them would
    /// let eviction state leak into sealed results. The facade remains
    /// usable — further training affects only future seals.
    pub fn seal(&self, serve_seed: u64) -> Snapshot {
        let snapshot = Snapshot {
            db: Arc::clone(&self.inner.db),
            annotation: self.inner.annotation.clone(),
            config: self.inner.config.clone(),
            models: self.inner.models.clone(),
            selected: self.inner.selected.clone(),
            forced: self.inner.forced.clone(),
            suspected: self.inner.suspected.clone(),
            cache: JoinCache::with_budget(self.inner.config.cache_budget_bytes),
            base_seed: Some(serve_seed),
        };
        for (chain, _) in self.inner.cache.entries() {
            // Seed argument is unused on sealed snapshots; chains whose
            // model was dropped are simply not pre-warmed.
            let _ = snapshot.complete_join(&chain, serve_seed);
        }
        snapshot
    }

    /// Starts a fresh build phase from an existing snapshot (typically one
    /// loaded from disk): database, annotation, config and forced paths
    /// carry over, and every model of `snapshot` is **retrained** under
    /// `train_seed` — this is the background-rebuild primitive that
    /// produces version n+1 while version n keeps serving. Selected paths
    /// are copied, not re-scored; suspected-bias hints carry over (they are
    /// persisted in the snapshot meta) so a re-ranking rebuild sees them.
    pub fn rebuild_from(snapshot: &Snapshot, train_seed: u64) -> CoreResult<Self> {
        let mut rs = Self {
            inner: Snapshot {
                db: Arc::clone(&snapshot.db),
                annotation: snapshot.annotation.clone(),
                config: snapshot.config.clone(),
                models: HashMap::new(),
                selected: HashMap::new(),
                forced: snapshot.forced.clone(),
                suspected: snapshot.suspected.clone(),
                cache: JoinCache::new(),
                base_seed: None,
            },
        };
        let mut keys: Vec<Vec<String>> = snapshot.models.keys().cloned().collect();
        keys.sort();
        for (i, tables) in keys.iter().enumerate() {
            rs.model_for_path(tables, train_seed.wrapping_add(i as u64 * 7919))?;
        }
        rs.inner.selected = snapshot.selected.clone();
        Ok(rs)
    }

    /// Selects completion paths and trains models for every incomplete
    /// table with modeled attributes (link tables without attributes are
    /// completed implicitly inside longer chains).
    pub fn train(&mut self, seed: u64) -> CoreResult<TrainReport> {
        let mut report = TrainReport::default();
        let targets: Vec<String> = self
            .inner
            .annotation
            .incomplete_tables()
            .map(str::to_string)
            .collect();
        for (i, target) in targets.iter().enumerate() {
            let table = self.inner.db.table(target)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            let suspected = self
                .inner
                .suspected
                .iter()
                .find(|s| &s.table == target)
                .cloned();
            let outcome = select_model(
                &self.inner.db,
                &self.inner.annotation,
                target,
                self.inner.config.max_path_len,
                self.inner.config.max_candidates,
                &self.inner.config.strategy,
                suspected.as_ref(),
                &self.inner.config.train,
                seed.wrapping_add(i as u64 * 7919),
            )?;
            let model = Arc::new(outcome.model);
            report.models.push(ModelSummary {
                target: target.clone(),
                path: model.path().describe(),
                ssar: model.is_ssar(),
                val_loss: model.val_loss,
                target_val_loss: model.target_val_loss(),
                seconds: model.train_seconds,
                parameters: model.num_parameters(),
            });
            report.candidates.insert(target.clone(), outcome.candidates);
            self.inner
                .selected
                .insert(target.clone(), model.path().tables().to_vec());
            self.inner
                .models
                .insert(model.path().tables().to_vec(), model);
        }
        Ok(report)
    }

    /// Returns (training on demand) the model for an exact path.
    pub fn model_for_path(
        &mut self,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<Arc<CompletionModel>> {
        if let Some(m) = self.inner.models.get(tables) {
            return Ok(Arc::clone(m));
        }
        let path = CompletionPath::from_tables(&self.inner.db, tables)?;
        let model = Arc::new(CompletionModel::train(
            &self.inner.db,
            &self.inner.annotation,
            path,
            &self.inner.config.train,
            seed,
        )?);
        self.inner
            .models
            .insert(tables.to_vec(), Arc::clone(&model));
        Ok(model)
    }

    /// The model selected for an incomplete table, if trained.
    pub fn selected_model(&self, table: &str) -> Option<Arc<CompletionModel>> {
        self.inner.selected_model(table)
    }

    /// Forces the completion path used for `table` (training the model on
    /// demand) — used when the user knows the best evidence, and by the
    /// evaluation's "optimal selection" mode (§7.2 reports metrics under
    /// optimal model and path selection).
    pub fn set_selected_path(
        &mut self,
        table: &str,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<()> {
        let model = self.model_for_path(tables, seed)?;
        if model.path().target() != table {
            return Err(CoreError::Invalid(format!(
                "path {} does not end at {table}",
                model.path().describe()
            )));
        }
        self.inner
            .selected
            .insert(table.to_string(), tables.to_vec());
        self.inner.forced.insert(table.to_string(), tables.to_vec());
        Ok(())
    }

    /// Candidate completion paths for an incomplete table.
    pub fn candidate_paths(&self, table: &str) -> Vec<CompletionPath> {
        self.inner.candidate_paths(table)
    }

    /// §4.5 offline completion: without workload knowledge, pre-completes
    /// every joinable (complete evidence, incomplete target) pair so that
    /// any single-table or two-table query is answerable without
    /// generating data at query time. Returns the number of cached joins.
    pub fn precompute_pairs(&mut self, seed: u64) -> CoreResult<usize> {
        let incomplete: Vec<String> = self
            .inner
            .annotation
            .incomplete_tables()
            .map(str::to_string)
            .collect();
        let mut cached = 0;
        for target in incomplete {
            let table = self.inner.db.table(&target)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            for step in self.inner.db.neighbors(&target) {
                // The evidence side is the FK neighbor; it must be complete.
                let other = step.to_table().to_string();
                if self.inner.annotation.is_incomplete(&other) {
                    continue;
                }
                let chain = vec![other, target.clone()];
                if self.complete_join(&chain, seed).is_ok() {
                    cached += 1;
                }
            }
        }
        Ok(cached)
    }

    /// Completes the join over an ordered table chain (Algorithm 1) with
    /// §4.5 caching, training the path's model on demand.
    pub fn complete_join(
        &mut self,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<Arc<CompletionOutput>> {
        self.model_for_path(tables, seed)?;
        self.inner.complete_join(tables, seed)
    }

    /// Trains (on demand) the models for every candidate execution chain
    /// covering `query_tables`, so the chains are servable from `&self` —
    /// this is what [`ReStore::execute`] runs before delegating to the
    /// serving logic, and what a server calls per expected query shape
    /// before [`ReStore::seal`]. Individual candidates that fail to train
    /// are skipped (the serving-side selection scores the survivors);
    /// returns the last training error for diagnostics.
    pub fn ensure_query_models(
        &mut self,
        query_tables: &[String],
        seed: u64,
    ) -> CoreResult<Option<CoreError>> {
        if !query_tables
            .iter()
            .any(|t| self.inner.annotation.is_incomplete(t))
        {
            // Nothing to complete — nothing to train.
            return Ok(None);
        }
        let (chains, mut last_err) = self.inner.candidate_chains(query_tables)?;
        for chain in chains {
            if let Err(e) = self.model_for_path(&chain, seed) {
                last_err = Some(e);
            }
        }
        Ok(last_err)
    }

    /// Executes a query over the incomplete data as-is (the baseline the
    /// paper compares against).
    pub fn execute_without_completion(&self, query: &Query) -> CoreResult<QueryResult> {
        self.inner.execute_without_completion(query)
    }

    /// Executes a query with data completion: the ReStore answer.
    pub fn execute(&mut self, query: &Query, seed: u64) -> CoreResult<QueryResult> {
        let needs_completion = query
            .tables
            .iter()
            .any(|t| self.inner.annotation.is_incomplete(t));
        if !needs_completion {
            return self.execute_without_completion(query);
        }
        let train_err = self.ensure_query_models(&query.tables, seed)?;
        recover(self.inner.execute(query, seed), train_err)
    }

    /// Completes a single incomplete table and returns it in the table's
    /// own schema — see [`Snapshot::completed_table`].
    pub fn completed_table(&mut self, table: &str, seed: u64) -> CoreResult<Table> {
        self.completed_table_focused(table, &[], seed)
    }

    /// [`ReStore::completed_table`] with query-aware path selection (§5).
    pub fn completed_table_focused(
        &mut self,
        table: &str,
        focus: &[String],
        seed: u64,
    ) -> CoreResult<Table> {
        let tname = table.to_string();
        let train_err = self.ensure_query_models(std::slice::from_ref(&tname), seed)?;
        recover(
            self.inner.completed_table_focused(table, focus, seed),
            train_err,
        )
    }

    /// §6 confidence interval for an aggregate over the completed join of
    /// `query_tables`.
    pub fn confidence(
        &mut self,
        query_tables: &[String],
        query: &ConfidenceQuery,
        level: f64,
        seed: u64,
    ) -> CoreResult<ConfidenceInterval> {
        let train_err = self.ensure_query_models(query_tables, seed)?;
        recover(
            self.inner.confidence(query_tables, query, level, seed),
            train_err,
        )
    }
}

/// Surfaces the build-time training error when serving failed only because
/// a model is missing — "training failed because X" beats "no model".
fn recover<T>(result: CoreResult<T>, train_err: Option<CoreError>) -> CoreResult<T> {
    match (result, train_err) {
        (Err(CoreError::NoModel(_)), Some(e)) => Err(e),
        (r, _) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::Agg;

    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};

    fn restore_on_synthetic(seed: u64) -> (restore_data::Scenario, ReStore) {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability: 0.95,
                n_parent: 200,
                ..Default::default()
            },
            seed,
        );
        let mut rcfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.6);
        rcfg.seed = seed;
        let sc = apply_removal(&db, &rcfg);
        let mut cfg = RestoreConfig::default();
        cfg.train.epochs = 10;
        cfg.train.hidden = vec![32, 32];
        cfg.max_candidates = 1;
        let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
        rs.mark_incomplete("tb");
        (sc, rs)
    }

    #[test]
    fn train_reports_models() {
        let (_, mut rs) = restore_on_synthetic(51);
        let report = rs.train(51).unwrap();
        assert_eq!(report.models.len(), 1);
        let m = &report.models[0];
        assert_eq!(m.target, "tb");
        assert!(m.path.contains("ta"));
        assert!(m.seconds > 0.0);
        assert!(m.parameters > 100);
        assert!(rs.selected_model("tb").is_some());
    }

    #[test]
    fn completed_count_beats_incomplete_count() {
        let (sc, mut rs) = restore_on_synthetic(52);
        rs.train(52).unwrap();
        let q = Query::new(["tb"]).aggregate(Agg::CountStar);
        let truth = restore_db::execute(&sc.complete, &q)
            .unwrap()
            .scalar()
            .unwrap();
        let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
        let completed = rs.execute(&q, 52).unwrap().scalar().unwrap();
        assert!(
            (completed - truth).abs() < (incomplete - truth).abs(),
            "completion did not improve COUNT: truth {truth}, incomplete {incomplete}, completed {completed}"
        );
    }

    #[test]
    fn complete_queries_bypass_completion() {
        let (sc, mut rs) = restore_on_synthetic(53);
        let q = Query::new(["ta"]).aggregate(Agg::CountStar);
        let r = rs.execute(&q, 53).unwrap();
        let truth = restore_db::execute(&sc.complete, &q).unwrap();
        assert_eq!(r.scalar(), truth.scalar());
    }

    #[test]
    fn join_cache_is_reused() {
        let (_, mut rs) = restore_on_synthetic(54);
        rs.train(54).unwrap();
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        let a = rs.execute(&q, 54).unwrap().scalar().unwrap();
        let (h0, _) = rs.cache_stats();
        let b = rs.execute(&q, 54).unwrap().scalar().unwrap();
        let (h1, _) = rs.cache_stats();
        assert_eq!(a, b, "cached completion must give identical answers");
        assert!(h1 > h0, "second query must hit the cache");
    }

    #[test]
    fn precompute_pairs_fills_the_cache() {
        let (_, mut rs) = restore_on_synthetic(56);
        let cached = rs.precompute_pairs(56).unwrap();
        assert_eq!(cached, 1, "ta→tb is the only (complete, incomplete) pair");
        // The subsequent query hits the cache instead of re-completing.
        let (h0, _) = rs.cache_stats();
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        rs.execute(&q, 56).unwrap();
        let (h1, _) = rs.cache_stats();
        assert!(h1 > h0, "query after precompute must hit the cache");
    }

    #[test]
    fn group_by_query_on_completed_join() {
        let (sc, mut rs) = restore_on_synthetic(55);
        rs.train(55).unwrap();
        let q = Query::new(["ta", "tb"])
            .group_by(["b"])
            .aggregate(Agg::CountStar);
        let truth = restore_db::execute(&sc.complete, &q).unwrap().groups();
        let incomplete = rs.execute_without_completion(&q).unwrap().groups();
        let completed = rs.execute(&q, 55).unwrap().groups();
        // Mean absolute relative error over true groups.
        let err = |m: &std::collections::BTreeMap<Vec<String>, Vec<f64>>| {
            let mut tot = 0.0;
            for (k, v) in &truth {
                let got = m.get(k).map(|x| x[0]).unwrap_or(0.0);
                tot += (got - v[0]).abs() / v[0].max(1.0);
            }
            tot / truth.len() as f64
        };
        assert!(
            err(&completed) < err(&incomplete),
            "group-by error not improved: completed {} vs incomplete {}",
            err(&completed),
            err(&incomplete)
        );
    }

    #[test]
    fn sealed_snapshot_serves_like_the_facade() {
        let (_, mut rs) = restore_on_synthetic(57);
        rs.train(57).unwrap();
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        rs.ensure_query_models(&q.tables, 57).unwrap();
        let snap = Arc::new(rs.seal(57));
        let a = snap.execute(&q, 57).unwrap().scalar().unwrap();
        let b = snap.execute(&q, 57).unwrap().scalar().unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "snapshot serving is deterministic"
        );
        // The snapshot answers from frozen models only.
        let unknown = Query::new(["tb"]).aggregate(Agg::CountStar);
        assert!(snap.execute(&unknown, 57).is_ok());
    }

    #[test]
    fn sealed_snapshot_rejects_untrained_paths() {
        let (_, rs) = restore_on_synthetic(58);
        // Sealed before training: no models at all.
        let snap = rs.seal(58);
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        assert!(matches!(
            snap.execute(&q, 58),
            Err(CoreError::NoModel(_) | CoreError::NoPath(_))
        ));
    }
}
