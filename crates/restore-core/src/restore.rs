//! The [`ReStore`] facade: annotate → train → complete → query (Fig. 1).
//!
//! Queries over incomplete tables are answered by (1) building an
//! *execution chain* — the selected completion path of the incomplete
//! table, extended by the remaining query tables, (2) running Algorithm 1
//! over the chain, (3) projecting the completed join onto the query tables
//! (with the §4.4 reweighting when the chain contains additional evidence
//! tables), and (4) executing the filter/aggregate tail with normal
//! operators.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore_db::{execute_on_join, Database, Query, QueryResult, Table, Value};

use crate::annotation::{modeled_columns, SchemaAnnotation};
use crate::cache::JoinCache;
use crate::completion::{Completer, CompleterConfig, CompletionOutput};
use crate::confidence::{confidence_interval, ConfidenceInterval, ConfidenceQuery};
use crate::error::{CoreError, CoreResult};
use crate::model::{CompletionModel, TrainConfig};
use crate::paths::CompletionPath;
use crate::selection::{select_model, CandidateScore, SelectionStrategy, SuspectedBias};

/// Configuration of the ReStore facade.
#[derive(Clone, Debug)]
pub struct RestoreConfig {
    pub train: TrainConfig,
    pub completer: CompleterConfig,
    /// Maximum completion-path length (tables); the movie setups need 5.
    pub max_path_len: usize,
    /// Maximum candidate paths trained during selection.
    pub max_candidates: usize,
    pub strategy: SelectionStrategy,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            completer: CompleterConfig::default(),
            max_path_len: 5,
            max_candidates: 3,
            strategy: SelectionStrategy::default(),
        }
    }
}

/// Summary of one trained completion model.
#[derive(Clone, Debug)]
pub struct ModelSummary {
    pub target: String,
    pub path: String,
    pub ssar: bool,
    pub val_loss: f32,
    pub target_val_loss: f32,
    pub seconds: f64,
    pub parameters: usize,
}

/// Output of [`ReStore::train`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub models: Vec<ModelSummary>,
    /// Candidate scores per incomplete table (for Fig. 10-style analysis).
    pub candidates: HashMap<String, Vec<CandidateScore>>,
}

/// The ReStore system: an incomplete database plus trained completion
/// models, ready to answer aggregate queries as if the data were complete.
pub struct ReStore {
    db: Database,
    annotation: SchemaAnnotation,
    config: RestoreConfig,
    suspected: Vec<SuspectedBias>,
    models: HashMap<Vec<String>, Arc<CompletionModel>>,
    selected: HashMap<String, Vec<String>>,
    /// Paths explicitly forced via [`ReStore::set_selected_path`].
    forced: HashMap<String, Vec<String>>,
    cache: JoinCache,
}

impl ReStore {
    pub fn new(db: Database, config: RestoreConfig) -> Self {
        Self {
            db,
            annotation: SchemaAnnotation::new(),
            config,
            suspected: Vec::new(),
            models: HashMap::new(),
            selected: HashMap::new(),
            forced: HashMap::new(),
            cache: JoinCache::new(),
        }
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn annotation(&self) -> &SchemaAnnotation {
        &self.annotation
    }

    /// Annotates a table as incomplete (§2.2, step 1).
    pub fn mark_incomplete(&mut self, table: impl Into<String>) {
        self.annotation.mark_incomplete(table);
        self.cache.invalidate();
    }

    /// Registers a suspected bias hint used by
    /// [`SelectionStrategy::SuspectedBiasRanking`].
    pub fn suspect_bias(&mut self, bias: SuspectedBias) {
        self.suspected.push(bias);
    }

    /// Cache statistics `(hits, misses)` (§4.5 instrumentation).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// All completed joins currently cached (diagnostics).
    pub fn cached_completions(&self) -> Vec<(Vec<String>, Arc<CompletionOutput>)> {
        self.cache.entries()
    }

    /// All models trained so far (diagnostics).
    pub fn trained_models(&self) -> Vec<Arc<CompletionModel>> {
        self.models.values().cloned().collect()
    }

    /// Selects completion paths and trains models for every incomplete
    /// table with modeled attributes (link tables without attributes are
    /// completed implicitly inside longer chains).
    pub fn train(&mut self, seed: u64) -> CoreResult<TrainReport> {
        let mut report = TrainReport::default();
        let targets: Vec<String> = self
            .annotation
            .incomplete_tables()
            .map(str::to_string)
            .collect();
        for (i, target) in targets.iter().enumerate() {
            let table = self.db.table(target)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            let suspected = self.suspected.iter().find(|s| &s.table == target).cloned();
            let outcome = select_model(
                &self.db,
                &self.annotation,
                target,
                self.config.max_path_len,
                self.config.max_candidates,
                &self.config.strategy,
                suspected.as_ref(),
                &self.config.train,
                seed.wrapping_add(i as u64 * 7919),
            )?;
            let model = Arc::new(outcome.model);
            report.models.push(ModelSummary {
                target: target.clone(),
                path: model.path().describe(),
                ssar: model.is_ssar(),
                val_loss: model.val_loss,
                target_val_loss: model.target_val_loss(),
                seconds: model.train_seconds,
                parameters: model.num_parameters(),
            });
            report.candidates.insert(target.clone(), outcome.candidates);
            self.selected
                .insert(target.clone(), model.path().tables().to_vec());
            self.models.insert(model.path().tables().to_vec(), model);
        }
        Ok(report)
    }

    /// Returns (training on demand) the model for an exact path.
    pub fn model_for_path(
        &mut self,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<Arc<CompletionModel>> {
        if let Some(m) = self.models.get(tables) {
            return Ok(Arc::clone(m));
        }
        let path = CompletionPath::from_tables(&self.db, tables)?;
        let model = Arc::new(CompletionModel::train(
            &self.db,
            &self.annotation,
            path,
            &self.config.train,
            seed,
        )?);
        self.models.insert(tables.to_vec(), Arc::clone(&model));
        Ok(model)
    }

    /// The model selected for an incomplete table, if trained.
    pub fn selected_model(&self, table: &str) -> Option<Arc<CompletionModel>> {
        let path = self.selected.get(table)?;
        self.models.get(path).cloned()
    }

    /// Forces the completion path used for `table` (training the model on
    /// demand) — used when the user knows the best evidence, and by the
    /// evaluation's "optimal selection" mode (§7.2 reports metrics under
    /// optimal model and path selection).
    pub fn set_selected_path(
        &mut self,
        table: &str,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<()> {
        let model = self.model_for_path(tables, seed)?;
        if model.path().target() != table {
            return Err(CoreError::Invalid(format!(
                "path {} does not end at {table}",
                model.path().describe()
            )));
        }
        self.selected.insert(table.to_string(), tables.to_vec());
        self.forced.insert(table.to_string(), tables.to_vec());
        Ok(())
    }

    /// Candidate completion paths for an incomplete table.
    pub fn candidate_paths(&self, table: &str) -> Vec<CompletionPath> {
        crate::paths::enumerate_paths(&self.db, &self.annotation, table, self.config.max_path_len)
    }

    /// §4.5 offline completion: without workload knowledge, pre-completes
    /// every joinable (complete evidence, incomplete target) pair so that
    /// any single-table or two-table query is answerable without
    /// generating data at query time. Returns the number of cached joins.
    pub fn precompute_pairs(&mut self, seed: u64) -> CoreResult<usize> {
        let incomplete: Vec<String> = self
            .annotation
            .incomplete_tables()
            .map(str::to_string)
            .collect();
        let mut cached = 0;
        for target in incomplete {
            let table = self.db.table(&target)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            for step in self.db.neighbors(&target) {
                // The evidence side is the FK neighbor; it must be complete.
                let other = step.to_table().to_string();
                if self.annotation.is_incomplete(&other) {
                    continue;
                }
                let chain = vec![other, target.clone()];
                if self.complete_join(&chain, seed).is_ok() {
                    cached += 1;
                }
            }
        }
        Ok(cached)
    }

    /// Completes the join over an ordered table chain (Algorithm 1) with
    /// §4.5 caching.
    pub fn complete_join(
        &mut self,
        tables: &[String],
        seed: u64,
    ) -> CoreResult<Arc<CompletionOutput>> {
        if let Some(cached) = self.cache.get(tables) {
            return Ok(cached);
        }
        let model = self.model_for_path(tables, seed)?;
        let completer =
            Completer::new(&self.db, &self.annotation).with_config(self.config.completer.clone());
        let out = Arc::new(completer.complete(&model, seed ^ 0xc0de)?);
        self.cache.put(tables.to_vec(), Arc::clone(&out));
        Ok(out)
    }

    /// Executes a query over the incomplete data as-is (the baseline the
    /// paper compares against).
    pub fn execute_without_completion(&self, query: &Query) -> CoreResult<QueryResult> {
        restore_db::execute(&self.db, query).map_err(CoreError::from)
    }

    /// Executes a query with data completion: the ReStore answer.
    pub fn execute(&mut self, query: &Query, seed: u64) -> CoreResult<QueryResult> {
        let needs_completion = query
            .tables
            .iter()
            .any(|t| self.annotation.is_incomplete(t));
        if !needs_completion {
            return self.execute_without_completion(query);
        }
        let focus = query_focus_columns(query);
        // Single-table queries get the completed relation directly (all
        // real rows plus reweighted synthesized ones).
        if query.tables.len() == 1 {
            let completed = self.completed_table_focused(&query.tables[0], &focus, seed)?;
            return execute_on_join(&completed, query).map_err(CoreError::from);
        }
        let chain = self.execution_chain(&query.tables, &focus, seed)?;
        let out = self.complete_join(&chain, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let projected = self.project_completed(&out, &query.tables, &mut rng)?;
        execute_on_join(&projected, query).map_err(CoreError::from)
    }

    /// Completes a single incomplete table and returns it in the table's
    /// own schema: all real rows survive as-is, synthesized rows are taken
    /// from the completed chain join and thinned by the evidence
    /// multiplicity (the §4.4 reweighting — an n:1 evidence step visits a
    /// target tuple once per evidence row).
    pub fn completed_table(&mut self, table: &str, seed: u64) -> CoreResult<Table> {
        self.completed_table_focused(table, &[], seed)
    }

    /// [`ReStore::completed_table`] with query-aware path selection: the
    /// candidate whose held-out NLL on the `focus` attributes is lowest
    /// wins (§5 — the significance of evidence depends on the query).
    pub fn completed_table_focused(
        &mut self,
        table: &str,
        focus: &[String],
        seed: u64,
    ) -> CoreResult<Table> {
        let tname = table.to_string();
        let chain = self.execution_chain(std::slice::from_ref(&tname), focus, seed)?;
        let out = self.complete_join(&chain, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517e);

        let base = self.db.table(table)?;
        let mut result = base.clone();
        let join = &out.join;
        let syn = out
            .synthesized_for(table)
            .ok_or_else(|| CoreError::Invalid(format!("{table} not on completed chain")))?;

        // Evidence multiplicity from real (non-synthesized) rows: how often
        // does one real target tuple appear in the chain join?
        let multiplicity = match join.resolve(&format!("{table}.id")) {
            Ok(id_idx) => {
                let mut distinct = std::collections::HashSet::new();
                let mut real = 0usize;
                for (r, &s) in syn.iter().enumerate() {
                    let v = join.value(r, id_idx);
                    if !s && !v.is_null() {
                        real += 1;
                        distinct.insert(v.to_string());
                    }
                }
                (real as f64 / distinct.len().max(1) as f64).max(1.0)
            }
            Err(_) => 1.0,
        };
        let p_keep = 1.0 / multiplicity;

        for (r, &s) in syn.iter().enumerate() {
            if !s || rand::Rng::random::<f64>(&mut rng) >= p_keep {
                continue;
            }
            let row: Vec<Value> = base
                .fields()
                .iter()
                .map(|f| {
                    let bare = f.name.rsplit('.').next().unwrap_or(&f.name);
                    match join.resolve(&format!("{table}.{bare}")) {
                        Ok(i) => crate::completion::coerce(&join.value(r, i), f.dtype),
                        Err(_) => Value::Null,
                    }
                })
                .collect();
            result.push_row(&row)?;
        }
        Ok(result)
    }

    /// §6 confidence interval for an aggregate over the completed join of
    /// `query_tables`.
    pub fn confidence(
        &mut self,
        query_tables: &[String],
        query: &ConfidenceQuery,
        level: f64,
        seed: u64,
    ) -> CoreResult<ConfidenceInterval> {
        let focus = match query {
            ConfidenceQuery::CountFraction { column, .. }
            | ConfidenceQuery::Avg { column, .. }
            | ConfidenceQuery::Sum { column, .. } => vec![column.clone()],
        };
        let chain = self.execution_chain(query_tables, &focus, seed)?;
        let out = self.complete_join(&chain, seed)?;
        let model = self.model_for_path(&chain, seed)?;
        confidence_interval(&model, &self.db, &out, query, level)
    }

    /// Builds the execution chain for a set of query tables: a candidate
    /// completion path of an incomplete query table, extended with the
    /// remaining query tables along FK edges. Among all viable chains the
    /// one whose model best predicts the `focus` attributes (held-out NLL)
    /// wins — the significance of evidence depends on the query (§5).
    fn execution_chain(
        &mut self,
        query_tables: &[String],
        focus: &[String],
        seed: u64,
    ) -> CoreResult<Vec<String>> {
        let incomplete: Vec<String> = query_tables
            .iter()
            .filter(|t| self.annotation.is_incomplete(t))
            .cloned()
            .collect();
        if incomplete.is_empty() {
            return Err(CoreError::Invalid("no incomplete table in query".into()));
        }
        let mut best: Option<(f32, Vec<String>)> = None;
        let mut last_err: Option<CoreError> = None;
        for anchor in &incomplete {
            let table = self.db.table(anchor)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            // A forced path short-circuits candidate enumeration.
            let candidates: Vec<Vec<String>> = match self.forced.get(anchor) {
                Some(forced) => vec![forced.clone()],
                None => self
                    .candidate_paths(anchor)
                    .into_iter()
                    .take(self.config.max_candidates.max(1))
                    .map(|p| p.tables().to_vec())
                    .collect(),
            };
            for mut chain in candidates {
                let mut remaining: Vec<String> = query_tables
                    .iter()
                    .filter(|t| !chain.contains(t))
                    .cloned()
                    .collect();
                // Greedily append tables connected to the chain's end.
                while !remaining.is_empty() {
                    let end = chain.last().unwrap().clone();
                    match remaining
                        .iter()
                        .position(|t| self.db.edge_between(&end, t).is_some())
                    {
                        Some(i) => chain.push(remaining.remove(i)),
                        None => break,
                    }
                }
                if !remaining.is_empty() {
                    last_err = Some(CoreError::Invalid(format!(
                        "cannot extend chain {chain:?} with {remaining:?}"
                    )));
                    continue;
                }
                match self.model_for_path(&chain, seed) {
                    Ok(model) => {
                        // Every chain table outside the query adds evidence
                        // multiplicity (and reweighting noise, §4.4), so
                        // near-ties go to the leaner chain.
                        let extras = chain.iter().filter(|t| !query_tables.contains(t)).count();
                        // §4.4 reweighting for extra evidence tables is far
                        // noisier than the completion itself, so covering
                        // chains win unless their evidence is much weaker.
                        let score = focus_loss(&model, focus, &self.annotation, query_tables)
                            + 0.3 * extras as f32;
                        if best.as_ref().is_none_or(|(b, _)| score < *b) {
                            best = Some((score, chain));
                        }
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        best.map(|(_, c)| c).ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                CoreError::NoPath(format!("no execution chain covers {query_tables:?}"))
            })
        })
    }

    /// Projects a completed chain join onto the query tables, correcting
    /// row multiplicity introduced by additional evidence tables (§4.4).
    fn project_completed(
        &self,
        out: &CompletionOutput,
        query_tables: &[String],
        rng: &mut StdRng,
    ) -> CoreResult<Table> {
        let chain = &out.tables;
        let extras: Vec<&String> = chain.iter().filter(|t| !query_tables.contains(t)).collect();
        if extras.is_empty() {
            return Ok(out.join.clone());
        }
        // Keep only the query tables' columns — evidence columns would
        // shadow query attributes (e.g. actor.gender vs director.gender).
        let query_cols: Vec<String> = out
            .join
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .filter(|name| {
                name.split_once('.')
                    .is_some_and(|(t, _)| query_tables.iter().any(|q| q == t))
            })
            .collect();
        // The extras form the evidence prefix; the pivot is the first chain
        // table that belongs to the query.
        let pivot_idx = chain
            .iter()
            .position(|t| query_tables.contains(t))
            .ok_or_else(|| CoreError::Invalid("query tables not on chain".into()))?;
        let join = &out.join;
        let n = join.n_rows();

        // Row keys: id columns of the pivot and all downstream query tables.
        let key_cols: Vec<usize> = chain[pivot_idx..]
            .iter()
            .filter(|t| query_tables.contains(t))
            .filter_map(|t| join.resolve(&format!("{t}.id")).ok())
            .collect();
        if key_cols.is_empty() {
            // No identity available; project columns and return as-is.
            let refs: Vec<&str> = query_cols.iter().map(String::as_str).collect();
            return join.project(&refs).map_err(CoreError::from);
        }

        // A row is synthetic when any *query-table* part of it was
        // synthesized — euclidean replacement may have given it real keys
        // (Fig. 3), so null-ness of the key is not the right signal.
        let relevant: Vec<usize> = (0..chain.len())
            .filter(|&i| query_tables.contains(&chain[i]))
            .collect();
        let is_syn = |r: usize| relevant.iter().any(|&i| out.syn[i][r]);

        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        let mut real_rows = 0usize;
        let mut keep = vec![false; n];
        let mut syn_rows: Vec<usize> = Vec::new();
        for (r, keep_slot) in keep.iter_mut().enumerate() {
            if is_syn(r) {
                syn_rows.push(r);
                continue;
            }
            let key: Vec<Value> = key_cols.iter().map(|&c| join.value(r, c)).collect();
            if key.iter().any(Value::is_null) {
                // Real parts but no identity — keep conservatively.
                *keep_slot = true;
                continue;
            }
            real_rows += 1;
            if seen.insert(key) {
                *keep_slot = true;
            }
        }
        // Multiplicity of real keys → thinning factor for synthesized rows.
        let distinct = seen.len().max(1);
        let multiplicity = (real_rows as f64 / distinct as f64).max(1.0);
        let p_keep = 1.0 / multiplicity;
        for &r in &syn_rows {
            if rand::Rng::random::<f64>(rng) < p_keep {
                keep[r] = true;
            }
        }
        let refs: Vec<&str> = query_cols.iter().map(String::as_str).collect();
        join.filter(&keep).project(&refs).map_err(CoreError::from)
    }
}

/// Bare (unqualified) column names a query reads: filter references,
/// group-by columns and aggregate inputs.
pub fn query_focus_columns(query: &Query) -> Vec<String> {
    let mut cols = Vec::new();
    if let Some(f) = &query.filter {
        f.collect_columns(&mut cols);
    }
    cols.extend(query.group_by.iter().cloned());
    for agg in &query.aggregates {
        if let Some(c) = agg.input_column() {
            cols.push(c.to_string());
        }
    }
    let mut bare: Vec<String> = cols
        .into_iter()
        .map(|c| c.rsplit('.').next().unwrap_or(&c).to_string())
        .collect();
    bare.sort();
    bare.dedup();
    bare
}

/// Mean held-out NLL of a model on the attributes the query needs to be
/// synthesized: attributes of *incomplete query tables*, preferring the
/// focus columns. Restricting to query tables keeps the score comparable
/// across chains with different evidence prefixes.
fn focus_loss(
    model: &CompletionModel,
    focus: &[String],
    annotation: &SchemaAnnotation,
    query_tables: &[String],
) -> f32 {
    let mut focus_vals = Vec::new();
    let mut all_vals = Vec::new();
    for (i, attr) in model.attrs().iter().enumerate() {
        if let crate::model::AttrKind::Column { table, column } = &attr.kind {
            if annotation.is_incomplete(table) && query_tables.iter().any(|q| q == table) {
                all_vals.push(model.val_per_attr[i]);
                if focus.iter().any(|f| f == column) {
                    focus_vals.push(model.val_per_attr[i]);
                }
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    if !focus_vals.is_empty() {
        mean(&focus_vals)
    } else if !all_vals.is_empty() {
        mean(&all_vals)
    } else {
        model.target_val_loss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::Agg;

    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};

    fn restore_on_synthetic(seed: u64) -> (restore_data::Scenario, ReStore) {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability: 0.95,
                n_parent: 200,
                ..Default::default()
            },
            seed,
        );
        let mut rcfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.6);
        rcfg.seed = seed;
        let sc = apply_removal(&db, &rcfg);
        let mut cfg = RestoreConfig::default();
        cfg.train.epochs = 10;
        cfg.train.hidden = vec![32, 32];
        cfg.max_candidates = 1;
        let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
        rs.mark_incomplete("tb");
        (sc, rs)
    }

    #[test]
    fn train_reports_models() {
        let (_, mut rs) = restore_on_synthetic(51);
        let report = rs.train(51).unwrap();
        assert_eq!(report.models.len(), 1);
        let m = &report.models[0];
        assert_eq!(m.target, "tb");
        assert!(m.path.contains("ta"));
        assert!(m.seconds > 0.0);
        assert!(m.parameters > 100);
        assert!(rs.selected_model("tb").is_some());
    }

    #[test]
    fn completed_count_beats_incomplete_count() {
        let (sc, mut rs) = restore_on_synthetic(52);
        rs.train(52).unwrap();
        let q = Query::new(["tb"]).aggregate(Agg::CountStar);
        let truth = restore_db::execute(&sc.complete, &q)
            .unwrap()
            .scalar()
            .unwrap();
        let incomplete = rs.execute_without_completion(&q).unwrap().scalar().unwrap();
        let completed = rs.execute(&q, 52).unwrap().scalar().unwrap();
        assert!(
            (completed - truth).abs() < (incomplete - truth).abs(),
            "completion did not improve COUNT: truth {truth}, incomplete {incomplete}, completed {completed}"
        );
    }

    #[test]
    fn complete_queries_bypass_completion() {
        let (sc, mut rs) = restore_on_synthetic(53);
        let q = Query::new(["ta"]).aggregate(Agg::CountStar);
        let r = rs.execute(&q, 53).unwrap();
        let truth = restore_db::execute(&sc.complete, &q).unwrap();
        assert_eq!(r.scalar(), truth.scalar());
    }

    #[test]
    fn join_cache_is_reused() {
        let (_, mut rs) = restore_on_synthetic(54);
        rs.train(54).unwrap();
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        let a = rs.execute(&q, 54).unwrap().scalar().unwrap();
        let (h0, _) = rs.cache_stats();
        let b = rs.execute(&q, 54).unwrap().scalar().unwrap();
        let (h1, _) = rs.cache_stats();
        assert_eq!(a, b, "cached completion must give identical answers");
        assert!(h1 > h0, "second query must hit the cache");
    }

    #[test]
    fn precompute_pairs_fills_the_cache() {
        let (_, mut rs) = restore_on_synthetic(56);
        let cached = rs.precompute_pairs(56).unwrap();
        assert_eq!(cached, 1, "ta→tb is the only (complete, incomplete) pair");
        // The subsequent query hits the cache instead of re-completing.
        let (h0, _) = rs.cache_stats();
        let q = Query::new(["ta", "tb"]).aggregate(Agg::CountStar);
        rs.execute(&q, 56).unwrap();
        let (h1, _) = rs.cache_stats();
        assert!(h1 > h0, "query after precompute must hit the cache");
    }

    #[test]
    fn group_by_query_on_completed_join() {
        let (sc, mut rs) = restore_on_synthetic(55);
        rs.train(55).unwrap();
        let q = Query::new(["ta", "tb"])
            .group_by(["b"])
            .aggregate(Agg::CountStar);
        let truth = restore_db::execute(&sc.complete, &q).unwrap().groups();
        let incomplete = rs.execute_without_completion(&q).unwrap().groups();
        let completed = rs.execute(&q, 55).unwrap().groups();
        // Mean absolute relative error over true groups.
        let err = |m: &std::collections::BTreeMap<Vec<String>, Vec<f64>>| {
            let mut tot = 0.0;
            for (k, v) in &truth {
                let got = m.get(k).map(|x| x[0]).unwrap_or(0.0);
                tot += (got - v[0]).abs() / v[0].max(1.0);
            }
            tot / truth.len() as f64
        };
        assert!(
            err(&completed) < err(&incomplete),
            "group-by error not improved: completed {} vs incomplete {}",
            err(&completed),
            err(&incomplete)
        );
    }
}
