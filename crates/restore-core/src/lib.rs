//! # restore-core — the ReStore system
//!
//! The paper's contribution: schema-structured neural data completion for
//! relational databases.
//!
//! * [`annotation`] — complete/incomplete table annotations (§2.2);
//! * [`encoding`] — categorical/binned attribute token domains;
//! * [`paths`] — completion paths through the FK schema graph;
//! * [`model`] — AR and SSAR completion models (§3.2, §3.3);
//! * [`merge`] — model merging for complex schemata (§3.4);
//! * [`completion`] — the incompleteness join, Algorithm 1 (§4);
//! * [`ann`] — LSH-based approximate nearest neighbors for the euclidean
//!   replacement of Fig. 3;
//! * [`selection`] — model & path selection (§5);
//! * [`confidence`] — completion confidence intervals (§6);
//! * [`cache`] — completed-join reuse (§4.5): single-flight, budgeted;
//! * [`restore`] — the [`ReStore`] build facade tying everything together;
//! * [`snapshot`] — the immutable, concurrent serving [`Snapshot`];
//! * [`registry`] — multi-tenant snapshot registry with atomic hot swap;
//! * [`wire`] — the serializable JSON query surface the HTTP front-end
//!   (`restore-serve`) speaks.

pub mod ann;
pub mod annotation;
pub mod cache;
pub mod completion;
pub mod confidence;
pub mod encoding;
pub mod error;
pub mod merge;
pub mod model;
pub mod paths;
pub mod persist;
pub mod registry;
pub mod restore;
pub mod selection;
pub mod snapshot;
pub mod wire;

pub use ann::AnnIndex;
pub use annotation::{
    is_key_column, is_tf_column, modeled_columns, tf_column_name, SchemaAnnotation,
};
pub use cache::{CacheStats, JoinCache};
pub use completion::{Completer, CompleterConfig, CompletionOutput, ReplacementMode};
pub use confidence::{confidence_interval, ConfidenceInterval, ConfidenceQuery};
pub use encoding::AttrEncoder;
pub use error::{CoreError, CoreResult};
pub use merge::{merge_tasks, CompletionTask, MergedModelSpec};
pub use model::{AttrKind, CompletionModel, ModelAttr, TrainConfig};
pub use paths::{enumerate_paths, CompletionPath};
pub use persist::{PersistError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
pub use registry::{RegistryView, SnapshotRegistry};
pub use restore::{ModelSummary, ReStore, RestoreConfig, TrainReport};
pub use selection::{
    basic_filter, select_model, BiasDirection, CandidateScore, SelectionOutcome, SelectionStrategy,
    SuspectedBias,
};
pub use snapshot::{query_focus_columns, Snapshot};
pub use wire::{ConfidenceSpec, QueryRequest, WireError};
