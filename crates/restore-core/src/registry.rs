//! Multi-tenant snapshot registry with hot swap.
//!
//! A [`SnapshotRegistry`] maps tenant names to sealed [`Snapshot`]s so one
//! serving process can host many databases side by side (a RelBench-style
//! fleet of relational datasets served uniformly). The map itself is
//! immutable and swapped atomically behind one `Arc`:
//!
//! * [`SnapshotRegistry::view`] hands a reader the *entire* registry as a
//!   consistent `Arc<HashMap>` — a request resolves its tenant once against
//!   that view and can never observe a half-applied publish/retire;
//! * [`SnapshotRegistry::publish`] installs v2 of a tenant by building a new
//!   map; requests already serving from v1 keep their `Arc<Snapshot>` and
//!   drain naturally — nothing is interrupted, v1 is freed when the last
//!   reference drops;
//! * [`SnapshotRegistry::retire`] removes a tenant the same way: new
//!   requests get 404-style misses, in-flight ones finish on the old `Arc`.
//!
//! Writers pay a full map clone per mutation; tenant counts are small and
//! publishes rare, while reads (every request) are one `Arc` clone under a
//! briefly held read lock.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::snapshot::Snapshot;

/// The immutable registry generation a request resolves against.
pub type RegistryView = Arc<HashMap<String, Arc<Snapshot>>>;

/// A swappable map of tenant → sealed snapshot. All methods take `&self`;
/// share the registry itself behind an `Arc` across server threads.
#[derive(Default)]
pub struct SnapshotRegistry {
    map: RwLock<RegistryView>,
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> RegistryView {
        Arc::clone(&self.map.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// A consistent snapshot of the whole registry. Resolve every lookup a
    /// request needs against **one** view — that is the torn-free contract.
    pub fn view(&self) -> RegistryView {
        self.read()
    }

    /// The current snapshot for a tenant.
    pub fn get(&self, tenant: &str) -> Option<Arc<Snapshot>> {
        self.read().get(tenant).cloned()
    }

    /// Atomically installs (or replaces) a tenant's snapshot and returns the
    /// one it displaced, which keeps serving any in-flight requests that
    /// hold it until their `Arc` refs drop.
    pub fn publish(
        &self,
        tenant: impl Into<String>,
        snapshot: Arc<Snapshot>,
    ) -> Option<Arc<Snapshot>> {
        let tenant = tenant.into();
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        let mut next: HashMap<String, Arc<Snapshot>> = (**guard).clone();
        let old = next.insert(tenant, snapshot);
        *guard = Arc::new(next);
        old
    }

    /// Atomically removes a tenant; in-flight requests on the returned
    /// snapshot are undisturbed.
    pub fn retire(&self, tenant: &str) -> Option<Arc<Snapshot>> {
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        if !guard.contains_key(tenant) {
            return None;
        }
        let mut next: HashMap<String, Arc<Snapshot>> = (**guard).clone();
        let old = next.remove(tenant);
        *guard = Arc::new(next);
        old
    }

    /// Tenant names, sorted (stable for /healthz listings).
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::{ReStore, RestoreConfig};
    use restore_db::Database;

    fn empty_snapshot(seed: u64) -> Arc<Snapshot> {
        Arc::new(ReStore::new(Database::new(), RestoreConfig::default()).seal(seed))
    }

    #[test]
    fn publish_get_retire_lifecycle() {
        let reg = SnapshotRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("a").is_none());

        let v1 = empty_snapshot(1);
        assert!(reg.publish("a", Arc::clone(&v1)).is_none());
        assert_eq!(reg.len(), 1);
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &v1));

        let v2 = empty_snapshot(2);
        let displaced = reg.publish("a", Arc::clone(&v2)).expect("v1 displaced");
        assert!(Arc::ptr_eq(&displaced, &v1));
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &v2));

        let retired = reg.retire("a").expect("v2 retired");
        assert!(Arc::ptr_eq(&retired, &v2));
        assert!(reg.get("a").is_none());
        assert!(reg.retire("a").is_none(), "retire is idempotent-ish");
    }

    #[test]
    fn views_are_immutable_generations() {
        let reg = SnapshotRegistry::new();
        reg.publish("a", empty_snapshot(1));
        reg.publish("b", empty_snapshot(2));
        let view = reg.view();
        assert_eq!(view.len(), 2);

        // Mutations after the view was taken do not tear it.
        reg.retire("a");
        reg.publish("c", empty_snapshot(3));
        assert_eq!(view.len(), 2, "held view is frozen");
        assert!(view.contains_key("a"));
        assert!(!view.contains_key("c"));
        assert_eq!(reg.tenants(), vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn displaced_snapshot_drains_under_existing_refs() {
        let reg = SnapshotRegistry::new();
        let v1 = empty_snapshot(1);
        reg.publish("a", Arc::clone(&v1));
        let weak = Arc::downgrade(&v1);

        // An in-flight request holds v1 across the swap.
        let in_flight = reg.get("a").unwrap();
        reg.publish("a", empty_snapshot(2));
        drop(v1);
        assert!(weak.upgrade().is_some(), "in-flight ref keeps v1 alive");
        drop(in_flight);
        assert!(weak.upgrade().is_none(), "v1 freed once drained");
    }

    #[test]
    fn concurrent_readers_see_whole_generations() {
        let reg = Arc::new(SnapshotRegistry::new());
        // Invariant: "a" and "b" are always published/retired together, so
        // any consistent view contains both or neither.
        reg.publish("a", empty_snapshot(1));
        reg.publish("b", empty_snapshot(1));
        let writer = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    if i % 2 == 0 {
                        reg.retire("a");
                        reg.retire("b");
                    } else {
                        reg.publish("a", empty_snapshot(i));
                        reg.publish("b", empty_snapshot(i));
                    }
                }
                // Leave both published.
                reg.publish("a", empty_snapshot(7));
                reg.publish("b", empty_snapshot(7));
            })
        };
        // Readers: each view is internally consistent even while the pair
        // flips; a torn read would see exactly one of the two.
        let mut torn = 0usize;
        for _ in 0..500 {
            let view = reg.view();
            let (a, b) = (view.contains_key("a"), view.contains_key("b"));
            // The writer publishes a then b, so a-without-b is a transient
            // *consistent* state; b-without-a is impossible.
            if b && !a {
                torn += 1;
            }
        }
        writer.join().expect("writer");
        assert_eq!(torn, 0, "no view may invert the publish order");
        assert_eq!(reg.tenants(), vec!["a".to_string(), "b".to_string()]);
    }
}
