//! The serving half of the ReStore lifecycle: an immutable, shareable
//! [`Snapshot`] of everything the system learned at build time.
//!
//! After annotate → train → select, nothing mutates — the database, the
//! trained models, and the selected paths are all frozen. [`Snapshot`]
//! captures that frozen state so *every* serving method takes `&self` and
//! is safe to call from any number of threads over one `Arc<Snapshot>`.
//! The only interior mutability is the [`JoinCache`], which is thread-safe
//! and single-flight: concurrent queries needing the same cold completion
//! path block on one synthesis instead of racing duplicates.
//!
//! **Determinism contract.** A query's result is a pure function of
//! `(snapshot, query, seed)` — never of scheduling or of what other
//! threads are executing. Two ingredients make this hold:
//!
//! 1. every per-query random choice (row thinning, projection) draws from
//!    an RNG seeded only by the query seed, and
//! 2. the synthesis seed of a completion path is derived from the
//!    snapshot's fixed serve seed and the path itself — so whichever
//!    thread happens to populate the cache, the cached join is the same.
//!
//! (The legacy [`ReStore`](crate::restore::ReStore) facade instead seeds
//! synthesis from the caller's query seed — serially deterministic, which
//! is all the single-client build phase needs.)

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore_db::{execute_on_join, Database, Query, QueryResult, Table, Value};
use restore_util::derive_seed;

use crate::annotation::{modeled_columns, SchemaAnnotation};
use crate::cache::{CacheStats, JoinCache};
use crate::completion::{Completer, CompletionOutput};
use crate::confidence::{confidence_interval, ConfidenceInterval, ConfidenceQuery};
use crate::error::{CoreError, CoreResult};
use crate::model::CompletionModel;
use crate::paths::CompletionPath;
use crate::restore::RestoreConfig;
use crate::selection::SuspectedBias;

/// Stable fingerprint of an ordered table chain (FNV-1a over the names) —
/// the per-path component of the sealed synthesis seed.
fn path_fingerprint(tables: &[String]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for name in tables {
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab"] and ["a","b"] differ.
        h = (h ^ 0x1f).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An immutable, `Arc`-shareable serving snapshot: incomplete database +
/// trained models + selected paths + annotation, with a thread-safe
/// single-flight completion cache. Every serving method takes `&self`.
pub struct Snapshot {
    pub(crate) db: Arc<Database>,
    pub(crate) annotation: SchemaAnnotation,
    pub(crate) config: RestoreConfig,
    pub(crate) models: HashMap<Vec<String>, Arc<CompletionModel>>,
    pub(crate) selected: HashMap<String, Vec<String>>,
    /// Paths explicitly forced at build time.
    pub(crate) forced: HashMap<String, Vec<String>>,
    /// Suspected-bias hints registered at build time (§5). Frozen into the
    /// snapshot (and persisted) so a rebuild re-ranks candidates under the
    /// same hints instead of silently dropping them.
    pub(crate) suspected: Vec<SuspectedBias>,
    pub(crate) cache: JoinCache,
    /// `Some(serve_seed)` once sealed: synthesis seeds derive from
    /// `(serve_seed, path)`. `None` inside the build facade: synthesis
    /// seeds follow the caller's query seed (legacy behavior).
    pub(crate) base_seed: Option<u64>,
}

impl Snapshot {
    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn annotation(&self) -> &SchemaAnnotation {
        &self.annotation
    }

    pub fn config(&self) -> &RestoreConfig {
        &self.config
    }

    /// The serve seed this snapshot was sealed with, if sealed.
    pub fn serve_seed(&self) -> Option<u64> {
        self.base_seed
    }

    /// Suspected-bias hints frozen into this snapshot at build time.
    pub fn suspected_biases(&self) -> &[SuspectedBias] {
        &self.suspected
    }

    /// Cache statistics `(hits, misses)` (§4.5 instrumentation).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Full cache counters including single-flight waits and evictions.
    pub fn full_cache_stats(&self) -> CacheStats {
        self.cache.full_stats()
    }

    /// All completed joins currently cached (diagnostics).
    pub fn cached_completions(&self) -> Vec<(Vec<String>, Arc<CompletionOutput>)> {
        self.cache.entries()
    }

    /// All models frozen into the snapshot.
    pub fn trained_models(&self) -> Vec<Arc<CompletionModel>> {
        self.models.values().cloned().collect()
    }

    /// The model selected for an incomplete table, if trained.
    pub fn selected_model(&self, table: &str) -> Option<Arc<CompletionModel>> {
        let path = self.selected.get(table)?;
        self.models.get(path).cloned()
    }

    /// The frozen model for an exact path. Serving never trains: a path
    /// nobody trained at build time is a [`CoreError::NoModel`].
    pub fn model_for_path(&self, tables: &[String]) -> CoreResult<Arc<CompletionModel>> {
        self.models.get(tables).cloned().ok_or_else(|| {
            CoreError::NoModel(format!(
                "no trained model for path {tables:?} (train it before sealing the snapshot)"
            ))
        })
    }

    /// Candidate completion paths for an incomplete table.
    pub fn candidate_paths(&self, table: &str) -> Vec<CompletionPath> {
        crate::paths::enumerate_paths(&self.db, &self.annotation, table, self.config.max_path_len)
    }

    /// Executes a query over the incomplete data as-is (the baseline the
    /// paper compares against).
    pub fn execute_without_completion(&self, query: &Query) -> CoreResult<QueryResult> {
        restore_db::execute(&self.db, query).map_err(CoreError::from)
    }

    /// Executes a query with data completion: the ReStore answer.
    pub fn execute(&self, query: &Query, seed: u64) -> CoreResult<QueryResult> {
        let needs_completion = query
            .tables
            .iter()
            .any(|t| self.annotation.is_incomplete(t));
        if !needs_completion {
            return self.execute_without_completion(query);
        }
        let focus = query_focus_columns(query);
        // Single-table queries get the completed relation directly (all
        // real rows plus reweighted synthesized ones).
        if query.tables.len() == 1 {
            let completed = self.completed_table_focused(&query.tables[0], &focus, seed)?;
            return execute_on_join(&completed, query).map_err(CoreError::from);
        }
        let chain = self.execution_chain(&query.tables, &focus)?;
        let out = self.complete_join(&chain, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let projected = self.project_completed(&out, &query.tables, &mut rng)?;
        execute_on_join(&projected, query).map_err(CoreError::from)
    }

    /// Completes the join over an ordered table chain (Algorithm 1) with
    /// §4.5 caching and single-flight deduplication.
    pub fn complete_join(&self, tables: &[String], seed: u64) -> CoreResult<Arc<CompletionOutput>> {
        // Sealed snapshots derive the synthesis seed from (serve seed,
        // path) so the cached join never depends on which query — or which
        // thread — populated the cache; the build facade keeps the legacy
        // query-seeded behavior.
        let synth_seed = match self.base_seed {
            Some(base) => derive_seed(base, path_fingerprint(tables)),
            None => seed,
        };
        self.cache.get_or_compute(tables, || {
            let model = self.model_for_path(tables)?;
            let completer = Completer::new(&self.db, &self.annotation)
                .with_config(self.config.completer.clone());
            Ok(Arc::new(completer.complete(&model, synth_seed ^ 0xc0de)?))
        })
    }

    /// Completes a single incomplete table and returns it in the table's
    /// own schema: all real rows survive as-is, synthesized rows are taken
    /// from the completed chain join and thinned by the evidence
    /// multiplicity (the §4.4 reweighting — an n:1 evidence step visits a
    /// target tuple once per evidence row).
    pub fn completed_table(&self, table: &str, seed: u64) -> CoreResult<Table> {
        self.completed_table_focused(table, &[], seed)
    }

    /// [`Snapshot::completed_table`] with query-aware path selection: the
    /// candidate whose held-out NLL on the `focus` attributes is lowest
    /// wins (§5 — the significance of evidence depends on the query).
    pub fn completed_table_focused(
        &self,
        table: &str,
        focus: &[String],
        seed: u64,
    ) -> CoreResult<Table> {
        let tname = table.to_string();
        let chain = self.execution_chain(std::slice::from_ref(&tname), focus)?;
        let out = self.complete_join(&chain, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517e);

        let base = self.db.table(table)?;
        let mut result = base.clone();
        let join = &out.join;
        let syn = out
            .synthesized_for(table)
            .ok_or_else(|| CoreError::Invalid(format!("{table} not on completed chain")))?;

        // Evidence multiplicity from real (non-synthesized) rows: how often
        // does one real target tuple appear in the chain join?
        let multiplicity = match join.resolve(&format!("{table}.id")) {
            Ok(id_idx) => {
                let mut distinct = std::collections::HashSet::new();
                let mut real = 0usize;
                for (r, &s) in syn.iter().enumerate() {
                    let v = join.value(r, id_idx);
                    if !s && !v.is_null() {
                        real += 1;
                        distinct.insert(v.to_string());
                    }
                }
                (real as f64 / distinct.len().max(1) as f64).max(1.0)
            }
            Err(_) => 1.0,
        };
        let p_keep = 1.0 / multiplicity;

        for (r, &s) in syn.iter().enumerate() {
            if !s || rand::Rng::random::<f64>(&mut rng) >= p_keep {
                continue;
            }
            let row: Vec<Value> = base
                .fields()
                .iter()
                .map(|f| {
                    let bare = f.name.rsplit('.').next().unwrap_or(&f.name);
                    match join.resolve(&format!("{table}.{bare}")) {
                        Ok(i) => crate::completion::coerce(&join.value(r, i), f.dtype),
                        Err(_) => Value::Null,
                    }
                })
                .collect();
            result.push_row(&row)?;
        }
        Ok(result)
    }

    /// §6 confidence interval for an aggregate over the completed join of
    /// `query_tables`.
    pub fn confidence(
        &self,
        query_tables: &[String],
        query: &ConfidenceQuery,
        level: f64,
        seed: u64,
    ) -> CoreResult<ConfidenceInterval> {
        let focus = match query {
            ConfidenceQuery::CountFraction { column, .. }
            | ConfidenceQuery::Avg { column, .. }
            | ConfidenceQuery::Sum { column, .. } => vec![column.clone()],
        };
        let chain = self.execution_chain(query_tables, &focus)?;
        let out = self.complete_join(&chain, seed)?;
        let model = self.model_for_path(&chain)?;
        confidence_interval(&model, &self.db, &out, query, level)
    }

    /// Enumerates candidate execution chains for a set of query tables: a
    /// candidate completion path of an incomplete query table, extended
    /// with the remaining query tables along FK edges. Also returns the
    /// last enumeration error (unextendable chains) for diagnostics.
    pub(crate) fn candidate_chains(
        &self,
        query_tables: &[String],
    ) -> CoreResult<(Vec<Vec<String>>, Option<CoreError>)> {
        let incomplete: Vec<String> = query_tables
            .iter()
            .filter(|t| self.annotation.is_incomplete(t))
            .cloned()
            .collect();
        if incomplete.is_empty() {
            return Err(CoreError::Invalid("no incomplete table in query".into()));
        }
        let mut chains = Vec::new();
        let mut last_err = None;
        for anchor in &incomplete {
            let table = self.db.table(anchor)?;
            if modeled_columns(table).is_empty() {
                continue;
            }
            // A forced path short-circuits candidate enumeration.
            let candidates: Vec<Vec<String>> = match self.forced.get(anchor) {
                Some(forced) => vec![forced.clone()],
                None => self
                    .candidate_paths(anchor)
                    .into_iter()
                    .take(self.config.max_candidates.max(1))
                    .map(|p| p.tables().to_vec())
                    .collect(),
            };
            for mut chain in candidates {
                let mut remaining: Vec<String> = query_tables
                    .iter()
                    .filter(|t| !chain.contains(t))
                    .cloned()
                    .collect();
                // Greedily append tables connected to the chain's end.
                while !remaining.is_empty() {
                    let end = chain.last().unwrap().clone();
                    match remaining
                        .iter()
                        .position(|t| self.db.edge_between(&end, t).is_some())
                    {
                        Some(i) => chain.push(remaining.remove(i)),
                        None => break,
                    }
                }
                if !remaining.is_empty() {
                    last_err = Some(CoreError::Invalid(format!(
                        "cannot extend chain {chain:?} with {remaining:?}"
                    )));
                    continue;
                }
                chains.push(chain);
            }
        }
        Ok((chains, last_err))
    }

    /// Picks the execution chain for a set of query tables among the
    /// candidates whose model is frozen in the snapshot: the chain whose
    /// model best predicts the `focus` attributes (held-out NLL) wins —
    /// the significance of evidence depends on the query (§5).
    pub(crate) fn execution_chain(
        &self,
        query_tables: &[String],
        focus: &[String],
    ) -> CoreResult<Vec<String>> {
        let (chains, mut last_err) = self.candidate_chains(query_tables)?;
        let mut best: Option<(f32, Vec<String>)> = None;
        for chain in chains {
            match self.models.get(&chain) {
                Some(model) => {
                    // Every chain table outside the query adds evidence
                    // multiplicity (and reweighting noise, §4.4), so
                    // near-ties go to the leaner chain.
                    let extras = chain.iter().filter(|t| !query_tables.contains(t)).count();
                    // §4.4 reweighting for extra evidence tables is far
                    // noisier than the completion itself, so covering
                    // chains win unless their evidence is much weaker.
                    let score = focus_loss(model, focus, &self.annotation, query_tables)
                        + 0.3 * extras as f32;
                    if best.as_ref().is_none_or(|(b, _)| score < *b) {
                        best = Some((score, chain));
                    }
                }
                None => {
                    last_err = Some(CoreError::NoModel(format!(
                        "no trained model for chain {chain:?}"
                    )));
                }
            }
        }
        best.map(|(_, c)| c).ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                CoreError::NoPath(format!("no execution chain covers {query_tables:?}"))
            })
        })
    }

    /// Projects a completed chain join onto the query tables, correcting
    /// row multiplicity introduced by additional evidence tables (§4.4).
    fn project_completed(
        &self,
        out: &CompletionOutput,
        query_tables: &[String],
        rng: &mut StdRng,
    ) -> CoreResult<Table> {
        let chain = &out.tables;
        let extras: Vec<&String> = chain.iter().filter(|t| !query_tables.contains(t)).collect();
        if extras.is_empty() {
            return Ok(out.join.clone());
        }
        // Keep only the query tables' columns — evidence columns would
        // shadow query attributes (e.g. actor.gender vs director.gender).
        let query_cols: Vec<String> = out
            .join
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .filter(|name| {
                name.split_once('.')
                    .is_some_and(|(t, _)| query_tables.iter().any(|q| q == t))
            })
            .collect();
        // The extras form the evidence prefix; the pivot is the first chain
        // table that belongs to the query.
        let pivot_idx = chain
            .iter()
            .position(|t| query_tables.contains(t))
            .ok_or_else(|| CoreError::Invalid("query tables not on chain".into()))?;
        let join = &out.join;
        let n = join.n_rows();

        // Row keys: id columns of the pivot and all downstream query tables.
        let key_cols: Vec<usize> = chain[pivot_idx..]
            .iter()
            .filter(|t| query_tables.contains(t))
            .filter_map(|t| join.resolve(&format!("{t}.id")).ok())
            .collect();
        if key_cols.is_empty() {
            // No identity available; project columns and return as-is.
            let refs: Vec<&str> = query_cols.iter().map(String::as_str).collect();
            return join.project(&refs).map_err(CoreError::from);
        }

        // A row is synthetic when any *query-table* part of it was
        // synthesized — euclidean replacement may have given it real keys
        // (Fig. 3), so null-ness of the key is not the right signal.
        let relevant: Vec<usize> = (0..chain.len())
            .filter(|&i| query_tables.contains(&chain[i]))
            .collect();
        let is_syn = |r: usize| relevant.iter().any(|&i| out.syn[i][r]);

        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        let mut real_rows = 0usize;
        let mut keep = vec![false; n];
        let mut syn_rows: Vec<usize> = Vec::new();
        for (r, keep_slot) in keep.iter_mut().enumerate() {
            if is_syn(r) {
                syn_rows.push(r);
                continue;
            }
            let key: Vec<Value> = key_cols.iter().map(|&c| join.value(r, c)).collect();
            if key.iter().any(Value::is_null) {
                // Real parts but no identity — keep conservatively.
                *keep_slot = true;
                continue;
            }
            real_rows += 1;
            if seen.insert(key) {
                *keep_slot = true;
            }
        }
        // Multiplicity of real keys → thinning factor for synthesized rows.
        let distinct = seen.len().max(1);
        let multiplicity = (real_rows as f64 / distinct as f64).max(1.0);
        let p_keep = 1.0 / multiplicity;
        for &r in &syn_rows {
            if rand::Rng::random::<f64>(rng) < p_keep {
                keep[r] = true;
            }
        }
        let refs: Vec<&str> = query_cols.iter().map(String::as_str).collect();
        join.filter(&keep).project(&refs).map_err(CoreError::from)
    }
}

/// Bare (unqualified) column names a query reads: filter references,
/// group-by columns and aggregate inputs.
pub fn query_focus_columns(query: &Query) -> Vec<String> {
    let mut cols = Vec::new();
    if let Some(f) = &query.filter {
        f.collect_columns(&mut cols);
    }
    cols.extend(query.group_by.iter().cloned());
    for agg in &query.aggregates {
        if let Some(c) = agg.input_column() {
            cols.push(c.to_string());
        }
    }
    let mut bare: Vec<String> = cols
        .into_iter()
        .map(|c| c.rsplit('.').next().unwrap_or(&c).to_string())
        .collect();
    bare.sort();
    bare.dedup();
    bare
}

/// Mean held-out NLL of a model on the attributes the query needs to be
/// synthesized: attributes of *incomplete query tables*, preferring the
/// focus columns. Restricting to query tables keeps the score comparable
/// across chains with different evidence prefixes.
fn focus_loss(
    model: &CompletionModel,
    focus: &[String],
    annotation: &SchemaAnnotation,
    query_tables: &[String],
) -> f32 {
    let mut focus_vals = Vec::new();
    let mut all_vals = Vec::new();
    for (i, attr) in model.attrs().iter().enumerate() {
        if let crate::model::AttrKind::Column { table, column } = &attr.kind {
            if annotation.is_incomplete(table) && query_tables.iter().any(|q| q == table) {
                all_vals.push(model.val_per_attr[i]);
                if focus.iter().any(|f| f == column) {
                    focus_vals.push(model.val_per_attr[i]);
                }
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    if !focus_vals.is_empty() {
        mean(&focus_vals)
    } else if !all_vals.is_empty() {
        mean(&all_vals)
    } else {
        model.target_val_loss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<Arc<Snapshot>>();
    }

    #[test]
    fn path_fingerprint_separates_paths() {
        let ab = path_fingerprint(&["a".into(), "b".into()]);
        let ba = path_fingerprint(&["b".into(), "a".into()]);
        let joined = path_fingerprint(&["ab".into()]);
        assert_ne!(ab, ba);
        assert_ne!(ab, joined);
        assert_eq!(ab, path_fingerprint(&["a".into(), "b".into()]));
    }
}
