//! Completed-join reuse (§4.5): data synthesized for one query is reused
//! for related queries. Exact path matches are the wired path
//! ([`JoinCache::get_or_compute`]); [`JoinCache::get_prefix`] additionally
//! *offers* prefix reuse (a cached join whose extra trailing steps are all
//! n:1 preserves row multiplicity over any prefix of its path) for callers
//! that do their own projection — the serving engine does not use it yet.
//!
//! The cache is built for concurrent serving:
//!
//! * **Single-flight synthesis** — concurrent requests for the same cold
//!   path block on one in-flight completion ([`JoinCache::get_or_compute`])
//!   instead of racing duplicates; the miss counter counts *syntheses*
//!   (distinct cold paths), not requests.
//! * **Memory budget** — entries carry an approximate byte size
//!   ([`CompletionOutput::approx_bytes`]); inserts evict least-recently-used
//!   entries until the total fits [`JoinCache::budget_bytes`], so a
//!   long-running server does not grow without bound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use restore_util::SingleFlight;

use crate::completion::CompletionOutput;
use crate::error::CoreResult;

/// `parking_lot`-style infallible lock: a poisoned mutex only happens if a
/// cache user panicked mid-insert, and the map is always left consistent,
/// so recovering the guard is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Full cache counters (§4.5 instrumentation + serving diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a resident entry.
    pub hits: u64,
    /// Syntheses actually run (distinct cold paths, not requests).
    pub misses: u64,
    /// Requests that blocked on another thread's in-flight synthesis and
    /// shared its result (single-flight followers).
    pub waits: u64,
    /// Entries evicted to stay within the memory budget.
    pub evictions: u64,
    /// Approximate bytes currently resident.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    out: Arc<CompletionOutput>,
    bytes: usize,
    /// Logical clock of the last touch (for LRU eviction).
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Vec<String>, Entry>,
    clock: u64,
    total_bytes: usize,
}

/// Thread-safe cache of completed joins keyed by the ordered path tables.
pub struct JoinCache {
    inner: Mutex<Inner>,
    flights: SingleFlight<Vec<String>, CoreResult<Arc<CompletionOutput>>>,
    /// Approximate memory budget in bytes; `0` = unbounded.
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    evictions: AtomicU64,
}

impl Default for JoinCache {
    fn default() -> Self {
        Self::with_budget(0)
    }
}

impl JoinCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that evicts least-recently-used entries once the resident
    /// estimate exceeds `budget_bytes` (`0` = unbounded).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            flights: SingleFlight::new(),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured memory budget (`0` = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Stat-free lookup that refreshes the entry's LRU stamp.
    fn lookup(&self, tables: &[String]) -> Option<Arc<CompletionOutput>> {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(tables)?;
        entry.stamp = clock;
        Some(Arc::clone(&entry.out))
    }

    /// Exact-path lookup.
    pub fn get(&self, tables: &[String]) -> Option<Arc<CompletionOutput>> {
        let out = self.lookup(tables);
        match &out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// The serving entry point: returns the cached completion for `tables`,
    /// or runs `compute` to synthesize it — under **single-flight**
    /// semantics, so concurrent callers needing the same cold path share
    /// one synthesis (the leader computes and inserts; followers block and
    /// clone the leader's result, errors included).
    pub fn get_or_compute<F>(
        &self,
        tables: &[String],
        compute: F,
    ) -> CoreResult<Arc<CompletionOutput>>
    where
        F: FnOnce() -> CoreResult<Arc<CompletionOutput>>,
    {
        if let Some(out) = self.lookup(tables) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(out);
        }
        let key = tables.to_vec();
        let (result, leader) = self.flights.run(&key, || {
            // Re-check under the flight: this caller may have lost the race
            // to a leader that already finished and inserted.
            if let Some(out) = self.lookup(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let out = compute()?;
            self.put(key.clone(), Arc::clone(&out));
            Ok(out)
        });
        if !leader {
            self.waits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Looks up any cached completion whose path *starts with* `tables`
    /// (prefix reuse). The caller is responsible for projecting — prefix
    /// reuse is only offered when the cached entry marks the extra steps as
    /// multiplicity-preserving. Refreshes the serving entry's LRU stamp so
    /// a prefix-served completion does not look idle to the evictor.
    pub fn get_prefix(&self, tables: &[String]) -> Option<Arc<CompletionOutput>> {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        inner
            .map
            .iter_mut()
            .filter(|(k, _)| k.len() > tables.len() && k.starts_with(tables))
            .map(|(_, v)| {
                v.stamp = clock;
                Arc::clone(&v.out)
            })
            .next()
    }

    /// Inserts an entry, evicting least-recently-used entries while the
    /// resident estimate exceeds the budget (the fresh entry is never
    /// evicted by its own insert).
    pub fn put(&self, tables: Vec<String>, output: Arc<CompletionOutput>) {
        let bytes = output.approx_bytes();
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(
            tables.clone(),
            Entry {
                out: output,
                bytes,
                stamp,
            },
        ) {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        if self.budget_bytes == 0 {
            return;
        }
        while inner.total_bytes > self.budget_bytes && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != tables)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = inner.map.remove(&victim) {
                inner.total_bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub fn invalidate(&self) {
        let mut inner = lock(&self.inner);
        inner.map.clear();
        inner.total_bytes = 0;
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.inner).map.is_empty()
    }

    /// `(hits, misses)` counters for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// All counters plus resident-size gauges.
    pub fn full_stats(&self) -> CacheStats {
        let inner = lock(&self.inner);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: inner.total_bytes,
            entries: inner.map.len(),
        }
    }

    /// Snapshot of all cached entries (diagnostics).
    pub fn entries(&self) -> Vec<(Vec<String>, Arc<CompletionOutput>)> {
        lock(&self.inner)
            .map
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(&v.out)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::Table;

    fn dummy_output(tables: &[&str]) -> Arc<CompletionOutput> {
        Arc::new(CompletionOutput {
            join: Table::new("j", vec![]),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            syn: vec![Vec::new(); tables.len()],
            tf: Vec::new(),
        })
    }

    /// An output padded to a known approximate size.
    fn sized_output(tables: &[&str], rows: usize) -> Arc<CompletionOutput> {
        let mut out = CompletionOutput {
            join: Table::new("j", vec![]),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            syn: vec![vec![false; rows]; tables.len()],
            tf: Vec::new(),
        };
        out.syn[0] = vec![true; rows];
        Arc::new(out)
    }

    fn key(tables: &[&str]) -> Vec<String> {
        tables.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_hit_and_miss_counting() {
        let cache = JoinCache::new();
        assert!(cache.get(&key(&["a", "b"])).is_none());
        cache.put(key(&["a", "b"]), dummy_output(&["a", "b"]));
        assert!(cache.get(&key(&["a", "b"])).is_some());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn prefix_lookup_finds_longer_paths() {
        let cache = JoinCache::new();
        cache.put(key(&["a", "b", "c"]), dummy_output(&["a", "b", "c"]));
        assert!(cache.get_prefix(&key(&["a", "b"])).is_some());
        assert!(cache.get_prefix(&key(&["a", "c"])).is_none());
        assert!(
            cache.get_prefix(&key(&["a", "b", "c"])).is_none(),
            "prefix must be strict"
        );
    }

    #[test]
    fn invalidate_clears() {
        let cache = JoinCache::new();
        cache.put(key(&["a"]), dummy_output(&["a"]));
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.full_stats().bytes, 0);
    }

    #[test]
    fn get_or_compute_runs_once_per_path() {
        let cache = JoinCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let out = cache
                .get_or_compute(&key(&["a", "b"]), || {
                    calls += 1;
                    Ok(dummy_output(&["a", "b"]))
                })
                .unwrap();
            assert_eq!(out.tables, key(&["a", "b"]));
        }
        assert_eq!(calls, 1);
        let stats = cache.full_stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn get_or_compute_propagates_errors_without_caching() {
        let cache = JoinCache::new();
        let err = cache.get_or_compute(&key(&["a"]), || {
            Err(crate::error::CoreError::Invalid("boom".into()))
        });
        assert!(err.is_err());
        assert!(cache.is_empty(), "errors must not be cached");
        // The next call retries.
        assert!(cache
            .get_or_compute(&key(&["a"]), || Ok(dummy_output(&["a"])))
            .is_ok());
        assert_eq!(cache.full_stats().misses, 2);
    }

    #[test]
    fn concurrent_same_path_synthesizes_once() {
        let cache = Arc::new(JoinCache::new());
        let synths = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(6));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let (cache, synths, barrier) = (
                Arc::clone(&cache),
                Arc::clone(&synths),
                Arc::clone(&barrier),
            );
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_compute(&key(&["a", "b"]), || {
                        synths.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(dummy_output(&["a", "b"]))
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().tables, key(&["a", "b"]));
        }
        assert_eq!(
            synths.load(Ordering::SeqCst),
            cache.full_stats().misses,
            "misses must count syntheses"
        );
        assert_eq!(cache.full_stats().misses, 1, "one synthesis for one path");
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let per_entry = sized_output(&["x"], 1000).approx_bytes();
        assert!(per_entry >= 1000);
        // Room for two entries, not three.
        let cache = JoinCache::with_budget(2 * per_entry + per_entry / 2);
        cache.put(key(&["a"]), sized_output(&["a"], 1000));
        cache.put(key(&["b"]), sized_output(&["b"], 1000));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get(&key(&["a"])).is_some());
        cache.put(key(&["c"]), sized_output(&["c"], 1000));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(&["b"])).is_none(), "LRU entry must go");
        assert!(cache.get(&key(&["a"])).is_some());
        assert!(cache.get(&key(&["c"])).is_some());
        let stats = cache.full_stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= cache.budget_bytes());
    }

    #[test]
    fn oversized_entry_survives_its_own_insert() {
        let cache = JoinCache::with_budget(8);
        cache.put(key(&["big"]), sized_output(&["big"], 10_000));
        assert_eq!(cache.len(), 1, "the fresh entry is never self-evicted");
        cache.put(key(&["big2"]), sized_output(&["big2"], 10_000));
        assert_eq!(cache.len(), 1, "over budget, the older entry goes");
        assert!(cache.get(&key(&["big2"])).is_some());
    }
}
