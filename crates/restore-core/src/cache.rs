//! Completed-join reuse (§4.5): data synthesized for one query is reused
//! for related queries — exact path matches are free, and a cached join
//! whose extra trailing steps are all n:1 (row-multiplicity preserving) can
//! serve any prefix of its path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::completion::CompletionOutput;

/// `parking_lot`-style infallible lock: a poisoned mutex only happens if a
/// cache user panicked mid-insert, and the map is always left consistent,
/// so recovering the guard is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Thread-safe cache of completed joins keyed by the ordered path tables.
#[derive(Default)]
pub struct JoinCache {
    inner: Mutex<HashMap<Vec<String>, Arc<CompletionOutput>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl JoinCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact-path lookup.
    pub fn get(&self, tables: &[String]) -> Option<Arc<CompletionOutput>> {
        let out = lock(&self.inner).get(tables).cloned();
        match &out {
            Some(_) => *lock(&self.hits) += 1,
            None => *lock(&self.misses) += 1,
        }
        out
    }

    /// Looks up any cached completion whose path *starts with* `tables`
    /// (prefix reuse). The caller is responsible for projecting — prefix
    /// reuse is only offered when the cached entry marks the extra steps as
    /// multiplicity-preserving.
    pub fn get_prefix(&self, tables: &[String]) -> Option<Arc<CompletionOutput>> {
        let inner = lock(&self.inner);
        inner
            .iter()
            .filter(|(k, _)| k.len() > tables.len() && k.starts_with(tables))
            .map(|(_, v)| Arc::clone(v))
            .next()
    }

    pub fn put(&self, tables: Vec<String>, output: Arc<CompletionOutput>) {
        lock(&self.inner).insert(tables, output);
    }

    pub fn invalidate(&self) {
        lock(&self.inner).clear();
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// `(hits, misses)` counters for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (*lock(&self.hits), *lock(&self.misses))
    }

    /// Snapshot of all cached entries (diagnostics).
    pub fn entries(&self) -> Vec<(Vec<String>, Arc<CompletionOutput>)> {
        lock(&self.inner)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::Table;

    fn dummy_output(tables: &[&str]) -> Arc<CompletionOutput> {
        Arc::new(CompletionOutput {
            join: Table::new("j", vec![]),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            syn: vec![Vec::new(); tables.len()],
            tf: Vec::new(),
        })
    }

    fn key(tables: &[&str]) -> Vec<String> {
        tables.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_hit_and_miss_counting() {
        let cache = JoinCache::new();
        assert!(cache.get(&key(&["a", "b"])).is_none());
        cache.put(key(&["a", "b"]), dummy_output(&["a", "b"]));
        assert!(cache.get(&key(&["a", "b"])).is_some());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn prefix_lookup_finds_longer_paths() {
        let cache = JoinCache::new();
        cache.put(key(&["a", "b", "c"]), dummy_output(&["a", "b", "c"]));
        assert!(cache.get_prefix(&key(&["a", "b"])).is_some());
        assert!(cache.get_prefix(&key(&["a", "c"])).is_none());
        assert!(
            cache.get_prefix(&key(&["a", "b", "c"])).is_none(),
            "prefix must be strict"
        );
    }

    #[test]
    fn invalidate_clears() {
        let cache = JoinCache::new();
        cache.put(key(&["a"]), dummy_output(&["a"]));
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
    }
}
