//! Query-driven data completion (§4) — the **incompleteness join** of
//! Algorithm 1.
//!
//! Walking the completion path from the evidence root, each step either
//! fans out (1:n — predict tuple factors, subtract existing partners,
//! duplicate evidence rows, synthesize the child attributes) or is n:1
//! (synthesize one missing parent per orphaned row). Whenever a synthesized
//! tuple belongs to a complete table — or further joins need its foreign
//! keys — it is replaced by its (approximate) euclidean nearest neighbor
//! among the real tuples (Fig. 3).

//! **Batched, parallel sampling.** Every synthesis step samples its rows in
//! batches of [`CompleterConfig::batch_size`]: one gradient-free forward
//! pass per attribute fills a whole batch, and the batches fan out over a
//! worker pool ([`CompleterConfig::workers`]). Each batch owns an RNG
//! seeded from `(step seed, batch offset)`, so completions are bit-stable
//! under any worker count and reproduce the single-row sampling sequence
//! at `batch_size = 1`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore_db::{hash_join, Column, Database, Table, Value};
use restore_nn::InferenceSession;
use restore_util::{default_workers, derive_seed, parallel_map_with};

use crate::ann::AnnIndex;
use crate::annotation::SchemaAnnotation;
use crate::encoding::AttrEncoder;
use crate::error::{CoreError, CoreResult};
use crate::model::{AttrKind, CompletionModel};

/// When the euclidean replacement of Fig. 3 runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementMode {
    /// Replace when the joined table is complete or further joins need its
    /// foreign keys (the paper's rule).
    #[default]
    Auto,
    /// Always replace (benchmarking the replacement cost, Fig. 12).
    Always,
    /// Never replace (the "AR/SSAR without NN replacement" series).
    Never,
}

/// Tuning knobs of the completion executor.
#[derive(Clone, Debug)]
pub struct CompleterConfig {
    /// LSH hyperplanes per hash table.
    pub ann_bits: usize,
    /// Number of LSH hash tables.
    pub ann_tables: usize,
    /// Clamp on synthesized tuples per evidence row (runaway protection).
    pub max_missing_per_row: i64,
    /// Euclidean replacement policy.
    pub replacement: ReplacementMode,
    /// Rows sampled per no-grad forward pass (B). Larger batches amortize
    /// the per-pass cost; `1` degrades to single-row sampling (the
    /// determinism-contract reference point).
    pub batch_size: usize,
    /// Worker threads the sampling batches fan out over (`0` = one per
    /// available hardware thread). Results never depend on this value.
    pub workers: usize,
    /// Maintain the working join's token encoding incrementally across
    /// synthesis steps (gather/extend cached columns, re-encode only the
    /// attributes a step changed) instead of re-encoding the whole join
    /// every step. Output is bit-identical either way; `false` keeps the
    /// O(attrs × join) re-encode per step as the reference path.
    pub incremental_encoding: bool,
}

impl Default for CompleterConfig {
    fn default() -> Self {
        Self {
            ann_bits: 10,
            ann_tables: 4,
            max_missing_per_row: 64,
            replacement: ReplacementMode::Auto,
            batch_size: 256,
            workers: 0,
            incremental_encoding: true,
        }
    }
}

/// The result of completing one path: the completed join plus provenance.
#[derive(Clone, Debug)]
pub struct CompletionOutput {
    /// Completed join with fully qualified column names.
    pub join: Table,
    /// Path table names, in walk order.
    pub tables: Vec<String>,
    /// `syn[i][r]` — was the `tables[i]` part of row `r` synthesized?
    pub syn: Vec<Vec<bool>>,
    /// Tuple-factor values used per fan-out step (aligned with rows).
    pub tf: Vec<Vec<Option<i64>>>,
}

impl CompletionOutput {
    /// Synthesized flags for a path table.
    pub fn synthesized_for(&self, table: &str) -> Option<&[bool]> {
        let i = self.tables.iter().position(|t| t == table)?;
        Some(&self.syn[i])
    }

    /// Rows where *any* part was synthesized.
    pub fn any_synthesized(&self) -> Vec<bool> {
        let n = self.join.n_rows();
        let mut out = vec![false; n];
        for flags in &self.syn {
            for (o, &f) in out.iter_mut().zip(flags) {
                *o |= f;
            }
        }
        out
    }

    /// Number of rows with any synthesized part.
    pub fn n_synthesized(&self) -> usize {
        self.any_synthesized().iter().filter(|&&b| b).count()
    }

    /// Approximate resident size in bytes — what one cached completion
    /// costs the serving cache's memory budget.
    pub fn approx_bytes(&self) -> usize {
        let names: usize = self.tables.iter().map(String::len).sum();
        let syn: usize = self.syn.iter().map(Vec::len).sum();
        let tf: usize = self
            .tf
            .iter()
            .map(|v| v.len() * std::mem::size_of::<Option<i64>>())
            .sum();
        self.join.approx_bytes() + names + syn + tf
    }
}

/// The working state of Algorithm 1: the join so far plus parallel
/// provenance arrays that must stay row-aligned through gathers/unions.
///
/// `enc` optionally carries the model-token encoding of the working join
/// (attr-major, row-aligned). Cell values are never rewritten by the walk —
/// rows are only gathered, duplicated, and unioned — so cached tokens move
/// with their rows, and a step re-encodes only what it changed: the tuple
/// factor it resolved and the columns of the table it just joined.
struct Working {
    table: Table,
    syn: Vec<Vec<bool>>,
    tf: Vec<Vec<Option<i64>>>,
    enc: Option<Vec<Vec<u32>>>,
}

impl Working {
    fn gather(&self, idx: &[usize]) -> Working {
        Working {
            table: self.table.gather(idx),
            syn: self
                .syn
                .iter()
                .map(|f| idx.iter().map(|&i| f[i]).collect())
                .collect(),
            tf: self
                .tf
                .iter()
                .map(|f| {
                    if f.is_empty() {
                        Vec::new()
                    } else {
                        idx.iter().map(|&i| f[i]).collect()
                    }
                })
                .collect(),
            enc: self.enc.as_ref().map(|cols| {
                cols.iter()
                    .map(|c| idx.iter().map(|&i| c[i]).collect())
                    .collect()
            }),
        }
    }

    fn union(mut self, other: Working) -> CoreResult<Working> {
        self.table.union(&other.table)?;
        for (a, b) in self.syn.iter_mut().zip(other.syn) {
            a.extend(b);
        }
        for (a, b) in self.tf.iter_mut().zip(other.tf) {
            a.extend(b);
        }
        match (&mut self.enc, other.enc) {
            (Some(a), Some(b)) => {
                for (ac, bc) in a.iter_mut().zip(b) {
                    ac.extend(bc);
                }
            }
            (enc @ Some(_), None) => *enc = None,
            _ => {}
        }
        Ok(self)
    }

    /// Re-encodes the attribute columns in `range` from the current table
    /// and tuple factors — called after a step changes what they encode.
    fn refresh_enc(&mut self, model: &CompletionModel, range: std::ops::Range<usize>) {
        if self.enc.is_none() {
            return;
        }
        let fresh: Vec<(usize, Vec<u32>)> = range
            .map(|a| (a, model.encode_attr_column(&self.table, &self.tf, a)))
            .collect();
        let enc = self.enc.as_mut().expect("checked above");
        for (a, col) in fresh {
            enc[a] = col;
        }
    }

    /// Re-encodes the tuple-factor attribute of `step`, if the model has
    /// one — called right after the step's factors are resolved.
    fn refresh_tf_enc(&mut self, model: &CompletionModel, step: usize) {
        if let Some(attr) = model.tf_attr(step) {
            self.refresh_enc(model, attr..attr + 1);
        }
    }

    /// The working join's token encoding: the maintained cache when
    /// incremental encoding is on, one fresh full encode otherwise.
    fn encoded(&self, model: &CompletionModel) -> std::borrow::Cow<'_, [Vec<u32>]> {
        match &self.enc {
            Some(enc) => std::borrow::Cow::Borrowed(enc.as_slice()),
            None => std::borrow::Cow::Owned(model.encode_tokens(&self.table, &self.tf)),
        }
    }
}

/// Executes incompleteness joins along a trained model's path.
pub struct Completer<'a> {
    db: &'a Database,
    annotation: &'a SchemaAnnotation,
    cfg: CompleterConfig,
}

impl<'a> Completer<'a> {
    pub fn new(db: &'a Database, annotation: &'a SchemaAnnotation) -> Self {
        Self {
            db,
            annotation,
            cfg: CompleterConfig::default(),
        }
    }

    pub fn with_config(mut self, cfg: CompleterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Algorithm 1: walks the model's completion path and produces the
    /// approximated complete join. Deterministic in `seed` — every sampling
    /// batch derives its RNG from the seed and its position, independent of
    /// batch grouping across steps and of the worker count.
    pub fn complete(&self, model: &CompletionModel, seed: u64) -> CoreResult<CompletionOutput> {
        let path = model.path().clone();
        let root = self.db.table(path.root())?;
        let n0 = root.n_rows();
        let mut w = Working {
            table: root.qualified(),
            syn: vec![vec![false; n0]],
            tf: vec![Vec::new(); path.steps().len()],
            enc: None,
        };
        if self.cfg.incremental_encoding {
            w.enc = Some(model.encode_tokens(&w.table, &w.tf));
        }
        // One inference session per worker, reused across every batch and
        // step of the walk: parameters are frozen during completion, so
        // pooled activation buffers and the masked-weight cache stay valid
        // for the whole join. Which session serves which batch never
        // affects the output (buffers are fully overwritten per pass).
        let workers = if self.cfg.workers == 0 {
            default_workers()
        } else {
            self.cfg.workers
        };
        let mut sessions: Vec<InferenceSession> = (0..workers.max(1))
            .map(|_| InferenceSession::new())
            .collect();

        for (i, step) in path.steps().iter().enumerate() {
            let next_name = path.tables()[i + 1].clone();
            let t_next = self.db.table(&next_name)?;
            let last = i + 1 == path.tables().len() - 1;
            // Synthesized tuples of complete tables must be replaced to
            // comply with the annotation; tuples that feed further joins
            // need real foreign keys (§4.2–§4.3).
            let replace = match self.cfg.replacement {
                ReplacementMode::Auto => self.annotation.is_complete(&next_name) || !last,
                ReplacementMode::Always => true,
                ReplacementMode::Never => false,
            };

            // Independent RNG streams for this step's tuple-factor and
            // column sampling.
            let tf_seed = derive_seed(seed, 2 * i as u64);
            let col_seed = derive_seed(seed, 2 * i as u64 + 1);
            if step.fan_out {
                w = self.fanout_step(
                    model,
                    w,
                    i,
                    t_next,
                    replace,
                    tf_seed,
                    col_seed,
                    &mut sessions,
                )?;
            } else {
                w = self.n_to_1_step(model, w, i, t_next, replace, col_seed, &mut sessions)?;
            }
        }

        Ok(CompletionOutput {
            join: w.table,
            tables: path.tables().to_vec(),
            syn: w.syn,
            tf: w.tf,
        })
    }

    /// Splits `rows` into sampling batches, fans them out over the worker
    /// pool (each worker reusing its session), and returns the per-batch
    /// results in input order. Each batch's RNG is seeded from `(seed,
    /// offset of the batch's first row)` so the output is a pure function
    /// of `(rows, seed, batch_size)`.
    fn sample_batches<T, F>(
        &self,
        sessions: &mut [InferenceSession],
        rows: &[usize],
        seed: u64,
        f: F,
    ) -> CoreResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut InferenceSession, &[usize], &mut StdRng) -> CoreResult<T> + Sync,
    {
        let bs = self.cfg.batch_size.max(1);
        let jobs: Vec<(usize, &[usize])> = rows
            .chunks(bs)
            .enumerate()
            .map(|(k, chunk)| (k * bs, chunk))
            .collect();
        parallel_map_with(jobs, sessions, |session, (offset, chunk)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, *offset as u64));
            f(session, chunk, &mut rng)
        })
        .into_iter()
        .collect()
    }

    /// RNG-free sibling of [`Completer::sample_batches`] for
    /// row-independent evaluations: fans `rows` out in a few *large* fused
    /// chunks — about one per worker, at least one sampling batch and at
    /// most 16 of them each (to bound the per-chunk logits footprint) — so
    /// the sweep's degree-≤-step setup bands run once per fused chunk
    /// instead of once per sampling batch. Each row's result must depend
    /// only on that row (no RNG, no cross-row coupling), which is exactly
    /// what makes the chunking invisible in the output. Results come back
    /// flattened in input order.
    fn eval_batches<T, F>(
        &self,
        sessions: &mut [InferenceSession],
        rows: &[usize],
        f: F,
    ) -> CoreResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut InferenceSession, &[usize]) -> CoreResult<Vec<T>> + Sync,
    {
        let bs = self.cfg.batch_size.max(1);
        let per_worker = rows.len().div_ceil(sessions.len().max(1));
        let chunk = per_worker.clamp(bs, 16 * bs);
        let jobs: Vec<&[usize]> = rows.chunks(chunk).collect();
        let out: CoreResult<Vec<Vec<T>>> =
            parallel_map_with(jobs, sessions, |session, chunk| f(session, chunk))
                .into_iter()
                .collect();
        Ok(out?.into_iter().flatten().collect())
    }

    /// 1:n step: predict tuple factors, join existing children, duplicate
    /// evidence rows for the missing ones and synthesize their attributes.
    #[allow(clippy::too_many_arguments)]
    fn fanout_step(
        &self,
        model: &CompletionModel,
        w: Working,
        step_idx: usize,
        t_next: &Table,
        replace: bool,
        tf_seed: u64,
        col_seed: u64,
        sessions: &mut [InferenceSession],
    ) -> CoreResult<Working> {
        let step = &model.path().steps()[step_idx];
        let parent_key_ref = format!("{}.{}", step.fk.parent, step.fk.parent_col);
        let child_key = t_next.resolve(&step.fk.child_col)?;
        let n = w.table.n_rows();

        // Existing partner counts per working row (NULL keys have none).
        let mut counts: HashMap<Value, i64> = HashMap::new();
        for r in 0..t_next.n_rows() {
            let k = t_next.value(r, child_key);
            if !k.is_null() {
                *counts.entry(k).or_insert(0) += 1;
            }
        }
        let pk_idx = w.table.resolve(&parent_key_ref)?;
        let existing: Vec<i64> = (0..n)
            .map(|r| {
                let k = w.table.value(r, pk_idx);
                if k.is_null() {
                    0
                } else {
                    counts.get(&k).copied().unwrap_or(0)
                }
            })
            .collect();

        // Known tuple factors from the __tf metadata column, if present.
        let tf_ref = format!(
            "{}.{}",
            step.fk.parent,
            crate::annotation::tf_column_name(&step.fk.child)
        );
        let known: Vec<Option<i64>> = match w.table.resolve(&tf_ref) {
            Ok(idx) => (0..n).map(|r| w.table.value(r, idx).as_i64()).collect(),
            Err(_) => vec![None; n],
        };

        // Resolve the factor for every row: known metadata beats everything;
        // a complete child table means the observed count is the truth;
        // otherwise the model predicts it (Algorithm 1, line 6).
        let child_complete = self.annotation.is_complete(&step.fk.child);
        let mut tf_final: Vec<i64> = vec![0; n];
        let mut to_predict: Vec<usize> = Vec::new();
        for r in 0..n {
            match known[r] {
                Some(v) => tf_final[r] = v,
                None if child_complete => tf_final[r] = existing[r],
                None => to_predict.push(r),
            }
        }
        if !to_predict.is_empty() {
            // The cached encoding (or one fresh pass) of the working join.
            // Expectation evaluation is RNG-free and row-independent, so
            // it runs in a few large fused chunks; stochastic rounding
            // then replays the exact per-sampling-batch RNG streams of
            // `sample_batches`, so the predicted factors are bit-identical
            // to the unfused path and invariant to worker count.
            let encoded = w.encoded(model);
            let expectations = self.eval_batches(sessions, &to_predict, |session, chunk| {
                model.tf_expectations_encoded_in(session, &w.table, &encoded, step_idx, chunk)
            })?;
            let bs = self.cfg.batch_size.max(1);
            let mut sampled = Vec::with_capacity(to_predict.len());
            for (k, chunk) in expectations.chunks(bs).enumerate() {
                let mut rng = StdRng::seed_from_u64(derive_seed(tf_seed, (k * bs) as u64));
                sampled.extend(CompletionModel::round_tf_expectations(chunk, &mut rng));
            }
            for (&r, v) in to_predict.iter().zip(sampled) {
                tf_final[r] = v;
            }
        }
        for r in 0..n {
            tf_final[r] = tf_final[r].max(existing[r]);
        }
        let missing: Vec<i64> = (0..n)
            .map(|r| (tf_final[r] - existing[r]).clamp(0, self.cfg.max_missing_per_row))
            .collect();

        // Existing partners: plain incompleteness-free join.
        let jout = hash_join(
            &w.table,
            &parent_key_ref,
            t_next,
            &step.fk.child_col,
            "join",
        )?;
        let mut w_inc = w.gather(&jout.left_indices);
        w_inc.table = jout.table;
        w_inc.syn.push(vec![false; w_inc.table.n_rows()]);
        w_inc.tf[step_idx] = jout
            .left_indices
            .iter()
            .map(|&l| Some(tf_final[l]))
            .collect();
        // The join resolved this step's tuple factor and brought t_next's
        // real columns into the working join — re-encode exactly those.
        w_inc.refresh_tf_enc(model, step_idx);
        w_inc.refresh_enc(model, model.table_attr_range(step_idx + 1));

        // Synthesized partners: duplicate each evidence row `missing` times.
        let mut dup_idx = Vec::new();
        for (r, &m) in missing.iter().enumerate() {
            for _ in 0..m {
                dup_idx.push(r);
            }
        }
        let mut w_syn = w.gather(&dup_idx);
        w_syn.tf[step_idx] = dup_idx.iter().map(|&r| Some(tf_final[r])).collect();
        // Sampling below conditions on the resolved tuple factor.
        w_syn.refresh_tf_enc(model, step_idx);
        let rows: Vec<usize> = (0..w_syn.table.n_rows()).collect();
        let block = self.synthesize_block(
            model,
            &w_syn,
            step_idx + 1,
            t_next,
            &rows,
            replace,
            col_seed,
            sessions,
        )?;
        w_syn.table = w_syn.table.hstack(&block, "join")?;
        w_syn.syn.push(vec![true; dup_idx.len()]);
        w_syn.refresh_enc(model, model.table_attr_range(step_idx + 1));

        w_inc.union(w_syn)
    }

    /// n:1 step: every working row without a partner gets one synthesized.
    #[allow(clippy::too_many_arguments)]
    fn n_to_1_step(
        &self,
        model: &CompletionModel,
        w: Working,
        step_idx: usize,
        t_next: &Table,
        replace: bool,
        col_seed: u64,
        sessions: &mut [InferenceSession],
    ) -> CoreResult<Working> {
        let step = &model.path().steps()[step_idx];
        let child_key_ref = format!("{}.{}", step.fk.child, step.fk.child_col);
        let jout = hash_join(
            &w.table,
            &child_key_ref,
            t_next,
            &step.fk.parent_col,
            "join",
        )?;
        let unmatched = jout.unmatched_left.clone();

        let mut w_inc = w.gather(&jout.left_indices);
        w_inc.table = jout.table;
        w_inc.syn.push(vec![false; w_inc.table.n_rows()]);
        w_inc.refresh_enc(model, model.table_attr_range(step_idx + 1));

        let mut w_syn = w.gather(&unmatched);
        let rows: Vec<usize> = (0..w_syn.table.n_rows()).collect();
        let block = self.synthesize_block(
            model,
            &w_syn,
            step_idx + 1,
            t_next,
            &rows,
            replace,
            col_seed,
            sessions,
        )?;
        w_syn.table = w_syn.table.hstack(&block, "join")?;
        w_syn.syn.push(vec![true; unmatched.len()]);
        w_syn.refresh_enc(model, model.table_attr_range(step_idx + 1));

        w_inc.union(w_syn)
    }

    /// Samples the modeled columns of path table `table_idx` for the given
    /// working rows — in parallel batches of `batch_size` rows, one no-grad
    /// forward pass per attribute per batch — optionally replacing each
    /// synthesized tuple with its nearest real neighbor, and returns the
    /// qualified column block.
    #[allow(clippy::too_many_arguments)]
    fn synthesize_block(
        &self,
        model: &CompletionModel,
        w: &Working,
        table_idx: usize,
        t_next: &Table,
        rows: &[usize],
        replace: bool,
        seed: u64,
        sessions: &mut [InferenceSession],
    ) -> CoreResult<Table> {
        let sampled = if rows.is_empty() {
            Vec::new()
        } else {
            let encoded = w.encoded(model);
            let batches = self.sample_batches(sessions, rows, seed, |session, chunk, rng| {
                model.sample_table_columns_encoded_in(
                    session, &w.table, &encoded, table_idx, chunk, rng,
                )
            })?;
            // Column-wise concatenation of the per-batch blocks.
            let mut merged: Vec<Vec<Value>> = Vec::new();
            for block in batches {
                if merged.is_empty() {
                    merged = block;
                } else {
                    for (col, part) in merged.iter_mut().zip(block) {
                        col.extend(part);
                    }
                }
            }
            merged
        };

        let attr_range = model.table_attr_range(table_idx);
        let modeled: Vec<(&str, &AttrEncoder)> = model.attrs()[attr_range.clone()]
            .iter()
            .map(|a| match &a.kind {
                AttrKind::Column { column, .. } => (column.as_str(), &a.encoder),
                AttrKind::TupleFactor { .. } => unreachable!("table range holds only columns"),
            })
            .collect();

        // Map of modeled column name → sampled values.
        let mut by_col: HashMap<&str, Vec<Value>> = HashMap::new();
        for ((name, _), vals) in modeled.iter().zip(sampled) {
            by_col.insert(name, vals);
        }

        // Euclidean replacement (Fig. 3): swap synthesized tuples for their
        // nearest real neighbors so keys become real.
        let mut replacement_rows: Option<Vec<usize>> = None;
        if replace && t_next.n_rows() > 0 && !rows.is_empty() && !modeled.is_empty() {
            let featurizer = Featurizer::fit(t_next, &modeled)?;
            let points = featurizer.features_of_table(t_next)?;
            let index = AnnIndex::build(points, self.cfg.ann_bits, self.cfg.ann_tables, 0xa11);
            let queries: Vec<Vec<f32>> = (0..rows.len())
                .map(|i| {
                    let vals: Vec<&Value> =
                        modeled.iter().map(|(name, _)| &by_col[name][i]).collect();
                    featurizer.features_of_values(&vals)
                })
                .collect();
            replacement_rows = Some(index.nearest_batch(&queries));
        }

        // Assemble the block with t_next's full (qualified) schema.
        let qualified = t_next.qualified();
        let mut columns: Vec<Column> = Vec::with_capacity(qualified.n_cols());
        for (fi, field) in qualified.fields().iter().enumerate() {
            let base = field.name.rsplit('.').next().unwrap_or(&field.name);
            let mut col = Column::with_capacity(field.dtype, rows.len());
            match &replacement_rows {
                Some(repl) => {
                    for &r in repl {
                        col.push(&t_next.value(r, fi))?;
                    }
                }
                None => {
                    if let Some(vals) = by_col.get(base) {
                        for v in vals.iter() {
                            col.push(&coerce(v, field.dtype))?;
                        }
                    } else {
                        // Keys / metadata of synthesized tuples stay NULL.
                        for _ in 0..rows.len() {
                            col.push(&Value::Null)?;
                        }
                    }
                }
            }
            columns.push(col);
        }
        Table::from_columns("block", qualified.fields().to_vec(), columns).map_err(CoreError::from)
    }
}

/// Coerces a sampled value into the column dtype (bin means are floats even
/// for integer columns).
pub(crate) fn coerce(v: &Value, dtype: restore_db::DataType) -> Value {
    match (v, dtype) {
        (Value::Float(f), restore_db::DataType::Int) => Value::Int(f.round() as i64),
        (Value::Int(i), restore_db::DataType::Float) => Value::Float(*i as f64),
        _ => v.clone(),
    }
}

/// Feature extraction for euclidean replacement: categorical attributes are
/// one-hot, numeric attributes are z-normalized against the real table.
struct Featurizer<'m> {
    specs: Vec<(&'m str, &'m AttrEncoder, FeatKind)>,
}

enum FeatKind {
    OneHot(usize),
    Numeric { mean: f32, std: f32 },
}

impl<'m> Featurizer<'m> {
    fn fit(table: &Table, modeled: &[(&'m str, &'m AttrEncoder)]) -> CoreResult<Self> {
        let mut specs = Vec::with_capacity(modeled.len());
        for (name, enc) in modeled {
            let kind = match enc {
                AttrEncoder::Categorical { .. } => FeatKind::OneHot(enc.cardinality()),
                _ => {
                    let col = table.column_by_name(name)?;
                    let mut vals = Vec::with_capacity(col.len());
                    for r in 0..col.len() {
                        if let Some(x) = col.get(r).as_f64() {
                            vals.push(x as f32);
                        }
                    }
                    let mean = if vals.is_empty() {
                        0.0
                    } else {
                        vals.iter().sum::<f32>() / vals.len() as f32
                    };
                    let var = if vals.is_empty() {
                        1.0
                    } else {
                        vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
                            / vals.len() as f32
                    };
                    FeatKind::Numeric {
                        mean,
                        std: var.sqrt().max(1e-6),
                    }
                }
            };
            specs.push((*name, *enc, kind));
        }
        Ok(Self { specs })
    }

    fn dim(&self) -> usize {
        self.specs
            .iter()
            .map(|(_, _, k)| match k {
                FeatKind::OneHot(c) => *c,
                FeatKind::Numeric { .. } => 1,
            })
            .sum()
    }

    fn push_value(&self, out: &mut Vec<f32>, spec_idx: usize, v: &Value) {
        let (_, enc, kind) = &self.specs[spec_idx];
        match kind {
            FeatKind::OneHot(card) => {
                let start = out.len();
                out.resize(start + card, 0.0);
                if let Some(t) = enc.encode(v) {
                    if (t as usize) < *card {
                        out[start + t as usize] = 1.0;
                    }
                }
            }
            FeatKind::Numeric { mean, std } => {
                let x = v.as_f64().unwrap_or(*mean as f64) as f32;
                out.push((x - mean) / std);
            }
        }
    }

    fn features_of_table(&self, table: &Table) -> CoreResult<Vec<Vec<f32>>> {
        let idxs: Vec<usize> = self
            .specs
            .iter()
            .map(|(name, _, _)| table.resolve(name).map_err(CoreError::from))
            .collect::<CoreResult<_>>()?;
        Ok((0..table.n_rows())
            .map(|r| {
                let mut f = Vec::with_capacity(self.dim());
                for (s, &ci) in idxs.iter().enumerate() {
                    self.push_value(&mut f, s, &table.value(r, ci));
                }
                f
            })
            .collect())
    }

    fn features_of_values(&self, values: &[&Value]) -> Vec<f32> {
        let mut f = Vec::with_capacity(self.dim());
        for (s, v) in values.iter().enumerate() {
            self.push_value(&mut f, s, v);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainConfig;
    use crate::paths::CompletionPath;

    use restore_data::{apply_removal, BiasSpec, RemovalConfig, SyntheticConfig};
    use restore_db::Field;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            hidden: vec![32, 32],
            max_train_rows: 6000,
            ..Default::default()
        }
    }

    fn scenario(keep: f64, corr: f64, seed: u64) -> restore_data::Scenario {
        let db = restore_data::generate_synthetic(
            &SyntheticConfig {
                predictability: 0.95,
                n_parent: 250,
                ..Default::default()
            },
            seed,
        );
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), keep, corr);
        cfg.seed = seed;
        cfg.tf_keep_rate = 0.3;
        apply_removal(&db, &cfg)
    }

    fn complete_scenario(sc: &restore_data::Scenario, seed: u64) -> CompletionOutput {
        let ann = SchemaAnnotation::with_incomplete(["tb"]);
        let path =
            CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).unwrap();
        let model = CompletionModel::train(&sc.incomplete, &ann, path, &quick_cfg(), seed).unwrap();
        let completer = Completer::new(&sc.incomplete, &ann);
        completer.complete(&model, seed).unwrap()
    }

    #[test]
    fn completion_restores_cardinality() {
        let sc = scenario(0.5, 0.5, 21);
        let out = complete_scenario(&sc, 21);
        let complete_rows = {
            // true join size = |tb| of the complete database
            sc.complete.table("tb").unwrap().n_rows()
        };
        let got = out.join.n_rows();
        // With 30% known TFs + predicted TFs the completed join should land
        // near the true size — far closer than the incomplete join.
        let incomplete_rows = sc.incomplete.table("tb").unwrap().n_rows();
        let err_completed = (got as f64 - complete_rows as f64).abs();
        let err_incomplete = (incomplete_rows as f64 - complete_rows as f64).abs();
        assert!(
            err_completed < err_incomplete * 0.5,
            "cardinality not corrected: completed {got}, incomplete {incomplete_rows}, true {complete_rows}"
        );
    }

    #[test]
    fn completion_reduces_bias() {
        let sc = scenario(0.4, 0.7, 22);
        let out = complete_scenario(&sc, 22);
        let value = sc.bias_value.clone().unwrap();
        let frac = |t: &Table, col: &str| {
            let i = t.resolve(col).unwrap();
            (0..t.n_rows())
                .filter(|&r| t.value(r, i).to_string() == value)
                .count() as f64
                / t.n_rows().max(1) as f64
        };
        let true_frac = frac(sc.complete.table("tb").unwrap(), "b");
        let inc_frac = frac(sc.incomplete.table("tb").unwrap(), "b");
        let comp_frac = frac(&out.join, "tb.b");
        let before = (true_frac - inc_frac).abs();
        let after = (true_frac - comp_frac).abs();
        assert!(
            after < before,
            "bias not reduced: true {true_frac:.3}, incomplete {inc_frac:.3}, completed {comp_frac:.3}"
        );
    }

    #[test]
    fn synthesized_rows_are_flagged() {
        let sc = scenario(0.5, 0.5, 23);
        let out = complete_scenario(&sc, 23);
        let syn = out.synthesized_for("tb").unwrap();
        let n_syn = syn.iter().filter(|&&b| b).count();
        assert!(n_syn > 0, "expected synthesized tuples");
        assert_eq!(out.n_synthesized(), n_syn);
        // Evidence table rows are never synthesized on this path.
        assert!(out.synthesized_for("ta").unwrap().iter().all(|&b| !b));
        // Synthesized rows have NULL child keys (no replacement for the
        // incomplete last table).
        let id_idx = out.join.resolve("tb.id").unwrap();
        for (r, &s) in syn.iter().enumerate() {
            assert_eq!(out.join.value(r, id_idx).is_null(), s);
        }
    }

    #[test]
    fn known_tuple_factors_are_respected() {
        let sc = scenario(0.5, 0.3, 24);
        let out = complete_scenario(&sc, 24);
        // Where __tf_tb was known, the per-parent child count in the
        // completed join must equal it exactly.
        let ta = sc.incomplete.table("ta").unwrap();
        let tf_idx = ta.resolve("__tf_tb").unwrap();
        let id_idx = ta.resolve("id").unwrap();
        let join_pid = out.join.resolve("ta.id").unwrap();
        let mut got: HashMap<i64, i64> = HashMap::new();
        for r in 0..out.join.n_rows() {
            *got.entry(out.join.value(r, join_pid).as_i64().unwrap())
                .or_insert(0) += 1;
        }
        let mut checked = 0;
        for r in 0..ta.n_rows() {
            if let Some(tf) = ta.value(r, tf_idx).as_i64() {
                let pid = ta.value(r, id_idx).as_i64().unwrap();
                assert_eq!(got.get(&pid).copied().unwrap_or(0), tf, "parent {pid}");
                checked += 1;
            }
        }
        assert!(checked > 10, "too few known TFs exercised ({checked})");
    }

    #[test]
    fn featurizer_distinguishes_categories() {
        let mut t = Table::new(
            "x",
            vec![
                Field::new("c", restore_db::DataType::Str),
                Field::new("v", restore_db::DataType::Float),
            ],
        );
        t.push_row(&[Value::str("a"), Value::Float(1.0)]).unwrap();
        t.push_row(&[Value::str("b"), Value::Float(100.0)]).unwrap();
        let enc_c = AttrEncoder::fit(t.column_by_name("c").unwrap(), 8);
        let enc_v = AttrEncoder::fit(t.column_by_name("v").unwrap(), 8);
        let modeled = vec![("c", &enc_c), ("v", &enc_v)];
        let f = Featurizer::fit(&t, &modeled).unwrap();
        let pts = f.features_of_table(&t).unwrap();
        assert_eq!(pts.len(), 2);
        assert_ne!(pts[0], pts[1]);
        // A query equal to row 0's values maps onto row 0's features.
        let q = f.features_of_values(&[&Value::str("a"), &Value::Float(1.0)]);
        assert_eq!(q, pts[0]);
    }
}
