//! Error type for the ReStore core.

use std::fmt;

use restore_db::DbError;

/// Errors raised by the completion engine.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// Propagated relational-engine error.
    Db(DbError),
    /// Not enough overlapping data to train a model on a path.
    InsufficientData(String),
    /// No completion model available for the request.
    NoModel(String),
    /// No valid completion path exists.
    NoPath(String),
    /// Invalid request / configuration.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Db(e) => write!(f, "database error: {e}"),
            CoreError::InsufficientData(m) => write!(f, "insufficient training data: {m}"),
            CoreError::NoModel(m) => write!(f, "no completion model: {m}"),
            CoreError::NoPath(m) => write!(f, "no completion path: {m}"),
            CoreError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;
