//! The serializable query surface: JSON encodings of [`Query`] requests and
//! query results, shared by the `restore-serve` HTTP front-end, its client,
//! and the serving tests (which pin HTTP responses bit-identical to direct
//! [`Snapshot`](crate::Snapshot) execution).
//!
//! Built on `restore-util`'s hand-rolled JSON module — no serde. The wire
//! format is compact and closed over the SPJA query algebra:
//!
//! ```json
//! {
//!   "tables": ["neighborhood", "apartment"],
//!   "filter": {"cmp": ["ge", {"col": "rent"}, {"lit": 2000}]},
//!   "group_by": ["state"],
//!   "aggregates": [{"fn": "avg", "col": "rent"}],
//!   "seed": 7,
//!   "confidence": {"kind": "avg", "table": "apartment",
//!                  "column": "rent", "level": 0.95}
//! }
//! ```
//!
//! Scalars: JSON `null` ↔ [`Value::Null`], strings ↔ [`Value::Str`], and
//! numbers decode as [`Value::Int`] when integral, [`Value::Float`]
//! otherwise — SQL comparisons widen ints to floats, so query semantics do
//! not depend on the distinction. Non-finite floats encode as `null` (JSON
//! has no NaN); finite floats use Rust's shortest round-trip rendering, so
//! a response carries the *exact* bits of the aggregate it reports.

use restore_db::{Agg, ArithOp, CmpOp, Expr, Query, QueryResult, Table, Value};
use restore_util::json::{escape, parse, JsonValue, ToJson};

use crate::confidence::{ConfidenceInterval, ConfidenceQuery};

/// A malformed wire document; the message is safe to return to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// One `POST /v1/{tenant}/query` body: the query, the determinism seed, and
/// an optional confidence-interval request piggybacked on the same
/// completed join.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    pub query: Query,
    pub seed: u64,
    pub confidence: Option<ConfidenceSpec>,
}

/// A §6 confidence-interval request riding along with a query.
#[derive(Clone, Debug)]
pub struct ConfidenceSpec {
    pub query: ConfidenceQuery,
    pub level: f64,
}

impl QueryRequest {
    pub fn new(query: Query, seed: u64) -> Self {
        Self {
            query,
            seed,
            confidence: None,
        }
    }

    pub fn with_confidence(mut self, query: ConfidenceQuery, level: f64) -> Self {
        self.confidence = Some(ConfidenceSpec { query, level });
        self
    }

    /// Parses a request body.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Some(doc) = parse(body) else {
            return err("request body is not valid JSON");
        };
        let tables = match doc.get("tables").and_then(JsonValue::as_array) {
            Some(ts) if !ts.is_empty() => ts
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| WireError("tables entries must be strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return err("request needs a non-empty \"tables\" array"),
        };
        let mut query = Query::new(tables);
        if let Some(f) = doc.get("filter") {
            if *f != JsonValue::Null {
                query.filter = Some(expr_from_wire(f)?);
            }
        }
        if let Some(g) = doc.get("group_by") {
            let Some(cols) = g.as_array() else {
                return err("\"group_by\" must be an array of column names");
            };
            for c in cols {
                match c.as_str() {
                    Some(name) => query.group_by.push(name.to_string()),
                    None => return err("\"group_by\" entries must be strings"),
                }
            }
        }
        if let Some(a) = doc.get("aggregates") {
            let Some(aggs) = a.as_array() else {
                return err("\"aggregates\" must be an array");
            };
            for agg in aggs {
                query.aggregates.push(agg_from_wire(agg)?);
            }
        }
        // Seeds travel as JSON numbers (f64): only values up to 2^53 are
        // exactly representable, and a silently rounded seed would break
        // the determinism contract — reject instead.
        let seed = match doc.get("seed") {
            None => 0,
            Some(v) => match v.as_f64() {
                Some(s) if s >= 0.0 && s.fract() == 0.0 && s < 9_007_199_254_740_992.0 => s as u64,
                _ => return err("\"seed\" must be a non-negative integer below 2^53"),
            },
        };
        let confidence = match doc.get("confidence") {
            None | Some(JsonValue::Null) => None,
            Some(c) => Some(confidence_from_wire(c)?),
        };
        Ok(Self {
            query,
            seed,
            confidence,
        })
    }

    /// Renders the request body (the client side of the wire).
    pub fn to_json(&self) -> String {
        let mut parts = vec![format!("\"tables\":{}", self.query.tables.to_json())];
        if let Some(f) = &self.query.filter {
            parts.push(format!("\"filter\":{}", expr_to_wire(f)));
        }
        if !self.query.group_by.is_empty() {
            parts.push(format!("\"group_by\":{}", self.query.group_by.to_json()));
        }
        if !self.query.aggregates.is_empty() {
            let aggs: Vec<String> = self.query.aggregates.iter().map(agg_to_wire).collect();
            parts.push(format!("\"aggregates\":[{}]", aggs.join(",")));
        }
        parts.push(format!("\"seed\":{}", self.seed));
        if let Some(c) = &self.confidence {
            parts.push(format!("\"confidence\":{}", confidence_to_wire(c)));
        }
        format!("{{{}}}", parts.join(","))
    }
}

fn value_to_wire(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => format!("{i}"),
        Value::Float(f) => f.to_json(),
        Value::Str(s) => format!("\"{}\"", escape(s)),
    }
}

fn value_from_wire(v: &JsonValue) -> Result<Value, WireError> {
    match v {
        JsonValue::Null => Ok(Value::Null),
        JsonValue::Str(s) => Ok(Value::str(s)),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                Ok(Value::Int(*n as i64))
            } else {
                Ok(Value::Float(*n))
            }
        }
        _ => err("literals must be null, a number, or a string"),
    }
}

fn cmp_op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_op_from(name: &str) -> Result<CmpOp, WireError> {
    Ok(match name {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return err(format!("unknown comparison operator {other:?}")),
    })
}

fn arith_op_name(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "add",
        ArithOp::Sub => "sub",
        ArithOp::Mul => "mul",
        ArithOp::Div => "div",
    }
}

fn arith_op_from(name: &str) -> Result<ArithOp, WireError> {
    Ok(match name {
        "add" => ArithOp::Add,
        "sub" => ArithOp::Sub,
        "mul" => ArithOp::Mul,
        "div" => ArithOp::Div,
        other => return err(format!("unknown arithmetic operator {other:?}")),
    })
}

/// Renders a filter expression tree.
pub fn expr_to_wire(e: &Expr) -> String {
    match e {
        Expr::Col(name) => format!("{{\"col\":\"{}\"}}", escape(name)),
        Expr::Lit(v) => format!("{{\"lit\":{}}}", value_to_wire(v)),
        Expr::Cmp(a, op, b) => format!(
            "{{\"cmp\":[\"{}\",{},{}]}}",
            cmp_op_name(*op),
            expr_to_wire(a),
            expr_to_wire(b)
        ),
        Expr::And(a, b) => format!("{{\"and\":[{},{}]}}", expr_to_wire(a), expr_to_wire(b)),
        Expr::Or(a, b) => format!("{{\"or\":[{},{}]}}", expr_to_wire(a), expr_to_wire(b)),
        Expr::Not(a) => format!("{{\"not\":{}}}", expr_to_wire(a)),
        Expr::Arith(a, op, b) => format!(
            "{{\"arith\":[\"{}\",{},{}]}}",
            arith_op_name(*op),
            expr_to_wire(a),
            expr_to_wire(b)
        ),
        Expr::IsNull(a) => format!("{{\"is_null\":{}}}", expr_to_wire(a)),
    }
}

fn binary_pair(v: &JsonValue, what: &str) -> Result<(Expr, Expr), WireError> {
    let Some(pair) = v.as_array() else {
        return err(format!("{what} expects [lhs, rhs]"));
    };
    if pair.len() != 2 {
        return err(format!("{what} expects exactly two operands"));
    }
    Ok((expr_from_wire(&pair[0])?, expr_from_wire(&pair[1])?))
}

/// Parses a filter expression tree.
pub fn expr_from_wire(v: &JsonValue) -> Result<Expr, WireError> {
    let fields = v.fields();
    if fields.len() != 1 {
        return err("expressions are single-key objects like {\"col\": …}");
    }
    let (key, inner) = &fields[0];
    Ok(match key.as_str() {
        "col" => match inner.as_str() {
            Some(name) => Expr::Col(name.to_string()),
            None => return err("\"col\" expects a column name string"),
        },
        "lit" => Expr::Lit(value_from_wire(inner)?),
        "cmp" | "arith" => {
            let Some(parts) = inner.as_array() else {
                return err(format!("\"{key}\" expects [op, lhs, rhs]"));
            };
            if parts.len() != 3 {
                return err(format!("\"{key}\" expects exactly [op, lhs, rhs]"));
            }
            let Some(op) = parts[0].as_str() else {
                return err(format!("\"{key}\" operator must be a string"));
            };
            let (a, b) = (
                Box::new(expr_from_wire(&parts[1])?),
                Box::new(expr_from_wire(&parts[2])?),
            );
            if key == "cmp" {
                Expr::Cmp(a, cmp_op_from(op)?, b)
            } else {
                Expr::Arith(a, arith_op_from(op)?, b)
            }
        }
        "and" => {
            let (a, b) = binary_pair(inner, "\"and\"")?;
            Expr::And(Box::new(a), Box::new(b))
        }
        "or" => {
            let (a, b) = binary_pair(inner, "\"or\"")?;
            Expr::Or(Box::new(a), Box::new(b))
        }
        "not" => Expr::Not(Box::new(expr_from_wire(inner)?)),
        "is_null" => Expr::IsNull(Box::new(expr_from_wire(inner)?)),
        other => return err(format!("unknown expression kind {other:?}")),
    })
}

/// Renders an aggregate spec.
pub fn agg_to_wire(agg: &Agg) -> String {
    match agg {
        Agg::CountStar => "{\"fn\":\"count_star\"}".to_string(),
        Agg::Count(c) => format!("{{\"fn\":\"count\",\"col\":\"{}\"}}", escape(c)),
        Agg::Sum(c) => format!("{{\"fn\":\"sum\",\"col\":\"{}\"}}", escape(c)),
        Agg::Avg(c) => format!("{{\"fn\":\"avg\",\"col\":\"{}\"}}", escape(c)),
        Agg::Min(c) => format!("{{\"fn\":\"min\",\"col\":\"{}\"}}", escape(c)),
        Agg::Max(c) => format!("{{\"fn\":\"max\",\"col\":\"{}\"}}", escape(c)),
    }
}

/// Parses an aggregate spec.
pub fn agg_from_wire(v: &JsonValue) -> Result<Agg, WireError> {
    let Some(name) = v.get("fn").and_then(JsonValue::as_str) else {
        return err("aggregates look like {\"fn\": \"avg\", \"col\": …}");
    };
    if name == "count_star" {
        return Ok(Agg::CountStar);
    }
    let Some(col) = v.get("col").and_then(JsonValue::as_str) else {
        return err(format!("aggregate {name:?} needs a \"col\""));
    };
    let col = col.to_string();
    Ok(match name {
        "count" => Agg::Count(col),
        "sum" => Agg::Sum(col),
        "avg" => Agg::Avg(col),
        "min" => Agg::Min(col),
        "max" => Agg::Max(col),
        other => return err(format!("unknown aggregate {other:?}")),
    })
}

fn confidence_to_wire(spec: &ConfidenceSpec) -> String {
    let (kind, table, column, value) = match &spec.query {
        ConfidenceQuery::CountFraction {
            table,
            column,
            value,
        } => ("count_fraction", table, column, Some(value)),
        ConfidenceQuery::Avg { table, column } => ("avg", table, column, None),
        ConfidenceQuery::Sum { table, column } => ("sum", table, column, None),
    };
    let mut parts = vec![
        format!("\"kind\":\"{kind}\""),
        format!("\"table\":\"{}\"", escape(table)),
        format!("\"column\":\"{}\"", escape(column)),
    ];
    if let Some(v) = value {
        parts.push(format!("\"value\":\"{}\"", escape(v)));
    }
    parts.push(format!("\"level\":{}", spec.level.to_json()));
    format!("{{{}}}", parts.join(","))
}

fn confidence_from_wire(v: &JsonValue) -> Result<ConfidenceSpec, WireError> {
    let field = |key: &str| -> Result<String, WireError> {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| WireError(format!("confidence spec needs a string \"{key}\"")))
    };
    let kind = field("kind")?;
    let (table, column) = (field("table")?, field("column")?);
    let query = match kind.as_str() {
        "count_fraction" => ConfidenceQuery::CountFraction {
            table,
            column,
            value: field("value")?,
        },
        "avg" => ConfidenceQuery::Avg { table, column },
        "sum" => ConfidenceQuery::Sum { table, column },
        other => return err(format!("unknown confidence kind {other:?}")),
    };
    let level = match v.get("level") {
        None => 0.95,
        Some(l) => match l.as_f64() {
            Some(l) if l > 0.0 && l < 1.0 => l,
            _ => return err("confidence \"level\" must be in (0, 1)"),
        },
    };
    Ok(ConfidenceSpec { query, level })
}

/// Renders a table's rows as a comma-joined list of JSON arrays — the one
/// row encoding both response surfaces share, so their byte-stability
/// contracts cannot drift apart.
fn rows_json(table: &Table) -> String {
    let mut rows = Vec::with_capacity(table.n_rows());
    for r in 0..table.n_rows() {
        let cells: Vec<String> = (0..table.n_cols())
            .map(|c| value_to_wire(&table.value(r, c)))
            .collect();
        rows.push(format!("[{}]", cells.join(",")));
    }
    rows.join(",")
}

/// Renders a [`QueryResult`] (plus an optional confidence interval) as the
/// `POST /v1/{tenant}/query` response body. Finite floats use shortest
/// round-trip rendering, so equal results produce byte-equal bodies — the
/// serving tests' bit-equality contract rides on this.
pub fn query_response_json(result: &QueryResult, ci: Option<&ConfidenceInterval>) -> String {
    let table = &result.table;
    let columns: Vec<String> = table.fields().iter().map(|f| f.name.clone()).collect();
    let scalar = match result.scalar() {
        Some(s) => s.to_json(),
        None => "null".to_string(),
    };
    let confidence = match ci {
        Some(ci) => confidence_interval_json(ci),
        None => "null".to_string(),
    };
    format!(
        "{{\"group_cols\":{},\"columns\":{},\"rows\":[{}],\"scalar\":{},\"confidence\":{}}}",
        result.group_cols,
        columns.to_json(),
        rows_json(table),
        scalar,
        confidence
    )
}

/// Renders a [`ConfidenceInterval`].
pub fn confidence_interval_json(ci: &ConfidenceInterval) -> String {
    let theoretical = match ci.theoretical {
        Some((lo, hi)) => format!("[{},{}]", lo.to_json(), hi.to_json()),
        None => "null".to_string(),
    };
    format!(
        "{{\"lo\":{},\"hi\":{},\"estimate\":{},\"theoretical\":{}}}",
        ci.lo.to_json(),
        ci.hi.to_json(),
        ci.estimate.to_json(),
        theoretical
    )
}

/// Renders a full table (the `GET /v1/{tenant}/tables/{name}` response):
/// schema plus every row, in the table's own column order.
pub fn table_json(table: &Table) -> String {
    let columns: Vec<String> = table
        .fields()
        .iter()
        .map(|f| {
            format!(
                "{{\"name\":\"{}\",\"dtype\":\"{}\"}}",
                escape(&f.name),
                f.dtype
            )
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"n_rows\":{},\"columns\":[{}],\"rows\":[{}]}}",
        escape(table.name()),
        table.n_rows(),
        columns.join(","),
        rows_json(table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::{DataType, Field};

    fn demo_request() -> QueryRequest {
        let query = Query::new(["neighborhood", "apartment"])
            .filter(
                Expr::col("rent")
                    .ge(Expr::lit(2000.0))
                    .and(Expr::col("state").eq(Expr::lit("CA")).not())
                    .or(Expr::IsNull(Box::new(Expr::col("rent")))),
            )
            .group_by(["state"])
            .aggregate(Agg::Avg("rent".into()))
            .aggregate(Agg::CountStar);
        QueryRequest::new(query, 7).with_confidence(
            ConfidenceQuery::CountFraction {
                table: "apartment".into(),
                column: "room_type".into(),
                value: "Private room".into(),
            },
            0.9,
        )
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = demo_request();
        let body = req.to_json();
        let parsed = QueryRequest::from_json(&body).expect("parse");
        // Query/Expr have no PartialEq; canonical JSON is the identity.
        assert_eq!(parsed.to_json(), body);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.query.tables, req.query.tables);
        assert_eq!(parsed.query.group_by, req.query.group_by);
        assert_eq!(parsed.query.aggregates, req.query.aggregates);
        let spec = parsed.confidence.expect("confidence");
        assert_eq!(spec.level, 0.9);
        assert!(matches!(spec.query, ConfidenceQuery::CountFraction { .. }));
    }

    #[test]
    fn minimal_request_defaults() {
        let req = QueryRequest::from_json(r#"{"tables":["tb"]}"#).expect("parse");
        assert_eq!(req.seed, 0);
        assert!(req.query.filter.is_none());
        assert!(req.query.aggregates.is_empty());
        assert!(req.confidence.is_none());
    }

    #[test]
    fn arithmetic_and_every_cmp_op_round_trip() {
        let e = Expr::Arith(
            Box::new(Expr::col("a")),
            ArithOp::Div,
            Box::new(Expr::lit(3i64)),
        );
        for op in ["eq", "ne", "lt", "le", "gt", "ge"] {
            let body = format!(
                "{{\"cmp\":[\"{op}\",{},{{\"lit\":null}}]}}",
                expr_to_wire(&e)
            );
            let parsed = expr_from_wire(&parse(&body).unwrap()).expect("parse");
            assert_eq!(expr_to_wire(&parsed), body);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (body, needle) in [
            ("nope", "not valid JSON"),
            ("{}", "tables"),
            (r#"{"tables":[]}"#, "non-empty"),
            (r#"{"tables":["t"],"seed":-1}"#, "seed"),
            (r#"{"tables":["t"],"seed":1.5}"#, "seed"),
            // 2^53 + 1: not exactly representable as f64 — a silent
            // round-down would serve the wrong seed.
            (r#"{"tables":["t"],"seed":9007199254740993}"#, "seed"),
            (r#"{"tables":["t"],"seed":1e300}"#, "seed"),
            (
                r#"{"tables":["t"],"filter":{"zap":1}}"#,
                "unknown expression",
            ),
            (
                r#"{"tables":["t"],"aggregates":[{"fn":"median","col":"x"}]}"#,
                "unknown aggregate",
            ),
            (
                r#"{"tables":["t"],"confidence":{"kind":"avg","table":"t","column":"c","level":2}}"#,
                "level",
            ),
        ] {
            let e = QueryRequest::from_json(body).expect_err(body);
            assert!(e.0.contains(needle), "{body}: {e}");
        }
    }

    #[test]
    fn response_encodes_values_and_scalar() {
        let mut t = Table::new(
            "out",
            vec![
                Field::new("state", DataType::Str),
                Field::new("avg_rent", DataType::Float),
            ],
        );
        t.push_row(&[Value::str("CA"), Value::Float(0.1 + 0.2)])
            .unwrap();
        t.push_row(&[Value::Null, Value::Float(f64::NAN)]).unwrap();
        let res = QueryResult {
            table: t,
            group_cols: 1,
        };
        let body = query_response_json(&res, None);
        // Shortest-round-trip float rendering preserves the exact bits.
        assert!(body.contains("0.30000000000000004"), "{body}");
        assert!(body.contains("[null,null]"), "NaN and Null encode as null");
        assert!(body.contains("\"group_cols\":1"));
        assert!(body.contains("\"scalar\":null"));
        let reparsed = parse(&body).expect("response is valid JSON");
        assert_eq!(
            reparsed.get("columns").unwrap().as_array().unwrap()[0].as_str(),
            Some("state")
        );
    }

    #[test]
    fn scalar_response_reports_the_single_aggregate() {
        let mut t = Table::new("out", vec![Field::new("count", DataType::Int)]);
        t.push_row(&[Value::Int(42)]).unwrap();
        let res = QueryResult {
            table: t,
            group_cols: 0,
        };
        let ci = ConfidenceInterval {
            lo: 40.0,
            hi: 44.5,
            estimate: 42.0,
            theoretical: Some((0.0, 100.0)),
        };
        let body = query_response_json(&res, Some(&ci));
        assert!(body.contains("\"scalar\":42"), "{body}");
        assert!(body.contains("\"lo\":40"), "{body}");
        assert!(body.contains("\"theoretical\":[0,100]"), "{body}");
    }

    #[test]
    fn table_json_carries_schema_and_rows() {
        let mut t = Table::new(
            "tb",
            vec![
                Field::new("id", DataType::Int),
                Field::new("b", DataType::Str),
            ],
        );
        t.push_row(&[Value::Int(1), Value::str("b\"1")]).unwrap();
        let body = table_json(&t);
        assert!(body.contains("\"name\":\"tb\""));
        assert!(body.contains("\"dtype\":\"INT\""));
        assert!(body.contains("[1,\"b\\\"1\"]"), "{body}");
        assert!(parse(&body).is_some(), "valid JSON: {body}");
    }
}
