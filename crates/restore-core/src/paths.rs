//! Completion paths: linear chains through the FK schema graph from an
//! evidence table to the incomplete target table (§3.2, §5).

use restore_db::{Database, DbError, DbResult, PathStep};

use crate::annotation::SchemaAnnotation;

/// A linear chain `T1 — T2 — … — Tm` in the schema graph; `T1` is the
/// evidence root, `Tm` the table being completed.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletionPath {
    tables: Vec<String>,
    steps: Vec<PathStep>,
}

impl CompletionPath {
    /// Builds a path from an ordered table list; every consecutive pair must
    /// be connected by an FK edge.
    pub fn from_tables(db: &Database, tables: &[String]) -> DbResult<Self> {
        if tables.is_empty() {
            return Err(DbError::InvalidJoin("empty completion path".into()));
        }
        let mut steps = Vec::with_capacity(tables.len().saturating_sub(1));
        for w in tables.windows(2) {
            let step = db.edge_between(&w[0], &w[1]).ok_or_else(|| {
                DbError::InvalidJoin(format!("no FK edge between {} and {}", w[0], w[1]))
            })?;
            steps.push(step);
        }
        Ok(Self {
            tables: tables.to_vec(),
            steps,
        })
    }

    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The evidence root `T1`.
    pub fn root(&self) -> &str {
        &self.tables[0]
    }

    /// The completed table `Tm`.
    pub fn target(&self) -> &str {
        self.tables.last().unwrap()
    }

    /// A short human-readable rendering, e.g.
    /// `neighborhood→apartment`.
    pub fn describe(&self) -> String {
        self.tables.join("→")
    }

    /// Extends the path by appending `table` (must connect to the last).
    pub fn extend(&self, db: &Database, table: &str) -> DbResult<Self> {
        let mut tables = self.tables.clone();
        tables.push(table.to_string());
        Self::from_tables(db, &tables)
    }
}

/// Enumerates candidate completion paths for `target`: simple chains of
/// length ≤ `max_len` whose root is a **complete** table and whose end is
/// `target`. Paths may pass through incomplete tables (e.g. m:n link tables
/// that lost tuples), exactly like the long movie paths of §7.3.
pub fn enumerate_paths(
    db: &Database,
    annotation: &SchemaAnnotation,
    target: &str,
    max_len: usize,
) -> Vec<CompletionPath> {
    let mut out = Vec::new();
    // DFS backwards from the target.
    let mut stack: Vec<Vec<String>> = vec![vec![target.to_string()]];
    while let Some(chain) = stack.pop() {
        let head = chain.last().unwrap().clone();
        // `chain` is target→…→head; the root candidate is `head`.
        if chain.len() >= 2 && annotation.is_complete(&head) {
            let tables: Vec<String> = chain.iter().rev().cloned().collect();
            if let Ok(p) = CompletionPath::from_tables(db, &tables) {
                out.push(p);
            }
        }
        if chain.len() >= max_len {
            continue;
        }
        for step in db.neighbors(&head) {
            // Continue the walk *away* from the target.
            let nxt = step.to_table();
            if chain.iter().any(|t| t == nxt) {
                continue;
            }
            let mut next_chain = chain.clone();
            next_chain.push(nxt.to_string());
            stack.push(next_chain);
        }
    }
    // Prefer short paths, deterministic order.
    out.sort_by(|a, b| {
        a.len()
            .cmp(&b.len())
            .then_with(|| a.describe().cmp(&b.describe()))
    });
    out.dedup_by(|a, b| a.tables == b.tables);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::{DataType, Field, ForeignKey, Table};

    fn movie_like_db() -> Database {
        let mut db = Database::new();
        for t in [
            "movie",
            "director",
            "company",
            "movie_director",
            "movie_company",
        ] {
            let mut fields = vec![Field::new("id", DataType::Int)];
            if t.starts_with("movie_") {
                let entity = t.trim_start_matches("movie_");
                fields.push(Field::new("movie_id", DataType::Int));
                fields.push(Field::new(format!("{entity}_id"), DataType::Int));
            }
            db.add_table(Table::new(t, fields));
        }
        db.add_foreign_key(ForeignKey::new("movie_director", "movie_id", "movie", "id"))
            .unwrap();
        db.add_foreign_key(ForeignKey::new(
            "movie_director",
            "director_id",
            "director",
            "id",
        ))
        .unwrap();
        db.add_foreign_key(ForeignKey::new("movie_company", "movie_id", "movie", "id"))
            .unwrap();
        db.add_foreign_key(ForeignKey::new(
            "movie_company",
            "company_id",
            "company",
            "id",
        ))
        .unwrap();
        db
    }

    #[test]
    fn path_construction_validates_edges() {
        let db = movie_like_db();
        let ok = CompletionPath::from_tables(
            &db,
            &["director".into(), "movie_director".into(), "movie".into()],
        )
        .unwrap();
        assert_eq!(ok.root(), "director");
        assert_eq!(ok.target(), "movie");
        assert_eq!(ok.steps().len(), 2);
        assert!(ok.steps()[0].fan_out, "director→movie_director fans out");
        assert!(!ok.steps()[1].fan_out, "movie_director→movie is n:1");
        assert!(CompletionPath::from_tables(&db, &["director".into(), "movie".into()]).is_err());
    }

    #[test]
    fn enumerate_finds_all_roots() {
        let db = movie_like_db();
        let ann = SchemaAnnotation::with_incomplete(["movie", "movie_director", "movie_company"]);
        let paths = enumerate_paths(&db, &ann, "movie", 5);
        let describes: Vec<String> = paths.iter().map(|p| p.describe()).collect();
        assert!(describes.contains(&"director→movie_director→movie".to_string()));
        assert!(describes.contains(&"company→movie_company→movie".to_string()));
        // No path may start at an incomplete table.
        for p in &paths {
            assert!(
                ann.is_complete(p.root()),
                "path rooted at incomplete table: {}",
                p.describe()
            );
        }
    }

    #[test]
    fn long_paths_span_five_tables() {
        // M4-style: complete company evidence for incomplete director.
        let db = movie_like_db();
        let ann = SchemaAnnotation::with_incomplete([
            "director",
            "movie",
            "movie_director",
            "movie_company",
        ]);
        let paths = enumerate_paths(&db, &ann, "director", 5);
        assert!(
            paths
                .iter()
                .any(|p| p.describe() == "company→movie_company→movie→movie_director→director"),
            "expected the 5-table path, got {:?}",
            paths.iter().map(|p| p.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn max_len_bounds_enumeration() {
        let db = movie_like_db();
        let ann = SchemaAnnotation::with_incomplete(["director"]);
        let paths = enumerate_paths(&db, &ann, "director", 3);
        assert!(paths.iter().all(|p| p.len() <= 3));
    }

    #[test]
    fn extend_appends_connected_table() {
        let db = movie_like_db();
        let p =
            CompletionPath::from_tables(&db, &["company".into(), "movie_company".into()]).unwrap();
        let q = p.extend(&db, "movie").unwrap();
        assert_eq!(q.target(), "movie");
        assert!(p.extend(&db, "director").is_err());
    }
}
