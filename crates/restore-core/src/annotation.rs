//! Schema annotation (§2.2, step 1 of Fig. 1): the user marks which tables
//! are incomplete. Tuple-factor knowledge arrives as `__tf_<child>` columns
//! on parent tables (NULL where the factor is unknown), mirroring the
//! `TFApartments = ?` column of Fig. 1a.

use std::collections::BTreeSet;

use restore_db::{Database, Table};

/// Name of the tuple-factor metadata column for an incomplete child table.
pub fn tf_column_name(child_table: &str) -> String {
    format!("__tf_{child_table}")
}

/// True for helper columns that are not part of the logical schema.
pub fn is_tf_column(name: &str) -> bool {
    name.rsplit('.').next().unwrap_or(name).starts_with("__tf_")
}

/// True for key columns (primary `id` / foreign `*_id`) — completion models
/// never synthesize keys (§4.2).
pub fn is_key_column(name: &str) -> bool {
    let base = name.rsplit('.').next().unwrap_or(name);
    base == "id" || base.ends_with("_id")
}

/// The non-key, non-metadata columns a completion model learns for a table.
pub fn modeled_columns(table: &Table) -> Vec<String> {
    table
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .filter(|n| !is_key_column(n) && !is_tf_column(n))
        .collect()
}

/// Which tables of a database are complete / incomplete.
#[derive(Clone, Debug, Default)]
pub struct SchemaAnnotation {
    incomplete: BTreeSet<String>,
}

impl SchemaAnnotation {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an annotation marking the listed tables incomplete.
    pub fn with_incomplete<I, S>(tables: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            incomplete: tables.into_iter().map(Into::into).collect(),
        }
    }

    pub fn mark_incomplete(&mut self, table: impl Into<String>) {
        self.incomplete.insert(table.into());
    }

    pub fn mark_complete(&mut self, table: &str) {
        self.incomplete.remove(table);
    }

    pub fn is_incomplete(&self, table: &str) -> bool {
        self.incomplete.contains(table)
    }

    pub fn is_complete(&self, table: &str) -> bool {
        !self.is_incomplete(table)
    }

    pub fn incomplete_tables(&self) -> impl Iterator<Item = &str> {
        self.incomplete.iter().map(String::as_str)
    }

    /// Complete tables of `db` under this annotation.
    pub fn complete_tables<'a>(&'a self, db: &'a Database) -> impl Iterator<Item = &'a str> + 'a {
        db.table_names().filter(move |t| self.is_complete(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_db::{DataType, Field};

    #[test]
    fn key_and_tf_columns_are_recognized() {
        assert!(is_key_column("id"));
        assert!(is_key_column("apartment.landlord_id"));
        assert!(!is_key_column("price"));
        assert!(is_tf_column("__tf_apartment"));
        assert!(is_tf_column("neighborhood.__tf_apartment"));
        assert!(!is_tf_column("tf_apartment"));
    }

    #[test]
    fn modeled_columns_skip_keys_and_metadata() {
        let t = Table::new(
            "apartment",
            vec![
                Field::new("id", DataType::Int),
                Field::new("neighborhood_id", DataType::Int),
                Field::new("price", DataType::Float),
                Field::new("room_type", DataType::Str),
                Field::new("__tf_review", DataType::Int),
            ],
        );
        assert_eq!(
            modeled_columns(&t),
            vec!["price".to_string(), "room_type".to_string()]
        );
    }

    #[test]
    fn annotation_tracks_incompleteness() {
        let mut a = SchemaAnnotation::new();
        assert!(a.is_complete("apartment"));
        a.mark_incomplete("apartment");
        assert!(a.is_incomplete("apartment"));
        a.mark_complete("apartment");
        assert!(a.is_complete("apartment"));
        let b = SchemaAnnotation::with_incomplete(["x", "y"]);
        assert_eq!(b.incomplete_tables().count(), 2);
    }
}
