//! Versioned on-disk snapshot format: instant cold starts for sealed
//! snapshots.
//!
//! A snapshot file is `magic ++ version ++ meta ++ payload ++ checksum`:
//!
//! ```text
//! offset  size     content
//! 0       8        magic "RSTRSNAP"
//! 8       4        format version, u32 LE (currently 1)
//! 12      8        meta length in bytes, u64 LE
//! 20      m        meta JSON (UTF-8): catalog, annotation, configs,
//!                  per-model metadata + parameter shapes, selected paths
//! 20+m    p        binary payload: column sections per table (catalog
//!                  order), then raw little-endian f32 weight blocks per
//!                  model (sorted path order, authoritative unpadded
//!                  ParamStore layout)
//! 20+m+p  8        FNV-1a 64 checksum over ALL preceding bytes, u64 LE
//! ```
//!
//! The loader does **not** deserialize trained state it can recompute:
//! encoders, context tables and network masks are deterministic functions
//! of the stored incomplete database and config, so
//! [`CompletionModel::rehydrate`] rebuilds them and then overwrites only
//! the weights. Together with path-derived synthesis seeds this makes the
//! round-trip invariant exact: `load(save(snapshot))` serves
//! **byte-identically** to the in-memory original for any `(query, seed)`.
//! The completed-join cache is deliberately not persisted — a loaded
//! snapshot starts cold and repopulates with bit-identical entries.
//!
//! Numeric fidelity in the meta JSON: `f32`/`f64` stats round-trip exactly
//! (f32→f64 promotion is exact, Rust's `Display` prints shortest
//! round-trip decimals, and parsing is correctly rounded); the u64 serve
//! seed is stored as a decimal *string* because the JSON reader funnels
//! numbers through `f64`, which loses integers above 2^53.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use restore_db::{Column, DataType, Database, Dictionary, Field, ForeignKey, Table};
use restore_util::json::{parse, JsonValue, ToJson};
use restore_util::{fnv1a64, write_atomic};

use crate::annotation::SchemaAnnotation;
use crate::cache::JoinCache;
use crate::completion::{CompleterConfig, ReplacementMode};
use crate::error::CoreError;
use crate::model::{CompletionModel, RehydratedStats, TrainConfig};
use crate::paths::CompletionPath;
use crate::restore::RestoreConfig;
use crate::selection::{BiasDirection, SelectionStrategy, SuspectedBias};
use crate::snapshot::Snapshot;

/// File magic of snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RSTRSNAP";
/// Current format version. Bump on ANY layout change — the loader refuses
/// other versions rather than misreading them.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Errors of the snapshot persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The file is not a valid snapshot: bad magic, failed checksum,
    /// truncation, or malformed metadata.
    Corrupt(String),
    /// The file is a snapshot, but of a format version this build does not
    /// speak.
    UnsupportedVersion(u32),
    /// Structural reconstruction failed (schema/model rebuild).
    Core(CoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build speaks {SNAPSHOT_FORMAT_VERSION})"
                )
            }
            PersistError::Core(e) => write!(f, "snapshot reconstruction failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CoreError> for PersistError {
    fn from(e: CoreError) -> Self {
        PersistError::Core(e)
    }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

impl Snapshot {
    /// Serializes this snapshot into the versioned on-disk format.
    /// Deterministic: the same snapshot always produces the same bytes
    /// (maps are emitted in sorted order), so re-saving an unchanged
    /// version is byte-idempotent.
    pub fn to_bytes(&self) -> Vec<u8> {
        let model_keys = self.sorted_model_keys();

        let mut payload = Vec::new();
        for name in self.db.table_names() {
            let table = self.db.table(name).expect("catalog table");
            for col in table.columns() {
                write_column(&mut payload, col);
            }
        }
        for key in &model_keys {
            let model = &self.models[key];
            for mat in model.params().values() {
                for &v in mat.data() {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
        }

        let meta = self.meta_json(&model_keys).to_json();
        let mut out = Vec::with_capacity(20 + meta.len() + payload.len() + 8);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(meta.len() as u64).to_le_bytes());
        out.extend_from_slice(meta.as_bytes());
        out.extend_from_slice(&payload);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Writes this snapshot to `path` atomically (temp file → fsync →
    /// rename → directory fsync). Returns the file size in bytes.
    pub fn save(&self, path: &Path) -> Result<u64, PersistError> {
        let bytes = self.to_bytes();
        write_atomic(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and reconstructs a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, PersistError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Reconstructs a snapshot from serialized bytes, validating magic,
    /// version and checksum before touching any content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, PersistError> {
        if bytes.len() < 28 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        if &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic (not a snapshot file)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let meta_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let meta_end = 20usize
            .checked_add(meta_len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| corrupt("meta length exceeds file size"))?;
        let meta_str = std::str::from_utf8(&body[20..meta_end])
            .map_err(|_| corrupt("meta is not valid UTF-8"))?;
        let meta = parse(meta_str).ok_or_else(|| corrupt("meta is not valid JSON"))?;
        let mut cur = Cursor::new(&body[meta_end..]);

        // ---- catalog -----------------------------------------------------
        let mut db = Database::new();
        for tmeta in arr(&meta, "tables")? {
            let name = str_field(tmeta, "name")?;
            let n_rows = usize_field(tmeta, "n_rows")?;
            let mut fields = Vec::new();
            let mut columns = Vec::new();
            for fmeta in arr(tmeta, "fields")? {
                let dtype = parse_dtype(str_field(fmeta, "dtype")?)?;
                fields.push(Field::new(str_field(fmeta, "name")?, dtype));
                columns.push(read_column(&mut cur, dtype, n_rows)?);
            }
            let table = Table::from_columns(name, fields, columns)
                .map_err(|e| corrupt(format!("table {name}: {e}")))?;
            db.add_table(table);
        }
        for fkmeta in arr(&meta, "foreign_keys")? {
            let fk = ForeignKey::new(
                str_field(fkmeta, "child")?,
                str_field(fkmeta, "child_col")?,
                str_field(fkmeta, "parent")?,
                str_field(fkmeta, "parent_col")?,
            );
            db.add_foreign_key(fk)
                .map_err(|e| corrupt(format!("foreign key: {e}")))?;
        }

        // ---- annotation + config ----------------------------------------
        let incomplete: Vec<String> = arr(&meta, "incomplete")?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Option<_>>()
            .ok_or_else(|| corrupt("incomplete table list"))?;
        let annotation = SchemaAnnotation::with_incomplete(incomplete);
        let config = config_from_json(field(&meta, "config")?)?;
        let base_seed = match field(&meta, "serve_seed")? {
            JsonValue::Null => None,
            JsonValue::Str(s) => Some(
                s.parse::<u64>()
                    .map_err(|_| corrupt(format!("serve_seed {s:?} is not a u64")))?,
            ),
            _ => return Err(corrupt("serve_seed must be a string or null")),
        };

        // ---- models (weight blocks follow the catalog in the payload) ---
        let mut models = HashMap::new();
        for mmeta in arr(&meta, "models")? {
            let tables: Vec<String> = arr(mmeta, "tables")?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Option<_>>()
                .ok_or_else(|| corrupt("model path tables"))?;
            let train = train_from_json(field(mmeta, "train")?)?;
            // Total scalar count across all parameter blocks: the weights
            // are handed to the model as one raw LE byte slice and stream
            // straight into the rebuilt store — no intermediate matrices.
            let mut scalars = 0usize;
            for shape in arr(mmeta, "shapes")? {
                let dims = shape
                    .as_array()
                    .filter(|d| d.len() == 2)
                    .ok_or_else(|| corrupt("parameter shape"))?;
                let rows = json_usize(&dims[0], "shape rows")?;
                let cols = json_usize(&dims[1], "shape cols")?;
                scalars = rows
                    .checked_mul(cols)
                    .and_then(|n| scalars.checked_add(n))
                    .ok_or_else(|| corrupt("parameter shape overflow"))?;
            }
            let raw = cur.take(
                scalars
                    .checked_mul(4)
                    .ok_or_else(|| corrupt("parameter shape overflow"))?,
            )?;
            let stats = RehydratedStats {
                train_losses: f32_list(mmeta, "train_losses")?,
                val_per_attr: f32_list(mmeta, "val_per_attr")?,
                val_loss: num_field(mmeta, "val_loss")? as f32,
                train_seconds: num_field(mmeta, "train_seconds")?,
            };
            let path = CompletionPath::from_tables(&db, &tables)
                .map_err(|e| corrupt(format!("model path {tables:?}: {e}")))?;
            let model = CompletionModel::rehydrate(&db, &annotation, path, &train, raw, stats)?;
            models.insert(tables, Arc::new(model));
        }
        if cur.pos != cur.buf.len() {
            return Err(corrupt(format!(
                "{} unconsumed payload bytes",
                cur.buf.len() - cur.pos
            )));
        }

        let selected = chains_from_json(&meta, "selected")?;
        let forced = chains_from_json(&meta, "forced")?;
        let suspected = suspected_from_json(&meta)?;

        // Loaded snapshots start with a cold cache; sealed seeds make the
        // repopulated entries bit-identical to the original's.
        let cache = if base_seed.is_some() {
            JoinCache::with_budget(config.cache_budget_bytes)
        } else {
            JoinCache::new()
        };
        Ok(Snapshot {
            db: Arc::new(db),
            annotation,
            config,
            models,
            selected,
            forced,
            suspected,
            cache,
            base_seed,
        })
    }

    fn sorted_model_keys(&self) -> Vec<Vec<String>> {
        let mut keys: Vec<Vec<String>> = self.models.keys().cloned().collect();
        keys.sort();
        keys
    }

    fn meta_json(&self, model_keys: &[Vec<String>]) -> JsonValue {
        let tables: Vec<JsonValue> = self
            .db
            .table_names()
            .map(|name| {
                let t = self.db.table(name).expect("catalog table");
                let fields: Vec<JsonValue> = t
                    .fields()
                    .iter()
                    .map(|f| {
                        obj(vec![
                            ("name", jstr(&f.name)),
                            ("dtype", jstr(dtype_name(f.dtype))),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("name", jstr(name)),
                    ("n_rows", jus(t.n_rows())),
                    ("fields", JsonValue::Arr(fields)),
                ])
            })
            .collect();
        let foreign_keys: Vec<JsonValue> = self
            .db
            .foreign_keys()
            .iter()
            .map(|fk| {
                obj(vec![
                    ("child", jstr(&fk.child)),
                    ("child_col", jstr(&fk.child_col)),
                    ("parent", jstr(&fk.parent)),
                    ("parent_col", jstr(&fk.parent_col)),
                ])
            })
            .collect();
        let models: Vec<JsonValue> = model_keys
            .iter()
            .map(|key| {
                let m = &self.models[key];
                let shapes: Vec<JsonValue> = m
                    .params()
                    .values()
                    .iter()
                    .map(|mat| {
                        let (r, c) = mat.shape();
                        JsonValue::Arr(vec![jus(r), jus(c)])
                    })
                    .collect();
                obj(vec![
                    ("tables", jstr_arr(key)),
                    ("train", train_to_json(m.train_config())),
                    ("train_losses", jf32_arr(&m.train_losses)),
                    ("val_per_attr", jf32_arr(&m.val_per_attr)),
                    ("val_loss", jnum(m.val_loss as f64)),
                    ("train_seconds", jnum(m.train_seconds)),
                    ("shapes", JsonValue::Arr(shapes)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("format", jstr("restore-snapshot")),
            (
                "serve_seed",
                match self.base_seed {
                    Some(s) => jstr(&s.to_string()),
                    None => JsonValue::Null,
                },
            ),
            (
                "incomplete",
                JsonValue::Arr(
                    self.annotation
                        .incomplete_tables()
                        .map(jstr)
                        .collect::<Vec<_>>(),
                ),
            ),
            ("config", config_to_json(&self.config)),
            ("tables", JsonValue::Arr(tables)),
            ("foreign_keys", JsonValue::Arr(foreign_keys)),
            ("models", JsonValue::Arr(models)),
            ("selected", chains_to_json(&self.selected)),
            ("forced", chains_to_json(&self.forced)),
        ];
        // Optional key: suspected-bias hints. Emitted only when present so
        // hint-free snapshots keep their pre-existing byte layout (and the
        // golden fixture stays valid); old files simply lack the key.
        if !self.suspected.is_empty() {
            fields.push(("suspected", suspected_to_json(&self.suspected)));
        }
        obj(fields)
    }
}

// ---- binary column sections ---------------------------------------------

/// Column tags in the payload (one byte before each column body).
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;

fn write_bitmap(out: &mut Vec<u8>, present: impl ExactSizeIterator<Item = bool>) {
    let n = present.len();
    let mut bytes = vec![0u8; n.div_ceil(8)];
    for (i, p) in present.enumerate() {
        if p {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bytes);
}

fn write_column(out: &mut Vec<u8>, col: &Column) {
    match col {
        Column::Int(v) => {
            out.push(TAG_INT);
            write_bitmap(out, v.iter().map(Option::is_some));
            for x in v {
                out.extend_from_slice(&x.unwrap_or(0).to_le_bytes());
            }
        }
        Column::Float(v) => {
            out.push(TAG_FLOAT);
            write_bitmap(out, v.iter().map(Option::is_some));
            for x in v {
                // Bit pattern, not value: NaN payloads survive round trips.
                out.extend_from_slice(&x.unwrap_or(0.0).to_bits().to_le_bytes());
            }
        }
        Column::Str { dict, codes } => {
            out.push(TAG_STR);
            out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
            for c in 0..dict.len() {
                let s = dict.value(c as u32);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            write_bitmap(out, codes.iter().map(Option::is_some));
            for c in codes {
                out.extend_from_slice(&c.unwrap_or(0).to_le_bytes());
            }
        }
    }
}

fn read_column(
    cur: &mut Cursor<'_>,
    dtype: DataType,
    n_rows: usize,
) -> Result<Column, PersistError> {
    let tag = cur.u8()?;
    let expected = match dtype {
        DataType::Int => TAG_INT,
        DataType::Float => TAG_FLOAT,
        DataType::Str => TAG_STR,
    };
    if tag != expected {
        return Err(corrupt(format!(
            "column tag {tag} does not match declared dtype {}",
            dtype_name(dtype)
        )));
    }
    match dtype {
        DataType::Int => {
            let present = cur.bitmap(n_rows)?;
            let mut v = Vec::with_capacity(n_rows);
            for p in present {
                let x = cur.i64_le()?;
                v.push(p.then_some(x));
            }
            Ok(Column::Int(v))
        }
        DataType::Float => {
            let present = cur.bitmap(n_rows)?;
            let mut v = Vec::with_capacity(n_rows);
            for p in present {
                let x = f64::from_bits(cur.u64_le()?);
                v.push(p.then_some(x));
            }
            Ok(Column::Float(v))
        }
        DataType::Str => {
            let n_dict = cur.u32_le()? as usize;
            let mut dict = Dictionary::new();
            for i in 0..n_dict {
                let len = cur.u32_le()? as usize;
                let s = std::str::from_utf8(cur.take(len)?)
                    .map_err(|_| corrupt("dictionary entry is not UTF-8"))?;
                let code = dict.intern(s);
                if code as usize != i {
                    return Err(corrupt("duplicate dictionary entry"));
                }
            }
            let present = cur.bitmap(n_rows)?;
            let mut codes = Vec::with_capacity(n_rows);
            for p in present {
                let c = cur.u32_le()?;
                if p && c as usize >= n_dict {
                    return Err(corrupt(format!("string code {c} out of dictionary range")));
                }
                codes.push(p.then_some(c));
            }
            Ok(Column::Str { dict, codes })
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("payload truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32_le(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64_le(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64_le(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bitmap(&mut self, n: usize) -> Result<Vec<bool>, PersistError> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }
}

// ---- meta JSON helpers ---------------------------------------------------

fn jnum(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

fn jus(v: usize) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn jstr(s: &str) -> JsonValue {
    JsonValue::Str(s.to_string())
}

fn jstr_arr(items: &[String]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|s| jstr(s)).collect())
}

/// f32 values promote to f64 exactly; the shortest-round-trip printer plus
/// correctly rounded parsing makes the f32 round trip lossless.
fn jf32_arr(items: &[f32]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|&v| jnum(v as f64)).collect())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, PersistError> {
    v.get(key)
        .ok_or_else(|| corrupt(format!("missing meta field {key:?}")))
}

fn arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], PersistError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| corrupt(format!("meta field {key:?} is not an array")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, PersistError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| corrupt(format!("meta field {key:?} is not a string")))
}

fn num_field(v: &JsonValue, key: &str) -> Result<f64, PersistError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| corrupt(format!("meta field {key:?} is not a number")))
}

fn json_usize(v: &JsonValue, what: &str) -> Result<usize, PersistError> {
    v.as_f64()
        .filter(|&x| x >= 0.0 && x.fract() == 0.0)
        .map(|x| x as usize)
        .ok_or_else(|| corrupt(format!("{what} is not a non-negative integer")))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, PersistError> {
    json_usize(field(v, key)?, key)
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, PersistError> {
    match field(v, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(corrupt(format!("meta field {key:?} is not a bool"))),
    }
}

fn f32_list(v: &JsonValue, key: &str) -> Result<Vec<f32>, PersistError> {
    arr(v, key)?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| corrupt(format!("meta field {key:?} holds a non-number")))
        })
        .collect()
}

fn dtype_name(d: DataType) -> &'static str {
    match d {
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
    }
}

fn parse_dtype(s: &str) -> Result<DataType, PersistError> {
    match s {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        other => Err(corrupt(format!("unknown dtype {other:?}"))),
    }
}

fn chains_to_json(map: &HashMap<String, Vec<String>>) -> JsonValue {
    let mut entries: Vec<(&String, &Vec<String>)> = map.iter().collect();
    entries.sort_by_key(|(k, _)| k.as_str());
    JsonValue::Arr(
        entries
            .into_iter()
            .map(|(k, chain)| JsonValue::Arr(vec![jstr(k), jstr_arr(chain)]))
            .collect(),
    )
}

fn chains_from_json(
    meta: &JsonValue,
    key: &str,
) -> Result<HashMap<String, Vec<String>>, PersistError> {
    let mut out = HashMap::new();
    for entry in arr(meta, key)? {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| corrupt(format!("meta field {key:?} entry is not a pair")))?;
        let table = pair[0]
            .as_str()
            .ok_or_else(|| corrupt(format!("{key} table name")))?;
        let chain: Vec<String> = pair[1]
            .as_array()
            .ok_or_else(|| corrupt(format!("{key} chain")))?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Option<_>>()
            .ok_or_else(|| corrupt(format!("{key} chain entry")))?;
        out.insert(table.to_string(), chain);
    }
    Ok(out)
}

fn suspected_to_json(hints: &[SuspectedBias]) -> JsonValue {
    JsonValue::Arr(
        hints
            .iter()
            .map(|s| {
                obj(vec![
                    ("table", jstr(&s.table)),
                    ("column", jstr(&s.column)),
                    (
                        "direction",
                        jstr(match s.direction {
                            BiasDirection::Overestimated => "overestimated",
                            BiasDirection::Underestimated => "underestimated",
                        }),
                    ),
                    (
                        "value",
                        match &s.value {
                            Some(v) => jstr(v),
                            None => JsonValue::Null,
                        },
                    ),
                ])
            })
            .collect(),
    )
}

/// Tolerant reader for the optional `"suspected"` meta key: files written
/// before the key existed simply have no hints.
fn suspected_from_json(meta: &JsonValue) -> Result<Vec<SuspectedBias>, PersistError> {
    let Some(entries) = meta.get("suspected") else {
        return Ok(Vec::new());
    };
    let entries = entries
        .as_array()
        .ok_or_else(|| corrupt("meta field \"suspected\" is not an array"))?;
    entries
        .iter()
        .map(|e| {
            Ok(SuspectedBias {
                table: str_field(e, "table")?.to_string(),
                column: str_field(e, "column")?.to_string(),
                direction: match str_field(e, "direction")? {
                    "overestimated" => BiasDirection::Overestimated,
                    "underestimated" => BiasDirection::Underestimated,
                    other => return Err(corrupt(format!("unknown bias direction {other:?}"))),
                },
                value: match field(e, "value")? {
                    JsonValue::Null => None,
                    JsonValue::Str(s) => Some(s.clone()),
                    _ => return Err(corrupt("suspected bias value must be a string or null")),
                },
            })
        })
        .collect()
}

fn train_to_json(t: &TrainConfig) -> JsonValue {
    obj(vec![
        ("epochs", jus(t.epochs)),
        ("batch_size", jus(t.batch_size)),
        ("lr", jnum(t.lr as f64)),
        (
            "hidden",
            JsonValue::Arr(t.hidden.iter().map(|&h| jus(h)).collect()),
        ),
        ("embed_dim", jus(t.embed_dim)),
        ("max_bins", jus(t.max_bins)),
        ("val_fraction", jnum(t.val_fraction)),
        ("clip_norm", jnum(t.clip_norm as f64)),
        ("max_train_rows", jus(t.max_train_rows)),
        ("tf_cap", jnum(t.tf_cap as f64)),
        ("ctx_dim", jus(t.ctx_dim)),
        ("max_set_size", jus(t.max_set_size)),
        ("min_steps", jus(t.min_steps)),
        ("patience", jus(t.patience)),
        ("workers", jus(t.workers)),
        ("microbatch", jus(t.microbatch)),
        ("incremental_sweep", JsonValue::Bool(t.incremental_sweep)),
    ])
}

fn train_from_json(v: &JsonValue) -> Result<TrainConfig, PersistError> {
    Ok(TrainConfig {
        epochs: usize_field(v, "epochs")?,
        batch_size: usize_field(v, "batch_size")?,
        lr: num_field(v, "lr")? as f32,
        hidden: arr(v, "hidden")?
            .iter()
            .map(|h| json_usize(h, "hidden layer width"))
            .collect::<Result<_, _>>()?,
        embed_dim: usize_field(v, "embed_dim")?,
        max_bins: usize_field(v, "max_bins")?,
        val_fraction: num_field(v, "val_fraction")?,
        clip_norm: num_field(v, "clip_norm")? as f32,
        max_train_rows: usize_field(v, "max_train_rows")?,
        tf_cap: num_field(v, "tf_cap")? as i64,
        ctx_dim: usize_field(v, "ctx_dim")?,
        max_set_size: usize_field(v, "max_set_size")?,
        min_steps: usize_field(v, "min_steps")?,
        patience: usize_field(v, "patience")?,
        workers: usize_field(v, "workers")?,
        microbatch: usize_field(v, "microbatch")?,
        incremental_sweep: bool_field(v, "incremental_sweep")?,
    })
}

fn completer_to_json(c: &CompleterConfig) -> JsonValue {
    obj(vec![
        ("ann_bits", jus(c.ann_bits)),
        ("ann_tables", jus(c.ann_tables)),
        ("max_missing_per_row", jnum(c.max_missing_per_row as f64)),
        (
            "replacement",
            jstr(match c.replacement {
                ReplacementMode::Auto => "auto",
                ReplacementMode::Always => "always",
                ReplacementMode::Never => "never",
            }),
        ),
        ("batch_size", jus(c.batch_size)),
        ("workers", jus(c.workers)),
        (
            "incremental_encoding",
            JsonValue::Bool(c.incremental_encoding),
        ),
    ])
}

fn completer_from_json(v: &JsonValue) -> Result<CompleterConfig, PersistError> {
    Ok(CompleterConfig {
        ann_bits: usize_field(v, "ann_bits")?,
        ann_tables: usize_field(v, "ann_tables")?,
        max_missing_per_row: num_field(v, "max_missing_per_row")? as i64,
        replacement: match str_field(v, "replacement")? {
            "auto" => ReplacementMode::Auto,
            "always" => ReplacementMode::Always,
            "never" => ReplacementMode::Never,
            other => return Err(corrupt(format!("unknown replacement mode {other:?}"))),
        },
        batch_size: usize_field(v, "batch_size")?,
        workers: usize_field(v, "workers")?,
        incremental_encoding: bool_field(v, "incremental_encoding")?,
    })
}

fn config_to_json(c: &RestoreConfig) -> JsonValue {
    obj(vec![
        ("train", train_to_json(&c.train)),
        ("completer", completer_to_json(&c.completer)),
        ("max_path_len", jus(c.max_path_len)),
        ("max_candidates", jus(c.max_candidates)),
        (
            "strategy",
            jstr(match c.strategy {
                SelectionStrategy::Shortest => "shortest",
                SelectionStrategy::BestValLoss => "best_val_loss",
                SelectionStrategy::SuspectedBiasRanking => "suspected_bias_ranking",
            }),
        ),
        ("cache_budget_bytes", jus(c.cache_budget_bytes)),
    ])
}

fn config_from_json(v: &JsonValue) -> Result<RestoreConfig, PersistError> {
    Ok(RestoreConfig {
        train: train_from_json(field(v, "train")?)?,
        completer: completer_from_json(field(v, "completer")?)?,
        max_path_len: usize_field(v, "max_path_len")?,
        max_candidates: usize_field(v, "max_candidates")?,
        strategy: match str_field(v, "strategy")? {
            "shortest" => SelectionStrategy::Shortest,
            "best_val_loss" => SelectionStrategy::BestValLoss,
            "suspected_bias_ranking" => SelectionStrategy::SuspectedBiasRanking,
            other => return Err(corrupt(format!("unknown selection strategy {other:?}"))),
        },
        cache_budget_bytes: usize_field(v, "cache_budget_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_round_trips() {
        let cfg = RestoreConfig::default();
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(back.train.epochs, cfg.train.epochs);
        assert_eq!(back.train.lr.to_bits(), cfg.train.lr.to_bits());
        assert_eq!(back.train.hidden, cfg.train.hidden);
        assert_eq!(back.completer.batch_size, cfg.completer.batch_size);
        assert_eq!(back.cache_budget_bytes, cfg.cache_budget_bytes);
    }

    #[test]
    fn train_json_preserves_f32_bits() {
        let t = TrainConfig {
            lr: 5.1234e-3,
            clip_norm: 3.333,
            ..TrainConfig::default()
        };
        let doc = train_to_json(&t).to_json();
        let back = train_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back.lr.to_bits(), t.lr.to_bits());
        assert_eq!(back.clip_norm.to_bits(), t.clip_norm.to_bits());
    }

    #[test]
    fn rejects_bad_magic_version_and_checksum() {
        assert!(matches!(
            Snapshot::from_bytes(b"not a snapshot file at all.."),
            Err(PersistError::Corrupt(_))
        ));
        let mut fake = Vec::new();
        fake.extend_from_slice(SNAPSHOT_MAGIC);
        fake.extend_from_slice(&99u32.to_le_bytes());
        fake.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Snapshot::from_bytes(&fake),
            Err(PersistError::UnsupportedVersion(99))
        ));
        let mut bad = Vec::new();
        bad.extend_from_slice(SNAPSHOT_MAGIC);
        bad.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        bad.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(PersistError::Corrupt(m)) if m.contains("checksum")
        ));
    }
}
