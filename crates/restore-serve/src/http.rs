//! Hand-rolled HTTP/1.1 request parsing and response encoding — `std` only,
//! in the spirit of `restore-util`'s JSON module. Just enough of the
//! protocol for the serving API: request line + headers + `Content-Length`
//! bodies, percent-decoded paths and query strings, keep-alive by default.
//! No chunked transfer encoding, no TLS, no HTTP/2.
//!
//! Parsing is *incremental*: [`RequestParser`] accumulates whatever bytes
//! the socket happens to deliver — a byte at a time, a pipelined burst of
//! several requests, anything in between — and yields complete requests as
//! they materialize. The event loop in [`crate::reactor`] feeds it from
//! nonblocking reads; nothing in this module touches a socket.

/// Parse-time limits; oversized inputs answer 413 instead of buffering
/// without bound.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    pub max_head_bytes: usize,
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request. Header names are lowercased; path and query values are
/// percent-decoded.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Path segments with the leading slash stripped: `/v1/t/query` →
    /// `["v1", "t", "query"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// A protocol violation the connection answers (413 / 400) before closing.
#[derive(Debug)]
pub enum ParseError {
    /// The head or body exceeded the limits → 413.
    TooLarge,
    /// Unparseable input → 400 with the message.
    Malformed(String),
}

/// Decodes `%XX` escapes (and `+` as space in query strings).
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes one path segment or query component: unreserved
/// characters (RFC 3986) pass through, everything else becomes `%XX`.
/// Inverse of [`percent_decode`] over round-tripped components.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Re-encodes a parsed request's path + query back into a wire-safe
/// request target — what the shard router sends upstream when forwarding.
/// Parsing decodes `%XX` escapes, so a decoded path like `/v1/my db/query`
/// must be re-escaped before it can appear in a request line again.
pub(crate) fn encode_target(request: &Request) -> String {
    let mut target: String = request
        .path
        .split('/')
        .map(percent_encode)
        .collect::<Vec<_>>()
        .join("/");
    if target.is_empty() {
        target.push('/');
    }
    for (i, (k, v)) in request.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&percent_encode(k));
        target.push('=');
        target.push_str(&percent_encode(v));
    }
    target
}

/// A fully-received head, waiting for its body bytes.
struct PendingHead {
    /// The request with everything but `body` filled in.
    request: Request,
    /// Offset of the first body byte in the parser's buffer.
    body_start: usize,
    content_length: usize,
}

/// Incremental HTTP/1.1 request parser: feed it bytes as they arrive with
/// [`RequestParser::extend`], pull complete requests with
/// [`RequestParser::next_request`]. Tolerates byte-dribble arrivals (the
/// head-terminator scan is memoized, so re-polling after every single byte
/// stays O(total bytes), not O(n²)) and pipelining (leftover bytes stay
/// buffered for the next call).
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for the `\r\n\r\n` head terminator
    /// (kept 3 short of the end so a terminator straddling two reads is
    /// still found).
    scanned: usize,
    head: Option<PendingHead>,
}

impl RequestParser {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly-arrived socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (unconsumed carry).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Is a request partially received (head bytes buffered or a complete
    /// head waiting for its body)?
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.head.is_some()
    }

    /// Has the current request's head completed, leaving the parser
    /// waiting on body bytes?
    pub fn reading_body(&self) -> bool {
        self.head.is_some()
    }

    /// Attempts to produce the next complete request from the buffer.
    /// `Ok(None)` means more bytes are needed; an `Err` is fatal for the
    /// connection (the caller answers 413/400 and closes).
    pub fn next_request(&mut self, limits: &Limits) -> Result<Option<Request>, ParseError> {
        if self.head.is_none() {
            if self.buf.is_empty() {
                return Ok(None);
            }
            let Some(head_end) = find_head_end_from(&self.buf, self.scanned) else {
                self.scanned = self.buf.len().saturating_sub(3);
                if self.buf.len() > limits.max_head_bytes {
                    return Err(ParseError::TooLarge);
                }
                return Ok(None);
            };
            if head_end > limits.max_head_bytes {
                return Err(ParseError::TooLarge);
            }
            let (request, content_length) = parse_head(&self.buf[..head_end])?;
            if content_length > limits.max_body_bytes {
                return Err(ParseError::TooLarge);
            }
            self.head = Some(PendingHead {
                request,
                body_start: head_end + 4,
                content_length,
            });
        }
        let ready = {
            let head = self.head.as_ref().expect("head parsed above");
            self.buf.len() >= head.body_start + head.content_length
        };
        if !ready {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let consumed = head.body_start + head.content_length;
        let mut request = head.request;
        request.body = String::from_utf8_lossy(&self.buf[head.body_start..consumed]).into_owned();
        self.buf.drain(..consumed);
        self.scanned = 0;
        Ok(Some(request))
    }
}

/// Parses a complete request head (everything before `\r\n\r\n`) into a
/// body-less [`Request`] plus the announced `Content-Length`.
fn parse_head(head_bytes: &[u8]) -> Result<(Request, usize), ParseError> {
    let head = std::str::from_utf8(head_bytes)
        .map_err(|_| ParseError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut rl = request_line.split(' ');
    let (method, target, version) = match (rl.next(), rl.next(), rl.next(), rl.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad content-length {v:?}")))?,
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
                    None => (percent_decode(kv, true), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    let request = Request {
        method: method.to_string(),
        path: percent_decode(raw_path, false),
        query,
        headers,
        body: String::new(),
    };
    Ok((request, content_length))
}

/// Attempts to parse one complete request from the front of `buf` in one
/// shot — the stateless reference form of [`RequestParser`], kept for tests
/// and one-off callers. `Ok(Some((request, consumed)))` on success;
/// `Ok(None)` when more bytes are needed; `Err` on protocol violations.
pub fn try_parse(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ParseError> {
    let mut parser = RequestParser::new();
    parser.extend(buf);
    match parser.next_request(limits)? {
        Some(request) => Ok(Some((request, buf.len() - parser.buffered()))),
        None => Ok(None),
    }
}

/// Finds the `\r\n\r\n` head terminator, resuming the scan at `from`
/// (bytes before it are known terminator-free).
fn find_head_end_from(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + from)
}

/// An outgoing response; the body is always JSON here. `headers` carries
/// route-specific extras (`X-Request-Id`, `Retry-After`) on top of the
/// fixed content headers [`encode_response`] always emits.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A [`error_body`] response.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, error_body(message))
    }

    /// Appends one extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// A 429 with a computed `Retry-After` (integer seconds, per RFC 9110;
    /// always at least 1 so a client never busy-retries).
    pub fn too_many_requests(message: &str, retry_after: std::time::Duration) -> Self {
        let secs = retry_after.as_secs_f64().ceil().clamp(1.0, 3600.0) as u64;
        Self::error(429, message).with_header("Retry-After", secs.to_string())
    }
}

/// The one `{"error": …}` envelope every error response uses, message
/// JSON-escaped.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", restore_util::json::escape(message))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response to wire bytes; `close` controls the `Connection`
/// header. The reactor owns the actual write.
pub fn encode_response(response: &Response, close: bool) -> Vec<u8> {
    let mut extra = String::new();
    for (name, value) in &response.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{extra}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    let mut out = Vec::with_capacity(head.len() + response.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// Fault-injection seam: how many bytes of an encoded response a torn
/// write ships — the first half, at least one byte, never all of them, so
/// the client is left with a response it must treat as a transport error.
pub fn torn_prefix_len(encoded_len: usize) -> usize {
    (encoded_len / 2).max(1).min(encoded_len.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> Request {
        let (req, consumed) = try_parse(raw.as_bytes(), &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(consumed, raw.len());
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let raw = "POST /v1/my%20db/query?seed=7&x=a+b HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"seed\":1}\n";
        let req = parse_ok(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/my db/query");
        assert_eq!(req.segments(), vec!["v1", "my db", "query"]);
        assert_eq!(req.query_param("seed"), Some("7"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.body, "{\"seed\":1}\n");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_pipelined_requests_one_at_a_time() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, consumed) = try_parse(raw.as_bytes(), &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(first.path, "/healthz");
        let rest = &raw.as_bytes()[consumed..];
        let (second, consumed2) = try_parse(rest, &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(second.path, "/metrics");
        assert!(second.wants_close());
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        let full = "POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in [3, 20, full.len() - 1] {
            assert!(
                try_parse(&full.as_bytes()[..cut], &Limits::default())
                    .expect("no error")
                    .is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        assert!(try_parse(full.as_bytes(), &Limits::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn incremental_parser_handles_byte_dribble() {
        let raw = "POST /v1/t/query HTTP/1.1\r\nContent-Length: 7\r\n\r\npayload";
        let mut parser = RequestParser::new();
        for (i, byte) in raw.as_bytes().iter().enumerate() {
            parser.extend(std::slice::from_ref(byte));
            let result = parser.next_request(&Limits::default()).expect("no error");
            if i + 1 < raw.len() {
                assert!(result.is_none(), "complete after only {} bytes", i + 1);
                assert!(parser.has_partial());
            } else {
                let request = result.expect("complete at last byte");
                assert_eq!(request.path, "/v1/t/query");
                assert_eq!(request.body, "payload");
            }
        }
        assert!(!parser.has_partial());
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn incremental_parser_tracks_body_phase() {
        let mut parser = RequestParser::new();
        parser.extend(b"POST /q HTTP/1.1\r\nContent-Length: 5\r\n");
        assert!(parser.next_request(&Limits::default()).unwrap().is_none());
        assert!(!parser.reading_body());
        parser.extend(b"\r\nhel");
        assert!(parser.next_request(&Limits::default()).unwrap().is_none());
        assert!(parser.reading_body(), "head complete, body outstanding");
        parser.extend(b"lo");
        let request = parser
            .next_request(&Limits::default())
            .unwrap()
            .expect("complete");
        assert_eq!(request.body, "hello");
        assert!(!parser.reading_body());
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_in_order() {
        let raw =
            "GET /healthz HTTP/1.1\r\n\r\nPOST /v1/t/query HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut parser = RequestParser::new();
        parser.extend(raw.as_bytes());
        let limits = Limits::default();
        let first = parser.next_request(&limits).unwrap().expect("first");
        assert_eq!(first.path, "/healthz");
        assert!(parser.has_partial(), "second request still buffered");
        let second = parser.next_request(&limits).unwrap().expect("second");
        assert_eq!(second.path, "/v1/t/query");
        assert_eq!(second.body, "hi");
        assert!(parser.next_request(&limits).unwrap().is_none());
        assert!(!parser.has_partial());
    }

    #[test]
    fn incremental_parser_enforces_limits_under_dribble() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let mut parser = RequestParser::new();
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let mut blew = false;
        for byte in long_head.as_bytes() {
            parser.extend(std::slice::from_ref(byte));
            if parser.next_request(&limits).is_err() {
                blew = true;
                break;
            }
        }
        assert!(blew, "oversized head must error before the terminator");
        let mut parser = RequestParser::new();
        parser.extend(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n");
        assert!(matches!(
            parser.next_request(&limits),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn rejects_malformed_and_oversized_input() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        assert!(matches!(
            try_parse(b"NOT A REQUEST\r\n\r\n", &limits),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"GET / FTP/1.0\r\n\r\n", &limits),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", &limits),
            Err(ParseError::TooLarge)
        ));
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            try_parse(long_head.as_bytes(), &limits),
            Err(ParseError::TooLarge)
        ));
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &limits
            ),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_handles_escapes_and_junk() {
        assert_eq!(percent_decode("a%2Fb%20c", false), "a/b c");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
    }

    #[test]
    fn encode_target_round_trips_through_the_parser() {
        let raw = "POST /v1/my%20db/query?seed=7&x=a+b HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, _) = try_parse(raw.as_bytes(), &Limits::default())
            .expect("parse")
            .expect("complete");
        let target = encode_target(&req);
        let reparsed = parse_ok(&format!("GET {target} HTTP/1.1\r\n\r\n"));
        assert_eq!(reparsed.path, req.path);
        assert_eq!(reparsed.query, req.query);
        // A plain target is untouched.
        let plain = parse_ok("GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(encode_target(&plain), "/healthz");
    }

    #[test]
    fn torn_prefix_is_a_strict_nonempty_prefix() {
        for len in [2usize, 3, 10, 1001] {
            let cut = torn_prefix_len(len);
            assert!(cut >= 1 && cut < len, "len {len} cut {cut}");
        }
    }

    #[test]
    fn encode_response_emits_connection_header() {
        let response = Response::json(200, "{}").with_header("X-Request-Id", "7");
        let keep = String::from_utf8(encode_response(&response, false)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains("X-Request-Id: 7\r\n"));
        assert!(keep.ends_with("\r\n\r\n{}"));
        let close = String::from_utf8(encode_response(&response, true)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
    }
}
