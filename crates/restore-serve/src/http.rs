//! Hand-rolled HTTP/1.1 request parsing and response writing — `std` only,
//! in the spirit of `restore-util`'s JSON module. Just enough of the
//! protocol for the serving API: request line + headers + `Content-Length`
//! bodies, percent-decoded paths and query strings, keep-alive by default.
//! No chunked transfer encoding, no TLS, no HTTP/2.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Parse-time limits; oversized inputs answer 413 instead of buffering
/// without bound.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    pub max_head_bytes: usize,
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request. Header names are lowercased; path and query values are
/// percent-decoded.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Path segments with the leading slash stripped: `/v1/t/query` →
    /// `["v1", "t", "query"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// What [`read_request`] produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request, paired with the instant its first bytes were
    /// seen — the start of the request's deadline budget.
    Request(Request, std::time::Instant),
    /// Clean EOF (or poll-abort while idle) — close quietly.
    Closed,
    /// The head or body exceeded the limits → 413.
    TooLarge,
    /// Unparseable input → 400 with the message.
    Malformed(String),
    /// I/O error mid-request.
    Io(std::io::Error),
}

/// Decodes `%XX` escapes (and `+` as space in query strings).
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Attempts to parse one complete request from the front of `buf`.
/// `Ok(Some((request, consumed)))` on success; `Ok(None)` when more bytes
/// are needed; `Err` on protocol violations.
#[allow(clippy::result_large_err)] // the Err is the same enum the caller matches on anyway
pub fn try_parse(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ReadOutcome> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(ReadOutcome::TooLarge);
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(ReadOutcome::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadOutcome::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut rl = request_line.split(' ');
    let (method, target, version) = match (rl.next(), rl.next(), rl.next(), rl.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadOutcome::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadOutcome::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadOutcome::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadOutcome::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadOutcome::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadOutcome::TooLarge);
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
                    None => (percent_decode(kv, true), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    let request = Request {
        method: method.to_string(),
        path: percent_decode(raw_path, false),
        query,
        headers,
        body,
    };
    Ok(Some((request, body_start + content_length)))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request from `stream`, carrying pipelined leftovers in
/// `carry` across calls. The stream must have a read timeout set; on each
/// poll tick `abort()` is consulted — when it returns true the read gives
/// up with [`ReadOutcome::Closed`], partial bytes included (a
/// half-received request is not in-flight work; graceful drain must not
/// wait on a stalled sender). Independently, once request bytes start
/// arriving the full request must land within `deadline`, or the
/// connection is cut — a stalled or slow-dripping client cannot pin a
/// connection thread forever.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &Limits,
    deadline: Duration,
    abort: &dyn Fn() -> bool,
) -> ReadOutcome {
    let mut chunk = [0u8; 8 * 1024];
    let mut partial_since: Option<std::time::Instant> = None;
    loop {
        match try_parse(carry, limits) {
            Ok(Some((request, consumed))) => {
                carry.drain(..consumed);
                let arrived = partial_since.unwrap_or_else(std::time::Instant::now);
                return ReadOutcome::Request(request, arrived);
            }
            Ok(None) => {}
            Err(outcome) => return outcome,
        }
        if !carry.is_empty() {
            let since = *partial_since.get_or_insert_with(std::time::Instant::now);
            if since.elapsed() > deadline {
                return ReadOutcome::Malformed("request did not complete in time".into());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if carry.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-request".into())
                };
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if abort() {
                    return ReadOutcome::Closed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Io(e),
        }
    }
}

/// An outgoing response; the body is always JSON here. `headers` carries
/// route-specific extras (`X-Request-Id`, `Retry-After`) on top of the
/// fixed content headers [`write_response`] always emits.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A [`error_body`] response.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, error_body(message))
    }

    /// Appends one extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// A 429 with a computed `Retry-After` (integer seconds, per RFC 9110;
    /// always at least 1 so a client never busy-retries).
    pub fn too_many_requests(message: &str, retry_after: Duration) -> Self {
        let secs = retry_after.as_secs_f64().ceil().clamp(1.0, 3600.0) as u64;
        Self::error(429, message).with_header("Retry-After", secs.to_string())
    }
}

/// The one `{"error": …}` envelope every error response uses, message
/// JSON-escaped.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", restore_util::json::escape(message))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response to bytes; `close` controls the `Connection`
/// header.
fn serialize_response(response: &Response, close: bool) -> Vec<u8> {
    let mut extra = String::new();
    for (name, value) in &response.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{extra}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    let mut out = Vec::with_capacity(head.len() + response.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// Serializes a response; `close` controls the `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    stream.write_all(&serialize_response(response, close))?;
    stream.flush()
}

/// Fault-injection seam: writes only the first half of the serialized
/// response (at least one byte, never all of them), leaving the client
/// with a torn response it must treat as a transport error. The caller
/// closes the connection afterwards.
pub fn write_torn_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let bytes = serialize_response(response, true);
    let cut = (bytes.len() / 2).max(1).min(bytes.len() - 1);
    stream.write_all(&bytes[..cut])?;
    stream.flush()
}

/// Sets the per-read poll interval used by [`read_request`]'s abort checks
/// and a write timeout so a client that stops reading its socket cannot
/// block a connection thread forever (and with it, graceful drain). Also
/// forces blocking mode: sockets accepted from a non-blocking listener
/// inherit non-blocking on some platforms.
pub fn configure_stream(
    stream: &TcpStream,
    poll: Duration,
    write_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(poll))?;
    stream.set_write_timeout(Some(write_timeout))?;
    stream.set_nodelay(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> Request {
        let (req, consumed) = try_parse(raw.as_bytes(), &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(consumed, raw.len());
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let raw = "POST /v1/my%20db/query?seed=7&x=a+b HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"seed\":1}\n";
        let req = parse_ok(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/my db/query");
        assert_eq!(req.segments(), vec!["v1", "my db", "query"]);
        assert_eq!(req.query_param("seed"), Some("7"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.body, "{\"seed\":1}\n");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_pipelined_requests_one_at_a_time() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, consumed) = try_parse(raw.as_bytes(), &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(first.path, "/healthz");
        let rest = &raw.as_bytes()[consumed..];
        let (second, consumed2) = try_parse(rest, &Limits::default())
            .expect("parse")
            .expect("complete");
        assert_eq!(second.path, "/metrics");
        assert!(second.wants_close());
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        let full = "POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in [3, 20, full.len() - 1] {
            assert!(
                try_parse(&full.as_bytes()[..cut], &Limits::default())
                    .expect("no error")
                    .is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        assert!(try_parse(full.as_bytes(), &Limits::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn rejects_malformed_and_oversized_input() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        assert!(matches!(
            try_parse(b"NOT A REQUEST\r\n\r\n", &limits),
            Err(ReadOutcome::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"GET / FTP/1.0\r\n\r\n", &limits),
            Err(ReadOutcome::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", &limits),
            Err(ReadOutcome::TooLarge)
        ));
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            try_parse(long_head.as_bytes(), &limits),
            Err(ReadOutcome::TooLarge)
        ));
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &limits
            ),
            Err(ReadOutcome::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_handles_escapes_and_junk() {
        assert_eq!(percent_decode("a%2Fb%20c", false), "a/b c");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
    }
}
