//! A blocking HTTP/1.1 client for the serving API — keep-alive by default
//! (one [`HttpClient`] issues many requests over one TCP connection, like a
//! real dashboard client), with an opt-in retry layer that makes it a
//! resilient building block for anything sitting in front of the server
//! (the shard-router direction in the ROADMAP): capped exponential backoff
//! with deterministic jitter ([`restore_util::BackoffConfig`]), honoring
//! the server's `Retry-After` on 429/503, reconnecting on transport
//! errors, all under a wall-clock [`RetryPolicy::budget`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use restore_util::{BackoffConfig, HealthState, ObjectPool, PoolStats};

/// How [`HttpClient::request_with_retry`] behaves.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so 1 disables retrying).
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: BackoffConfig,
    /// Wall-clock budget across all attempts *and* waits; when the next
    /// wait would cross it, the client gives up with the last outcome.
    pub budget: Duration,
    /// Upper bound on any single wait, including server-requested
    /// `Retry-After`s — a misbehaving server cannot park the client.
    pub retry_after_cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff: BackoffConfig::default(),
            budget: Duration::from_secs(60),
            retry_after_cap: Duration::from_secs(30),
            seed: 0,
        }
    }
}

/// Client knobs; [`ClientConfig::default`] matches the old hardcoded
/// behavior (30 s read timeout) with the default retry policy on top.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Read timeout on the underlying socket.
    pub read_timeout: Duration,
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
        }
    }
}

/// A complete response: status, lowercased headers, body.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The server's `Retry-After`, when present and parseable (integer
    /// seconds form).
    pub fn retry_after(&self) -> Option<Duration> {
        self.header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
    }

    /// The server-assigned accept-order request id (`X-Request-Id`).
    pub fn request_id(&self) -> Option<u64> {
        self.header("x-request-id")
            .and_then(|v| v.trim().parse::<u64>().ok())
    }
}

/// A keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
    peer: SocketAddr,
    config: ClientConfig,
}

impl HttpClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, config)
    }

    fn from_stream(stream: TcpStream, config: ClientConfig) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        let peer = stream.peer_addr()?;
        Ok(Self {
            stream,
            carry: Vec::new(),
            peer,
            config,
        })
    }

    /// The peer this connection was dialed to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Drops the current connection and dials the same peer again —
    /// what the retry layer does after a transport error.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        *self = Self::from_stream(stream, self.config)?;
        Ok(())
    }

    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// Issues one request and reads the full response `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.request_full(method, path, body, &[])
            .map(|r| (r.status, r.body))
    }

    /// One request with extra headers (the chaos tests pin fault keys with
    /// `X-Fault-Key`), returning the full [`HttpResponse`].
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: restore\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// [`HttpClient::request_full`] under the configured [`RetryPolicy`]:
    /// 429 and 503 responses retry after `max(backoff, Retry-After)`
    /// (capped at `retry_after_cap`), transport errors reconnect and
    /// retry, and the whole dance stays inside [`RetryPolicy::budget`] —
    /// when attempts or budget run out, the last outcome (response or
    /// error) is returned as-is.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let policy = self.config.retry;
        let deadline = Instant::now() + policy.budget;
        let mut attempt = 0u32;
        loop {
            let outcome = self.request_full(method, path, body, extra_headers);
            let retry_after = match &outcome {
                Ok(response) if response.status == 429 || response.status == 503 => {
                    response.retry_after()
                }
                Ok(_) => return outcome,
                // Transport error: the connection state is unknown — only
                // retryable through a reconnect below.
                Err(_) => None,
            };
            if attempt + 1 >= policy.max_attempts.max(1) {
                return outcome;
            }
            let mut wait = policy.backoff.delay(policy.seed, attempt);
            if let Some(requested) = retry_after {
                wait = wait.max(requested);
            }
            wait = wait.min(policy.retry_after_cap);
            let now = Instant::now();
            if now + wait > deadline {
                return outcome;
            }
            std::thread::sleep(wait);
            if outcome.is_err() && self.reconnect().is_err() {
                // The peer refused the redial; count the attempt and keep
                // backing off — it may be mid-restart.
                attempt += 1;
                continue;
            }
            attempt += 1;
        }
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some((response, consumed)) = parse_response(&self.carry)? {
                self.carry.drain(..consumed);
                return Ok(response);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parses a complete `(response, consumed)` off the front of `buf`, or
/// `Ok(None)` if more bytes are needed. Header names come out lowercased.
fn parse_response(buf: &[u8]) -> std::io::Result<Option<(HttpResponse, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_string());
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| bad(&format!("bad content-length {value:?}")))?;
            }
            headers.push((name, value));
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok(Some((
        HttpResponse {
            status,
            headers,
            body,
        },
        body_start + content_length,
    )))
}

/// One-shot convenience: connect, issue a single request, disconnect.
pub fn one_shot(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    HttpClient::connect(addr)?.request(method, path, body)
}

/// Counters of one [`ConnectionPool`]: pool-level reuse plus how often a
/// fresh dial was needed, for the router's fleet `/metrics` view.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectionPoolStats {
    /// Checkouts answered with a pooled keep-alive connection.
    pub reused: u64,
    /// Checkouts that dialed a fresh connection.
    pub dialed: u64,
    /// Idle connections dropped (pool overflow, peer move, or clear).
    pub discarded: u64,
    /// Connections currently idle in the pool.
    pub idle: usize,
}

/// A health-aware pool of keep-alive [`HttpClient`] connections to one
/// peer whose address may *move* (a re-execed worker binds a fresh
/// ephemeral port). Checkout prefers an idle pooled connection, discards
/// any dialed to a stale address, and refuses outright while the peer's
/// [`HealthState`] says down — the caller backs off instead of burning a
/// connect timeout per request against a dead peer.
///
/// The pool never speaks HTTP itself: callers check a connection out, run
/// whatever requests they need, and check it back in if the exchange left
/// it reusable (no transport error, no `Connection: close`).
pub struct ConnectionPool {
    config: ClientConfig,
    peer: Mutex<Option<SocketAddr>>,
    idle: ObjectPool<HttpClient>,
    health: HealthState,
    dialed: AtomicU64,
    reused: AtomicU64,
}

impl ConnectionPool {
    /// A pool keeping at most `max_idle` idle connections; the peer is
    /// registered (and re-registered after moves) via
    /// [`ConnectionPool::set_peer`].
    pub fn new(config: ClientConfig, max_idle: usize) -> Self {
        Self {
            config,
            peer: Mutex::new(None),
            idle: ObjectPool::new(max_idle),
            health: HealthState::new(),
            dialed: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// [`ConnectionPool::new`] with the peer already known.
    pub fn with_peer(addr: SocketAddr, config: ClientConfig, max_idle: usize) -> Self {
        let pool = Self::new(config, max_idle);
        pool.set_peer(addr);
        pool
    }

    /// The current peer address, if registered.
    pub fn peer(&self) -> Option<SocketAddr> {
        *self.peer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or moves) the peer. A changed address drops every idle
    /// connection — they are dialed to the old one.
    pub fn set_peer(&self, addr: SocketAddr) {
        let changed = {
            let mut peer = self.peer.lock().unwrap_or_else(|e| e.into_inner());
            let changed = *peer != Some(addr);
            *peer = Some(addr);
            changed
        };
        if changed {
            self.idle.clear();
        }
    }

    /// The peer's health, shared with whoever monitors it. The pool itself
    /// never writes health — callers record successes/failures from actual
    /// request outcomes (and monitors from probes), keeping one authority
    /// per signal.
    pub fn health(&self) -> &HealthState {
        &self.health
    }

    /// Checks a connection out: a pooled keep-alive connection to the
    /// current peer when available, else a fresh dial. Fails fast with
    /// `NotConnected` while the peer is marked down or unregistered.
    pub fn checkout(&self) -> std::io::Result<HttpClient> {
        let Some(peer) = self.peer() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection pool has no peer registered",
            ));
        };
        if !self.health.is_up() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("peer {peer} is marked down"),
            ));
        }
        // Stale-address connections can linger if the peer moved while
        // they were checked out; skip past them.
        while let Some(client) = self.idle.take() {
            if client.peer() == peer {
                self.reused.fetch_add(1, Ordering::Relaxed);
                return Ok(client);
            }
        }
        let client = HttpClient::connect_with(peer, self.config)?;
        self.dialed.fetch_add(1, Ordering::Relaxed);
        Ok(client)
    }

    /// Returns a still-healthy connection for reuse. Connections dialed to
    /// a stale address (the peer moved meanwhile) are dropped.
    pub fn checkin(&self, client: HttpClient) {
        if self.peer() == Some(client.peer()) {
            self.idle.put(client);
        }
        // else: dropped here — closing a stale socket is the right outcome.
    }

    pub fn stats(&self) -> ConnectionPoolStats {
        let PoolStats {
            discarded, idle, ..
        } = self.idle.stats();
        ConnectionPoolStats {
            reused: self.reused.load(Ordering::Relaxed),
            dialed: self.dialed.load(Ordering::Relaxed),
            discarded,
            idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses_incrementally() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\nbodyHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        assert!(parse_response(&raw[..10]).unwrap().is_none());
        let (first, consumed) = parse_response(raw).unwrap().expect("complete");
        assert_eq!((first.status, first.body.as_str()), (200, "body"));
        assert_eq!(first.header("content-type"), Some("application/json"));
        let (second, consumed2) = parse_response(&raw[consumed..]).unwrap().expect("second");
        assert_eq!((second.status, second.body.as_str()), (404, ""));
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(parse_response(b"whatever\r\n\r\n").is_err());
    }

    #[test]
    fn connection_pool_reuses_moves_and_gates_on_health() {
        let listener_a = std::net::TcpListener::bind("127.0.0.1:0").expect("bind a");
        let listener_b = std::net::TcpListener::bind("127.0.0.1:0").expect("bind b");
        let addr_a = listener_a.local_addr().expect("addr a");
        let addr_b = listener_b.local_addr().expect("addr b");
        let pool = ConnectionPool::with_peer(addr_a, ClientConfig::default(), 4);
        let first = pool.checkout().expect("fresh dial");
        assert_eq!(first.peer(), addr_a);
        pool.checkin(first);
        assert_eq!(pool.stats().idle, 1);
        let reused = pool.checkout().expect("pooled connection");
        assert_eq!(pool.stats().reused, 1);
        // Peer moves: idle connections are cleared, checked-out ones are
        // dropped at checkin instead of poisoning the pool.
        pool.set_peer(addr_b);
        assert_eq!(pool.stats().idle, 0, "peer move clears idle conns");
        pool.checkin(reused);
        assert_eq!(pool.stats().idle, 0, "stale-peer checkin is dropped");
        assert_eq!(pool.checkout().expect("dial b").peer(), addr_b);
        // Health gate: a down peer fails fast, recovery restores service.
        pool.health().force_down();
        let err = match pool.checkout() {
            Err(e) => e,
            Ok(_) => panic!("down peer must fail fast"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);
        pool.health().record_success();
        assert!(pool.checkout().is_ok());
    }

    #[test]
    fn empty_pool_has_no_peer() {
        let pool = ConnectionPool::new(ClientConfig::default(), 2);
        assert!(pool.peer().is_none());
        assert!(pool.checkout().is_err());
    }

    #[test]
    fn exposes_resilience_headers() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nX-Request-Id: 41\r\nContent-Length: 0\r\n\r\n";
        let (response, _) = parse_response(raw).unwrap().expect("complete");
        assert_eq!(response.status, 429);
        assert_eq!(response.retry_after(), Some(Duration::from_secs(3)));
        assert_eq!(response.request_id(), Some(41));
        // Unparseable values read as absent, not as errors.
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: soon\r\nContent-Length: 0\r\n\r\n";
        let (response, _) = parse_response(raw).unwrap().expect("complete");
        assert_eq!(response.retry_after(), None);
    }
}
