//! A minimal blocking HTTP/1.1 client for the serving API — just enough
//! for the integration tests, the `http_smoke` CI binary, and the HTTP
//! throughput bench to drive the server without external dependencies.
//! Keep-alive by default: one [`HttpClient`] issues many requests over one
//! TCP connection, like a real dashboard client.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl HttpClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self {
            stream,
            carry: Vec::new(),
        })
    }

    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// Issues one request and reads the full response `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: restore\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some((status, body, consumed)) = parse_response(&self.carry)? {
                self.carry.drain(..consumed);
                return Ok((status, body));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parses a complete `(status, body, consumed)` response off the front of
/// `buf`, or `Ok(None)` if more bytes are needed.
fn parse_response(buf: &[u8]) -> std::io::Result<Option<(u16, String, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(&format!("bad content-length {value:?}")))?;
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok(Some((status, body, body_start + content_length)))
}

/// One-shot convenience: connect, issue a single request, disconnect.
pub fn one_shot(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    HttpClient::connect(addr)?.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses_incrementally() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\nbodyHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        assert!(parse_response(&raw[..10]).unwrap().is_none());
        let (status, body, consumed) = parse_response(raw).unwrap().expect("complete");
        assert_eq!((status, body.as_str()), (200, "body"));
        let (status2, body2, consumed2) =
            parse_response(&raw[consumed..]).unwrap().expect("second");
        assert_eq!((status2, body2.as_str()), (404, ""));
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(parse_response(b"whatever\r\n\r\n").is_err());
    }
}
