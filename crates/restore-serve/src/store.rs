//! The on-disk snapshot directory the server boots from and the rebuild
//! pipeline publishes into.
//!
//! Layout: one subdirectory per tenant, one file per version:
//!
//! ```text
//! <root>/
//!   housing/
//!     v00001.snap
//!     v00002.snap
//!     v00003.snap.tmp-4242   ← in-flight (or crashed) atomic write: ignored
//!   telemetry/
//!     v00001.snap
//! ```
//!
//! Writers go through [`SnapshotStore::save_version`], which delegates to
//! [`Snapshot::save`]'s write-fsync-rename-fsync sequence — a reader can
//! never observe a half-written version file. Readers go through
//! [`SnapshotStore::load_latest`], which walks a tenant's versions newest
//! first and returns the first one that validates; corrupt, truncated or
//! unreadable files are *skipped with a recorded reason*, never a crash,
//! so one bad file cannot take a tenant (let alone the server) down.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use restore_core::{PersistError, Snapshot};
use restore_util::is_tmp_name;

/// File extension of snapshot version files.
const SNAP_EXT: &str = ".snap";

/// A snapshot version successfully loaded from disk.
pub struct LoadedSnapshot {
    pub tenant: String,
    pub version: u32,
    pub snapshot: Snapshot,
    /// File size in bytes.
    pub bytes: u64,
    /// Wall-clock load time (read + validate + rehydrate).
    pub load_ms: f64,
    pub path: PathBuf,
}

/// A version file the scan decided not to serve, and why — surfaced in
/// logs so a corrupt snapshot is an incident report, not a mystery.
#[derive(Debug)]
pub struct SkippedSnapshot {
    pub path: PathBuf,
    pub reason: String,
}

/// Versioned snapshot directory: `root/<tenant>/v<NNNNN>.snap`.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    root: PathBuf,
}

impl SnapshotStore {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The canonical path of `tenant`'s version `version`.
    pub fn version_path(&self, tenant: &str, version: u32) -> PathBuf {
        self.root
            .join(tenant)
            .join(format!("v{version:05}{SNAP_EXT}"))
    }

    /// Tenants present in the store (sorted). A tenant with only temp or
    /// unparsable files still appears — the load step reports why nothing
    /// is servable.
    pub fn tenants(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                    if let Ok(name) = entry.file_name().into_string() {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// All version numbers present for `tenant`, ascending. Temp files and
    /// names that are not `v<digits>.snap` are ignored.
    pub fn versions(&self, tenant: &str) -> Vec<u32> {
        let mut versions = Vec::new();
        if let Ok(entries) = fs::read_dir(self.root.join(tenant)) {
            for entry in entries.flatten() {
                let Ok(name) = entry.file_name().into_string() else {
                    continue;
                };
                if let Some(v) = parse_version_name(&name) {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        versions.dedup();
        versions
    }

    /// The highest version number present for `tenant` (valid or not).
    /// Rebuilds write `latest_version + 1` so a corrupt newest file is
    /// superseded, never overwritten in place.
    pub fn latest_version(&self, tenant: &str) -> Option<u32> {
        self.versions(tenant).last().copied()
    }

    /// Atomically writes `snapshot` as `tenant`'s version `version`.
    /// Serialization is deterministic, so re-saving the same snapshot at
    /// the same version is byte-idempotent. Returns `(path, bytes)`.
    pub fn save_version(
        &self,
        tenant: &str,
        version: u32,
        snapshot: &Snapshot,
    ) -> Result<(PathBuf, u64), PersistError> {
        let path = self.version_path(tenant, version);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let bytes = snapshot.save(&path)?;
        Ok((path, bytes))
    }

    /// Loads `tenant`'s newest valid version, walking versions newest
    /// first. Every file that fails to load lands in the skipped list with
    /// its reason; an empty tenant directory yields `(None, [])`.
    pub fn load_latest(&self, tenant: &str) -> (Option<LoadedSnapshot>, Vec<SkippedSnapshot>) {
        let mut skipped = Vec::new();
        for version in self.versions(tenant).into_iter().rev() {
            let path = self.version_path(tenant, version);
            let started = Instant::now();
            match Snapshot::load(&path) {
                Ok(snapshot) => {
                    let load_ms = started.elapsed().as_secs_f64() * 1e3;
                    let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    return (
                        Some(LoadedSnapshot {
                            tenant: tenant.to_string(),
                            version,
                            snapshot,
                            bytes,
                            load_ms,
                            path,
                        }),
                        skipped,
                    );
                }
                Err(e) => skipped.push(SkippedSnapshot {
                    path,
                    reason: e.to_string(),
                }),
            }
        }
        (None, skipped)
    }
}

/// Parses `v<digits>.snap` into its version number. Temp-marked names
/// (in-flight or crashed atomic writes) are rejected here, which is what
/// makes a crash inside [`restore_util::write_atomic`] invisible to boot.
fn parse_version_name(name: &str) -> Option<u32> {
    if is_tmp_name(name) {
        return None;
    }
    let stem = name.strip_prefix('v')?.strip_suffix(SNAP_EXT)?;
    if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_names_parse_strictly() {
        assert_eq!(parse_version_name("v00001.snap"), Some(1));
        assert_eq!(parse_version_name("v123.snap"), Some(123));
        assert_eq!(parse_version_name("v00002.snap.tmp-999"), None);
        assert_eq!(parse_version_name("v.snap"), None);
        assert_eq!(parse_version_name("vx1.snap"), None);
        assert_eq!(parse_version_name("snapshot.bin"), None);
    }

    #[test]
    fn empty_store_has_no_tenants() {
        let store = SnapshotStore::new("/nonexistent/restore-store-test");
        assert!(store.tenants().is_empty());
        assert!(store.versions("anyone").is_empty());
        let (loaded, skipped) = store.load_latest("anyone");
        assert!(loaded.is_none());
        assert!(skipped.is_empty());
    }
}
