//! Deterministic fault injection for the serving front-end.
//!
//! A [`FaultPlan`] decides, per request, whether to inject a delay, cut the
//! connection before handling (a simulated read error), drop the response
//! (write error), write a torn response, or panic inside the handler — the
//! generalization of the original test-only `/debug/panic/{key}` route into
//! a full chaos layer the resilience tests and the `chaos_smoke` CI soak
//! drive.
//!
//! **Reproducibility contract.** The action for a request is a pure
//! function of `(plan seed, fault key)`, where the fault key is either the
//! client-pinned `X-Fault-Key` header or an FNV-1a hash of the request
//! content ([`fault_key`]). Nothing about scheduling enters the decision —
//! not arrival order, not which connection thread picked the request up,
//! not the worker count — so a seeded chaos soak produces the same
//! per-request outcome classes on every run. The *fault window* is a key
//! range: keys outside `window` always pass clean, which is how a soak
//! scripts "faults for the first half of the schedule, then recovery".

use std::time::Duration;

use restore_util::derive_seed;

/// What the plan injects for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass through untouched.
    None,
    /// Sleep this long inside the admitted section before handling — a
    /// deterministic stand-in for a slow handler (and the lever the
    /// overload tests use to hold admission permits).
    Delay(Duration),
    /// Close the connection before handling, as if the request read failed.
    ReadError,
    /// Handle the request, then drop the connection instead of responding.
    WriteError,
    /// Write only a prefix of the response bytes, then close — a torn
    /// response the client must treat as a transport error.
    TornResponse,
    /// Panic inside the handler (exercises the 500-per-connection panic
    /// containment path).
    Panic,
}

/// Fault mix and schedule. Probabilities are per-request and mutually
/// exclusive (evaluated cumulatively in declaration order); they should sum
/// to at most 1, with the remainder passing clean.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed of the schedule; two plans with the same seed and config make
    /// identical decisions for every key.
    pub seed: u64,
    /// Half-open fault-key range `[window.0, window.1)` in which faults are
    /// live. Keys outside always get [`FaultAction::None`].
    pub window: (u64, u64),
    pub delay_prob: f64,
    /// Injected delay amount (for requests that draw a delay).
    pub delay: Duration,
    pub read_error_prob: f64,
    pub write_error_prob: f64,
    pub torn_prob: f64,
    pub panic_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            window: (0, 0),
            delay_prob: 0.0,
            delay: Duration::from_millis(10),
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            torn_prob: 0.0,
            panic_prob: 0.0,
        }
    }
}

/// A compiled fault schedule; see the module docs for the contract.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        let p = [
            config.delay_prob,
            config.read_error_prob,
            config.write_error_prob,
            config.torn_prob,
            config.panic_prob,
        ];
        assert!(
            p.iter().all(|&x| (0.0..=1.0).contains(&x)) && p.iter().sum::<f64>() <= 1.0 + 1e-9,
            "fault probabilities must each be in [0,1] and sum to at most 1"
        );
        Self { config }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The action for fault key `key` — pure in `(config, key)`.
    pub fn action(&self, key: u64) -> FaultAction {
        let c = &self.config;
        if !(c.window.0..c.window.1).contains(&key) {
            return FaultAction::None;
        }
        // 53 uniform mantissa bits → `u` in [0, 1); walk the cumulative mix.
        let u = (derive_seed(c.seed, key) >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = c.delay_prob;
        if u < edge {
            return FaultAction::Delay(c.delay);
        }
        edge += c.read_error_prob;
        if u < edge {
            return FaultAction::ReadError;
        }
        edge += c.write_error_prob;
        if u < edge {
            return FaultAction::WriteError;
        }
        edge += c.torn_prob;
        if u < edge {
            return FaultAction::TornResponse;
        }
        edge += c.panic_prob;
        if u < edge {
            return FaultAction::Panic;
        }
        FaultAction::None
    }
}

/// The stable fault key of a request: the client-pinned `X-Fault-Key`
/// header when present (the chaos tests script exact schedules with it),
/// otherwise an FNV-1a hash of `method`, `path`, and `body` — a pure
/// function of request content, so the same logical request always draws
/// the same fault regardless of timing, connection, or worker count.
pub fn fault_key(method: &str, path: &str, body: &str, pinned: Option<&str>) -> u64 {
    if let Some(raw) = pinned {
        if let Ok(key) = raw.trim().parse::<u64>() {
            return key;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in [
        method.as_bytes(),
        b"\0",
        path.as_bytes(),
        b"\0",
        body.as_bytes(),
    ] {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            window: (0, 500),
            delay_prob: 0.1,
            delay: Duration::from_millis(5),
            read_error_prob: 0.1,
            write_error_prob: 0.1,
            torn_prob: 0.1,
            panic_prob: 0.1,
        })
    }

    #[test]
    fn schedule_is_reproducible_and_seed_sensitive() {
        let sweep = |plan: &FaultPlan| (0..1000).map(|k| plan.action(k)).collect::<Vec<_>>();
        let a = sweep(&mixed_plan(42));
        assert_eq!(a, sweep(&mixed_plan(42)), "same seed, same schedule");
        assert_ne!(a, sweep(&mixed_plan(43)), "different seed, different mix");
    }

    #[test]
    fn window_bounds_the_blast_radius() {
        let plan = mixed_plan(7);
        assert!(
            (500..1000).all(|k| plan.action(k) == FaultAction::None),
            "keys past the window always pass clean"
        );
        let faulted = (0..500)
            .filter(|&k| plan.action(k) != FaultAction::None)
            .count();
        // 50% aggregate fault probability over 500 keys: the exact count is
        // pinned by the seed, and it must be in sane statistical range.
        assert!(
            (150..350).contains(&faulted),
            "expected roughly half the window faulted, got {faulted}"
        );
    }

    #[test]
    fn every_action_kind_is_reachable() {
        let plan = mixed_plan(7);
        let mut seen = [false; 5];
        for k in 0..500 {
            match plan.action(k) {
                FaultAction::Delay(d) => {
                    assert_eq!(d, Duration::from_millis(5));
                    seen[0] = true;
                }
                FaultAction::ReadError => seen[1] = true,
                FaultAction::WriteError => seen[2] = true,
                FaultAction::TornResponse => seen[3] = true,
                FaultAction::Panic => seen[4] = true,
                FaultAction::None => {}
            }
        }
        assert_eq!(seen, [true; 5], "mix must exercise every fault kind");
    }

    #[test]
    fn fault_key_prefers_the_pinned_header() {
        assert_eq!(fault_key("POST", "/v1/t/query", "{}", Some("17")), 17);
        assert_eq!(fault_key("POST", "/v1/t/query", "{}", Some(" 17 ")), 17);
        // Unparseable pins fall back to the content hash.
        let content = fault_key("POST", "/v1/t/query", "{}", None);
        assert_eq!(
            fault_key("POST", "/v1/t/query", "{}", Some("nope")),
            content
        );
    }

    #[test]
    fn content_keys_separate_distinct_requests() {
        let a = fault_key("POST", "/v1/t/query", r#"{"seed":1}"#, None);
        let b = fault_key("POST", "/v1/t/query", r#"{"seed":2}"#, None);
        let c = fault_key("GET", "/v1/t/query", r#"{"seed":1}"#, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fault_key("POST", "/v1/t/query", r#"{"seed":1}"#, None));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn rejects_overfull_probability_mixes() {
        FaultPlan::new(FaultConfig {
            delay_prob: 0.6,
            panic_prob: 0.6,
            window: (0, 1),
            ..FaultConfig::default()
        });
    }
}
