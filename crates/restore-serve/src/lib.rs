//! # restore-serve — the network serving front-end
//!
//! Turns a set of sealed [`Snapshot`](restore_core::Snapshot)s into a
//! deployable service: a `std`-only TCP/HTTP 1.1 server (hand-rolled
//! incremental request parsing, no external dependencies) over a
//! hot-swappable, multi-tenant [`SnapshotRegistry`](restore_core::SnapshotRegistry).
//! One epoll reactor thread ([`reactor`]) owns every socket and holds tens
//! of thousands of idle keep-alive connections; request execution runs on
//! a small worker pool behind an admission gate.
//!
//! ```no_run
//! use std::sync::Arc;
//! use restore_core::SnapshotRegistry;
//! use restore_serve::{ServeConfig, Server};
//!
//! let registry = Arc::new(SnapshotRegistry::new());
//! // registry.publish("housing", Arc::new(restore.seal(7)));
//! let server = Server::bind("127.0.0.1:8080", Arc::clone(&registry), ServeConfig::default())?;
//! println!("serving on {}", server.local_addr());
//! // … later: registry.publish("housing", v2)  — hot swap, zero downtime
//! server.shutdown();                           // graceful drain
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## API
//!
//! Execute an AQP query (optionally with a §6 confidence interval) against
//! tenant `housing`:
//!
//! ```text
//! curl -s localhost:8080/v1/housing/query -d '{
//!   "tables": ["neighborhood", "apartment"],
//!   "filter": {"cmp": ["ge", {"col": "rent"}, {"lit": 2000}]},
//!   "group_by": ["state"],
//!   "aggregates": [{"fn": "avg", "col": "rent"}],
//!   "seed": 7,
//!   "confidence": {"kind": "avg", "table": "apartment",
//!                  "column": "rent", "level": 0.95}
//! }'
//! # → {"group_cols":1,"columns":["state","avg_rent"],"rows":[["CA",2066.66…]],
//! #    "scalar":null,"confidence":{"lo":…,"hi":…,"estimate":…,"theoretical":null}}
//! ```
//!
//! Fetch a completed table (all real rows + reweighted synthesized rows):
//!
//! ```text
//! curl -s 'localhost:8080/v1/housing/tables/apartment?seed=1'
//! # → {"name":"apartment","n_rows":1234,"columns":[{"name":"id","dtype":"INT"},…],
//! #    "rows":[[1,…],…]}
//! ```
//!
//! Liveness and counters:
//!
//! ```text
//! curl -s localhost:8080/healthz   # {"status":"ok","tenants":["housing"]}
//! curl -s localhost:8080/metrics   # cache hits/misses, in-flight, per-tenant q/s
//! ```
//!
//! ## Guarantees
//!
//! * **Bit-stable responses** — a response body is a pure function of
//!   `(snapshot, request body)`: execution inherits the snapshot's
//!   determinism contract and the wire encoding renders floats with
//!   shortest-round-trip precision (`tests/http_serving.rs` pins HTTP
//!   bodies byte-identical to direct [`Snapshot::execute`](restore_core::Snapshot::execute)).
//! * **Hot swap without downtime** — `publish(tenant, v2)` swaps the
//!   registry atomically; in-flight requests finish on v1 under their own
//!   `Arc`, new requests see v2, and no request ever observes a torn
//!   registry.
//! * **Panic containment** — a panicking handler (including a poisoned
//!   single-flight follower) answers 500 on its own connection and leaves
//!   every other connection serving.
//! * **Graceful shutdown** — an eventfd wake pops the reactor out of
//!   `epoll_wait`, the listener and idle keep-alive sockets close
//!   immediately, and in-flight responses ride through the drain; built on
//!   `restore-util`'s [`Shutdown`](restore_util::Shutdown) accounting
//!   (guards now live on reactor-owned connection slots, not threads).
//! * **Bounded overload** — an admission gate
//!   ([`ServeConfig::max_in_flight`]) and a per-tenant token bucket
//!   ([`ServeConfig::rate_limit`]) shed excess load with 429 +
//!   `Retry-After` instead of queueing without bound; per-request deadline
//!   budgets answer 503 with stage detail instead of holding connections;
//!   every response carries an accept-order `X-Request-Id` that `/metrics`
//!   threads into the per-tenant error counters. See the "Resilience
//!   plane" section of `ARCHITECTURE.md`.
//! * **Deterministic chaos** — a seeded [`FaultPlan`](fault::FaultPlan)
//!   ([`ServeConfig::fault`]) injects delays, read/write errors, torn
//!   responses, and handler panics as a pure function of `(seed, fault
//!   key)`, so the chaos tests and the `chaos_smoke` CI soak reproduce
//!   bit-identically across runs and worker counts.
//! * **A resilient client** — [`HttpClient::request_with_retry`] backs off
//!   exponentially with deterministic jitter, honors `Retry-After`, and
//!   reconnects on transport errors, all inside a wall-clock
//!   [`RetryPolicy::budget`].
//!
//! ## Fleet mode — the `shard_router` binary
//!
//! One process is one core budget. The [`router`] module (and the
//! `shard_router` binary) scale out horizontally: a thin router process —
//! the same `Server`, in fleet mode — maps each tenant to one of N worker
//! processes by stable FNV-1a hash and forwards over pooled keep-alive
//! connections, with health probes and snapshot-directory re-exec
//! failover. Wire format and response bytes are identical to a direct
//! worker connection.
//!
//! ```text
//! # one router + 4 workers, all booted from the same snapshot directory
//! shard_router --snapshot-dir /var/lib/restore/snapshots --shards 4 --addr 127.0.0.1:8080
//! # → shard_router listening on 127.0.0.1:8080
//!
//! curl -s localhost:8080/v1/housing/query -d '{…}'   # forwarded to housing's shard
//! curl -s localhost:8080/healthz            # {"status":"ok","fleet":{"shards":4,"up":4}}
//! curl -s localhost:8080/metrics            # router metrics + "fleet" section
//! curl -s localhost:8080/fleet/2/metrics    # worker 2's raw /metrics, passed through
//! ```
//!
//! A standalone worker (what the router re-execs on failover — also handy
//! for running workers under your own supervisor and pointing a fleet at
//! them with fixed addresses):
//!
//! ```text
//! shard_router --worker --snapshot-dir /var/lib/restore/snapshots
//! # → shard_router worker listening on 127.0.0.1:PORT   (ephemeral port)
//! ```
//!
//! In-process, the same plumbing is three calls: [`router::Fleet::start`]
//! with a [`router::FleetConfig`], put the `Arc<Fleet>` into
//! [`ServeConfig::fleet`], and `Server::bind` as usual. See the "Fleet
//! path" section of `ARCHITECTURE.md` for the failover rules.

pub mod client;
pub mod fault;
pub mod http;
pub mod reactor;
pub mod router;
pub mod server;
pub mod store;

pub use client::{
    one_shot, ClientConfig, ConnectionPool, ConnectionPoolStats, HttpClient, HttpResponse,
    RetryPolicy,
};
pub use fault::{FaultAction, FaultConfig, FaultPlan};
pub use http::{Limits, Request, Response};
pub use reactor::raise_fd_limit;
pub use router::{Fleet, FleetConfig, ShardConfig, WorkerSpec};
pub use server::{ServeConfig, Server};
pub use store::{LoadedSnapshot, SkippedSnapshot, SnapshotStore};
