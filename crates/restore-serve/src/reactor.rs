//! The epoll readiness event loop under the serving front-end — `std` only,
//! speaking to the kernel through a minimal `extern "C"` surface
//! (`epoll_create1` / `epoll_ctl` / `epoll_wait` / `eventfd`) against the
//! libc `std` already links. One reactor thread owns every socket: it
//! accepts, feeds nonblocking reads through the incremental
//! [`RequestParser`](crate::http::RequestParser), and writes responses back
//! on writability. Request *execution* never runs here — a parsed request
//! is handed to the worker pool via [`Shared::on_request`], and the worker's
//! completion is delivered back through an eventfd wake.
//!
//! Per-connection state machine:
//!
//! ```text
//!  KeepAliveIdle ──bytes──► ReadingHead ──head──► ReadingBody
//!        ▲                      │ (no body: skip)      │
//!        │                      ▼                      ▼
//!        │                  complete request ──► Dispatched (worker owns it)
//!        │                                             │ completion
//!        └────────── response flushed ◄── Writing ◄────┘
//!             (pipelined carry re-parsed immediately)
//! ```
//!
//! Deadlines are reactor-enforced: a request that stops arriving mid-parse
//! is answered 400 after [`ServeConfig::request_deadline`](crate::ServeConfig::request_deadline),
//! and a client that stops reading its response is cut on the same budget —
//! so neither a slow-loris sender nor a dead receiver can pin a connection
//! slot through graceful drain.

use std::collections::{HashMap, HashSet};
use std::ffi::c_int;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use restore_util::ConnectionGuard;

use crate::fault::FaultAction;
use crate::http::{encode_response, torn_prefix_len, ParseError, RequestParser, Response};
use crate::server::{Completion, Decision, Metrics, Shared};

/// Raw syscall surface. Constants match the Linux UAPI headers; the
/// `epoll_event` layout is packed on x86_64 (and only there), exactly as
/// the kernel expects.
mod sys {
    use std::ffi::c_int;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Raises the process soft fd limit to the hard limit (always permitted,
/// no privileges needed) and returns the resulting soft limit. Connection
/// counts are fd counts, so every connection-scale entry point — the
/// server-side bench phases and the soak tests — calls this first.
pub fn raise_fd_limit() -> io::Result<u64> {
    let mut lim = sys::RLimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = sys::RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } != 0 {
            return Err(io::Error::last_os_error());
        }
        lim.cur = lim.max;
    }
    Ok(lim.cur)
}

/// Safe wrapper over one epoll instance. Tokens are opaque `u64`s carried
/// in `epoll_event.data`; closing a registered fd deregisters it.
pub(crate) struct Epoll {
    fd: OwnedFd,
    events: Vec<sys::EpollEvent>,
}

fn interest_mask(read: bool, write: bool) -> u32 {
    let mut mask = 0;
    if read {
        mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if write {
        mask |= sys::EPOLLOUT;
    }
    mask
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Self> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
            events: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token,
        };
        if unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, interest_mask(read, write), token)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, interest_mask(read, write), token)
    }

    /// Blocks until readiness events arrive (or `timeout` elapses; `None`
    /// blocks indefinitely), filling `out` with `(token, event mask)`
    /// pairs. EINTR retries internally.
    pub(crate) fn wait(
        &mut self,
        out: &mut Vec<(u64, u32)>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        out.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a deadline poll never wakes before its deadline
            // and then spins until the clock catches up.
            Some(d) => {
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                ms.min(i32::MAX as u128) as c_int
            }
        };
        let n = loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.fd.as_raw_fd(),
                    self.events.as_mut_ptr(),
                    self.events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.events[..n] {
            out.push((ev.data, ev.events));
        }
        Ok(())
    }
}

/// An eventfd the worker pool (and shutdown) use to pop the reactor out of
/// `epoll_wait`. Nonblocking on both ends: a saturated counter still means
/// "a wake is pending", and the reactor drains it back to zero per wakeup.
pub(crate) struct WakeHandle {
    fd: OwnedFd,
}

impl WakeHandle {
    pub(crate) fn new() -> io::Result<Self> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    pub(crate) fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    pub(crate) fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = unsafe { sys::write(self.fd.as_raw_fd(), one.as_ptr(), one.len()) };
    }

    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        while unsafe { sys::read(self.fd.as_raw_fd(), buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

pub(crate) const TOKEN_LISTENER: u64 = 0;
pub(crate) const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;

/// Where a connection is in its request/response cycle. `/metrics` exposes
/// the `KeepAliveIdle` population as `event_loop.keepalive_idle`.
enum Phase {
    /// Bytes of a request head are buffered; the terminator hasn't landed.
    ReadingHead,
    /// The head is complete; `Content-Length` body bytes are outstanding.
    ReadingBody,
    /// A worker owns the parsed request; the reactor keeps reading carry
    /// (bounded) but dispatches nothing else on this connection.
    Dispatched,
    /// Encoded response bytes are waiting on socket writability.
    Writing,
    /// Between requests: parser empty, nothing in flight.
    KeepAliveIdle,
}

struct Conn {
    stream: TcpStream,
    phase: Phase,
    parser: RequestParser,
    /// When the current (incomplete) request's first bytes arrived — the
    /// start of its deadline budget.
    partial_since: Option<Instant>,
    /// Cut-off for an incomplete request (slow-loris defense → 400).
    partial_deadline: Option<Instant>,
    /// Encoded response bytes not yet accepted by the kernel.
    pending: Vec<u8>,
    written: usize,
    close_after_write: bool,
    /// Cut-off for a client that stops reading its response.
    write_deadline: Option<Instant>,
    /// Reads suspended because the pipelined carry hit its bound.
    read_paused: bool,
    /// Peer sent FIN; never re-arm read interest (level-triggered EOF
    /// would spin), and close once nothing is left to answer.
    peer_eof: bool,
    /// Interest currently registered with epoll, to skip redundant MODs.
    registered: (bool, bool),
    _guard: ConnectionGuard,
}

/// What one state-machine step decided, computed under the `Conn` borrow
/// and acted on after it ends.
enum Step {
    /// Nothing further until more I/O (or a completion) arrives.
    Parked,
    /// Close without an answer (clean EOF between requests).
    CloseQuiet,
    /// Answer immediately from the reactor, then close if `bool` says so.
    Respond(Response, bool),
    /// A complete request is ready for the dispatch decision.
    Ready(crate::http::Request, Instant),
}

enum WriteOutcome {
    /// Connection closed (fatal error, injected fault, or `close` done).
    Closed,
    /// Bytes remain; EPOLLOUT is armed.
    Pending,
    /// Fully flushed and the connection stays open.
    DoneKeepAlive,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Tokens carrying a partial-request or stalled-write deadline — the
    /// only connections the poll timeout has to consider, so 10k idle
    /// sockets don't cost a 10k-entry scan per wakeup.
    deadlined: HashSet<u64>,
    next_token: u64,
}

impl Reactor {
    pub(crate) fn new(listener: TcpListener, epoll: Epoll, shared: Arc<Shared>) -> Self {
        Self {
            shared,
            epoll,
            listener: Some(listener),
            conns: HashMap::new(),
            deadlined: HashSet::new(),
            next_token: FIRST_CONN_TOKEN,
        }
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            if self.epoll.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for this loop;
                // fall through to the shutdown checks so we still exit.
                events.clear();
            }
            self.shared
                .metrics
                .epoll_wakeups
                .fetch_add(1, Ordering::Relaxed);
            for &(token, mask) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    _ => self.conn_event(token, mask),
                }
            }
            self.drain_completions();
            if self.shared.shutdown.is_triggered() {
                self.on_shutdown();
                if self.listener.is_none() && self.conns.is_empty() {
                    return;
                }
            }
            self.expire_deadlines();
            if self.shared.abandon.load(Ordering::Acquire) {
                return;
            }
        }
    }

    /// Next `epoll_wait` timeout: indefinite unless some connection holds
    /// a deadline, then the nearest one (capped at `read_poll` so a clock
    /// oddity can never park the loop past its tick).
    fn poll_timeout(&self) -> Option<Duration> {
        if self.deadlined.is_empty() {
            return None;
        }
        let mut nearest: Option<Instant> = None;
        for token in &self.deadlined {
            let Some(conn) = self.conns.get(token) else {
                continue;
            };
            for deadline in [conn.partial_deadline, conn.write_deadline]
                .into_iter()
                .flatten()
            {
                nearest = Some(match nearest {
                    Some(n) => n.min(deadline),
                    None => deadline,
                });
            }
        }
        let nearest = nearest?;
        let delta = nearest.saturating_duration_since(Instant::now());
        Some(delta.min(self.shared.config.read_poll))
    }

    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.shared.metrics.accepts.fetch_add(1, Ordering::Relaxed);
                    // A refused guard means shutdown won the race: drop the
                    // socket; the listener itself closes on the next sweep.
                    let Some(guard) = self.shared.shutdown.begin() else {
                        continue;
                    };
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.shared
                        .metrics
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .metrics
                        .keepalive_idle
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            phase: Phase::KeepAliveIdle,
                            parser: RequestParser::new(),
                            partial_since: None,
                            partial_deadline: None,
                            pending: Vec::new(),
                            written: 0,
                            close_after_write: false,
                            write_deadline: None,
                            read_paused: false,
                            peer_eof: false,
                            registered: (true, false),
                            _guard: guard,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (fd exhaustion under a
                    // connection flood): back off briefly instead of
                    // busy-spinning on the still-ready listener.
                    std::thread::sleep(Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        if mask & sys::EPOLLERR != 0 {
            self.close_conn(token);
            return;
        }
        if mask & sys::EPOLLOUT != 0 {
            self.continue_write(token);
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            self.do_read(token);
        }
    }

    fn do_read(&mut self, token: u64) {
        let fatal = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_paused || conn.peer_eof {
                return;
            }
            let carry_bound = self.shared.config.limits.max_head_bytes
                + self.shared.config.limits.max_body_bytes
                + READ_CHUNK;
            let mut chunk = [0u8; READ_CHUNK];
            let mut fatal = false;
            loop {
                match (&conn.stream).read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        let was_empty = !conn.parser.has_partial();
                        conn.parser.extend(&chunk[..n]);
                        if was_empty {
                            conn.partial_since = Some(Instant::now());
                        }
                        if matches!(conn.phase, Phase::Dispatched | Phase::Writing)
                            && conn.parser.buffered() > carry_bound
                        {
                            // A pipelining client outran the in-flight
                            // request; stop reading until its response
                            // ships rather than buffering without bound.
                            conn.read_paused = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.shared
                            .metrics
                            .read_would_block
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            fatal
        };
        if fatal {
            self.close_conn(token);
            return;
        }
        self.sync_interest(token);
        self.advance(token);
    }

    /// Pumps the parse → dispatch cycle while the connection is in a
    /// parsing phase. Iterative (not recursive) so a buffer full of
    /// pipelined requests can't grow the stack.
    fn advance(&mut self, token: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if matches!(conn.phase, Phase::Dispatched | Phase::Writing) {
                    return;
                }
                match conn.parser.next_request(&self.shared.config.limits) {
                    Err(ParseError::TooLarge) => {
                        Step::Respond(Response::error(413, "request too large"), true)
                    }
                    Err(ParseError::Malformed(msg)) => {
                        Step::Respond(Response::error(400, &msg), true)
                    }
                    Ok(Some(request)) => {
                        let arrived = conn.partial_since.take().unwrap_or_else(Instant::now);
                        conn.partial_deadline = None;
                        Step::Ready(request, arrived)
                    }
                    Ok(None) if conn.parser.has_partial() => {
                        if conn.peer_eof {
                            Step::Respond(
                                Response::error(400, "connection closed mid-request"),
                                true,
                            )
                        } else {
                            let phase = if conn.parser.reading_body() {
                                Phase::ReadingBody
                            } else {
                                Phase::ReadingHead
                            };
                            set_phase(&self.shared.metrics, conn, phase);
                            let since = *conn.partial_since.get_or_insert_with(Instant::now);
                            if conn.partial_deadline.is_none() {
                                conn.partial_deadline =
                                    Some(since + self.shared.config.request_deadline);
                            }
                            Step::Parked
                        }
                    }
                    Ok(None) => {
                        set_phase(&self.shared.metrics, conn, Phase::KeepAliveIdle);
                        conn.partial_since = None;
                        conn.partial_deadline = None;
                        if conn.peer_eof {
                            Step::CloseQuiet
                        } else {
                            Step::Parked
                        }
                    }
                }
            };
            match step {
                Step::Parked => {
                    self.sync_deadline(token);
                    return;
                }
                Step::CloseQuiet => {
                    self.close_conn(token);
                    return;
                }
                Step::Respond(response, close) => {
                    self.sync_deadline(token);
                    match self.respond(token, response, close, FaultAction::None) {
                        WriteOutcome::DoneKeepAlive => continue,
                        _ => return,
                    }
                }
                Step::Ready(request, arrived) => {
                    self.sync_deadline(token);
                    match self.shared.on_request(token, request, arrived) {
                        Decision::Close => {
                            self.close_conn(token);
                            return;
                        }
                        Decision::Respond(response, close) => {
                            match self.respond(token, response, close, FaultAction::None) {
                                WriteOutcome::DoneKeepAlive => continue,
                                _ => return,
                            }
                        }
                        Decision::Dispatched => {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                set_phase(&self.shared.metrics, conn, Phase::Dispatched);
                            }
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Stages an encoded response (applying write-side fault actions) and
    /// flushes as much as the socket will take right now.
    fn respond(
        &mut self,
        token: u64,
        response: Response,
        close: bool,
        action: FaultAction,
    ) -> WriteOutcome {
        if action == FaultAction::WriteError {
            // Injected write failure: the work happened, the response is
            // dropped on the floor.
            self.close_conn(token);
            return WriteOutcome::Closed;
        }
        let mut close = close;
        let mut bytes = encode_response(&response, close);
        if action == FaultAction::TornResponse {
            bytes.truncate(torn_prefix_len(bytes.len()));
            close = true;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return WriteOutcome::Closed;
        };
        conn.pending = bytes;
        conn.written = 0;
        conn.close_after_write = close;
        self.flush_write(token)
    }

    fn continue_write(&mut self, token: u64) {
        let writing = matches!(
            self.conns.get(&token).map(|c| &c.phase),
            Some(Phase::Writing)
        );
        if !writing {
            return;
        }
        if let WriteOutcome::DoneKeepAlive = self.flush_write(token) {
            self.advance(token);
        }
    }

    fn flush_write(&mut self, token: u64) -> WriteOutcome {
        enum Flush {
            Done,
            Blocked,
            Fatal,
        }
        let flushed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return WriteOutcome::Closed;
            };
            loop {
                if conn.written >= conn.pending.len() {
                    break Flush::Done;
                }
                match (&conn.stream).write(&conn.pending[conn.written..]) {
                    Ok(0) => break Flush::Fatal,
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.shared
                            .metrics
                            .write_would_block
                            .fetch_add(1, Ordering::Relaxed);
                        break Flush::Blocked;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Flush::Fatal,
                }
            }
        };
        match flushed {
            Flush::Fatal => {
                self.close_conn(token);
                WriteOutcome::Closed
            }
            Flush::Blocked => {
                let deadline = Instant::now() + self.shared.config.request_deadline;
                if let Some(conn) = self.conns.get_mut(&token) {
                    set_phase(&self.shared.metrics, conn, Phase::Writing);
                    if conn.write_deadline.is_none() {
                        conn.write_deadline = Some(deadline);
                    }
                }
                self.sync_deadline(token);
                self.sync_interest(token);
                WriteOutcome::Pending
            }
            Flush::Done => {
                let close = {
                    let conn = self.conns.get_mut(&token).expect("conn flushed above");
                    conn.pending.clear();
                    conn.written = 0;
                    conn.write_deadline = None;
                    conn.close_after_write
                };
                if close {
                    self.close_conn(token);
                    return WriteOutcome::Closed;
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_paused = false;
                    set_phase(&self.shared.metrics, conn, Phase::KeepAliveIdle);
                }
                self.sync_deadline(token);
                self.sync_interest(token);
                WriteOutcome::DoneKeepAlive
            }
        }
    }

    /// Delivers finished worker responses to their connections.
    fn drain_completions(&mut self) {
        let completions: Vec<Completion> = self.shared.take_completions();
        for completion in completions {
            let token = completion.token;
            // The connection may have died (reset, abandon) while the
            // worker ran; its completion simply evaporates.
            let dispatched = matches!(
                self.conns.get(&token).map(|c| &c.phase),
                Some(Phase::Dispatched)
            );
            if !dispatched {
                continue;
            }
            if let WriteOutcome::DoneKeepAlive = self.respond(
                token,
                completion.response,
                completion.close,
                completion.action,
            ) {
                self.advance(token);
            }
        }
    }

    /// Cuts connections whose partial request or stalled response write
    /// outlived the request deadline.
    fn expire_deadlines(&mut self) {
        if self.deadlined.is_empty() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<(u64, bool)> = self
            .deadlined
            .iter()
            .filter_map(|&token| {
                let conn = self.conns.get(&token)?;
                if conn.write_deadline.is_some_and(|d| d <= now) {
                    Some((token, true))
                } else if conn.partial_deadline.is_some_and(|d| d <= now) {
                    Some((token, false))
                } else {
                    None
                }
            })
            .collect();
        for (token, stalled_write) in expired {
            if stalled_write {
                self.close_conn(token);
            } else {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.partial_deadline = None;
                }
                self.respond(
                    token,
                    Response::error(400, "request did not complete in time"),
                    true,
                    FaultAction::None,
                );
            }
        }
    }

    /// Shutdown sweep: close the listener (new connects are refused from
    /// here on) and every connection with no response in flight — a
    /// half-received request is not in-flight work, and graceful drain
    /// must not wait on a stalled sender. `Dispatched`/`Writing`
    /// connections ride through the drain and close with their response.
    fn on_shutdown(&mut self) {
        self.listener = None;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| !matches!(conn.phase, Phase::Dispatched | Phase::Writing))
            .map(|(&token, _)| token)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    fn sync_deadline(&mut self, token: u64) {
        let has = self
            .conns
            .get(&token)
            .is_some_and(|c| c.partial_deadline.is_some() || c.write_deadline.is_some());
        if has {
            self.deadlined.insert(token);
        } else {
            self.deadlined.remove(&token);
        }
    }

    /// Re-registers the connection's epoll interest when it changed.
    fn sync_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let read = !conn.peer_eof && !conn.read_paused;
        let write = matches!(conn.phase, Phase::Writing) && conn.written < conn.pending.len();
        if conn.registered == (read, write) {
            return;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), token, read, write)
            .is_ok()
        {
            conn.registered = (read, write);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.deadlined.remove(&token);
            self.shared
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            if matches!(conn.phase, Phase::KeepAliveIdle) {
                self.shared
                    .metrics
                    .keepalive_idle
                    .fetch_sub(1, Ordering::Relaxed);
            }
            // Dropping `conn` closes the socket (auto-deregistering it
            // from epoll) and releases its ConnectionGuard.
        }
    }
}

fn set_phase(metrics: &Metrics, conn: &mut Conn, phase: Phase) {
    let was_idle = matches!(conn.phase, Phase::KeepAliveIdle);
    let is_idle = matches!(phase, Phase::KeepAliveIdle);
    if was_idle && !is_idle {
        metrics.keepalive_idle.fetch_sub(1, Ordering::Relaxed);
    } else if !was_idle && is_idle {
        metrics.keepalive_idle.fetch_add(1, Ordering::Relaxed);
    }
    conn.phase = phase;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn raise_fd_limit_is_idempotent_and_nonzero() {
        let first = raise_fd_limit().expect("raise");
        let second = raise_fd_limit().expect("raise again");
        assert!(first > 0);
        assert_eq!(first, second, "already at the hard limit");
    }

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let mut epoll = Epoll::new().expect("epoll");
        let wake = WakeHandle::new().expect("eventfd");
        epoll
            .add(wake.as_raw_fd(), TOKEN_WAKE, true, false)
            .expect("register");
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());
        wake.wake();
        wake.wake();
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, TOKEN_WAKE);
        assert_ne!(events[0].1 & sys::EPOLLIN, 0);
        wake.drain();
        // Drained: readiness is gone (level-triggered would re-report).
        epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn epoll_reports_socket_readability_with_token() {
        let mut epoll = Epoll::new().expect("epoll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        epoll
            .add(server_side.as_raw_fd(), 42, true, false)
            .expect("register");
        let mut events = Vec::new();
        client.write_all(b"ping").expect("write");
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events
            .iter()
            .any(|&(token, mask)| { token == 42 && mask & sys::EPOLLIN != 0 }));
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");
        // Write interest on a fresh socket reports writable immediately.
        epoll
            .modify(server_side.as_raw_fd(), 42, true, true)
            .expect("modify");
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events
            .iter()
            .any(|&(token, mask)| token == 42 && mask & sys::EPOLLOUT != 0));
    }
}
