//! `shard_router` — multi-process scale-out for `restore-serve`.
//!
//! Router mode (the default) boots N worker processes (re-execs of this
//! same binary in `--worker` mode) from one versioned snapshot directory
//! and serves the standard wire format in front of them, forwarding each
//! `/v1/{tenant}/…` request to the tenant's shard over pooled keep-alive
//! connections. Dead workers are re-execed from the same directory.
//!
//! ```text
//! shard_router --snapshot-dir DIR --shards N [--addr HOST:PORT] [--worker-threads W]
//! shard_router --worker --snapshot-dir DIR [--addr HOST:PORT]
//! ```
//!
//! Both modes print a `… listening on ADDR` line on stdout once bound and
//! run until stdin reaches EOF (so an orphaned worker exits when its
//! parent dies), then drain gracefully.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use restore_core::SnapshotRegistry;
use restore_serve::router::{Fleet, FleetConfig, ShardConfig, WorkerSpec};
use restore_serve::{raise_fd_limit, ServeConfig, Server};

struct Args {
    worker: bool,
    snapshot_dir: Option<PathBuf>,
    shards: usize,
    addr: String,
    worker_threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: shard_router --snapshot-dir DIR --shards N [--addr HOST:PORT] [--worker-threads W]\n\
         \x20      shard_router --worker --snapshot-dir DIR [--addr HOST:PORT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        worker: false,
        snapshot_dir: None,
        shards: 2,
        addr: String::new(),
        worker_threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--worker" => args.worker = true,
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir"))),
            "--shards" => args.shards = value("--shards").parse().expect("--shards: usize"),
            "--addr" => args.addr = value("--addr"),
            "--worker-threads" => {
                args.worker_threads = Some(value("--worker-threads").parse().expect("usize"))
            }
            _ => usage(),
        }
    }
    if args.snapshot_dir.is_none() || args.shards == 0 {
        usage();
    }
    if args.addr.is_empty() {
        // Workers always take an ephemeral port: a respawned worker never
        // races a TIME_WAIT socket for its old address.
        args.addr = "127.0.0.1:0".to_string();
    }
    args
}

/// Blocks until stdin reaches EOF — the lifetime protocol shared with the
/// bench harness children: the parent holds our stdin pipe; parent death
/// or drop closes it and we exit.
fn wait_for_stdin_eof() {
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
}

fn main() -> ExitCode {
    let args = parse_args();
    let _ = raise_fd_limit();
    let registry = Arc::new(SnapshotRegistry::new());

    if args.worker {
        // A worker is a stock server; the PR 9 boot scan of the snapshot
        // directory is its entire startup story.
        let config = ServeConfig {
            snapshot_dir: args.snapshot_dir,
            workers: args
                .worker_threads
                .unwrap_or_else(|| ServeConfig::default().workers),
            ..ServeConfig::default()
        };
        let server = match Server::bind(&args.addr, registry, config) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("shard_router worker: bind {}: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        println!("shard_router worker listening on {}", server.local_addr());
        wait_for_stdin_eof();
        server.shutdown();
        return ExitCode::SUCCESS;
    }

    let snapshot_dir = args.snapshot_dir.expect("checked in parse_args");
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("shard_router: current_exe: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = WorkerSpec {
        program,
        args: vec![
            "--worker".to_string(),
            "--snapshot-dir".to_string(),
            snapshot_dir.display().to_string(),
        ],
    };
    let fleet_config = FleetConfig {
        shards: vec![
            ShardConfig {
                addr: None,
                worker: Some(spec),
            };
            args.shards
        ],
        ..FleetConfig::default()
    };
    let fleet = match Fleet::start(fleet_config) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("shard_router: fleet start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServeConfig {
        fleet: Some(Arc::clone(&fleet)),
        // Router workers block while riding out a shard failover; keep
        // enough of them that one stuck shard can't head-of-line block the
        // healthy ones.
        workers: args
            .worker_threads
            .unwrap_or_else(|| (4 * args.shards).max(8)),
        ..ServeConfig::default()
    };
    let server = match Server::bind(&args.addr, registry, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shard_router: bind {}: {e}", args.addr);
            fleet.shutdown();
            return ExitCode::FAILURE;
        }
    };
    println!("shard_router listening on {}", server.local_addr());
    wait_for_stdin_eof();
    server.shutdown();
    fleet.shutdown();
    ExitCode::SUCCESS
}
