//! The serving front-end: a thread-per-connection TCP/HTTP 1.1 server over
//! a shared [`SnapshotRegistry`], fronted by an ingress resilience plane.
//!
//! Request lifecycle:
//!
//! ```text
//!  accept loop ──► connection thread (one per socket, ConnectionGuard held)
//!      │               loop: read_request (poll ticks check shutdown)
//!      │                 │
//!      │                 ▼ request id (accept order) · fault plan consult
//!      │               admission gate (max_in_flight) ──► 429 + Retry-After
//!      │                 │
//!      │                 ▼ route — resolves ONE registry view per request
//!      │               per-tenant token bucket ──► 429 + Retry-After
//!      │               deadline budget checks  ──► 503 + stage detail
//!      │               POST /v1/{t}/query   GET /v1/{t}/tables/{n}
//!      │               GET /healthz         GET /metrics   (never gated)
//!      │                 │
//!      │                 ▼ catch_unwind: a panicking handler answers 500
//!      │               write_response (+X-Request-Id; keep-alive)
//!      ▼
//!  Server::shutdown(): Shutdown::trigger → wake accept → drain guards
//! ```
//!
//! **Admission control.** At most [`ServeConfig::max_in_flight`] `/v1/*`
//! requests execute concurrently; excess load is *shed* with an immediate
//! 429 carrying a `Retry-After` computed from an EWMA of recent service
//! times, instead of queueing work behind saturated threads. Control-plane
//! routes (`/healthz`, `/metrics`) bypass the gate so the service stays
//! observable under overload. A per-tenant token bucket
//! ([`restore_util::RateLimiter`]) additionally bounds each tenant's
//! sustained rate, so one hot tenant degrades alone instead of starving
//! the box.
//!
//! **Deadline budget.** [`ServeConfig::request_deadline`] is a per-request
//! wall-clock budget starting at the request's first byte, re-checked
//! between parse, the single-flight wait, synthesis, and the confidence
//! tail. An exhausted budget answers 503 with the stage reached and the
//! elapsed/budget milliseconds, releasing the connection instead of
//! holding it. A budget 503 computed by a single-flight leader is shared
//! with its followers — the work did not materialize for anyone, and the
//! retrying client treats 503 as retryable.
//!
//! **Fault injection.** An optional seeded [`FaultPlan`] injects delays,
//! read/write errors, torn responses, and handler panics on a schedule
//! that is a pure function of `(seed, fault key)` — see [`crate::fault`] —
//! generalizing the test-only `/debug/panic/{key}` route into the chaos
//! layer the resilience tests and `chaos_smoke` soak drive.
//!
//! **Hot swap / drain semantics.** A request resolves its tenant against
//! one [`SnapshotRegistry::view`] and keeps the resulting `Arc<Snapshot>`
//! for its whole lifetime; `publish(tenant, v2)` makes v2 visible to the
//! *next* request while v1 drains under the in-flight `Arc` refs, and
//! `retire(tenant)` 404s new requests without disturbing running ones.
//!
//! **Cold-path dedupe.** Identical concurrent `POST …/query` bodies for
//! the same tenant *and the same snapshot version* share one execution via
//! `restore-util`'s [`SingleFlight`] — the snapshot's own single-flight
//! `JoinCache` already collapses concurrent synthesis of a chain; this
//! outer layer also collapses the (cheaper) filter/aggregate tail. A
//! leader panic poisons the flight: followers answer 500 instead of
//! hanging, and the next request computes afresh.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use restore_core::wire::{self, QueryRequest};
use restore_core::{CoreError, SnapshotRegistry};
use restore_util::json::ToJson;
use restore_util::{ConnectionGuard, RateLimitConfig, RateLimiter, Shutdown, SingleFlight};

use crate::fault::{self, FaultAction, FaultConfig, FaultPlan};
use crate::http::{
    configure_stream, error_body, read_request, write_response, write_torn_response, Limits,
    ReadOutcome, Request, Response,
};

/// Server knobs. Defaults are sized for tests and modest deployments.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub limits: Limits,
    /// Poll interval at which idle keep-alive connections re-check the
    /// shutdown signal.
    pub read_poll: Duration,
    /// Per-request deadline budget, started at the request's first byte:
    /// a request that has not finished arriving within it is cut, and one
    /// that has not *started each processing stage* within it answers 503
    /// with partial-progress detail instead of holding the connection.
    pub request_deadline: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections.
    pub drain_timeout: Duration,
    /// Admission gate: at most this many `/v1/*` requests execute
    /// concurrently; excess answers 429 + `Retry-After` immediately.
    pub max_in_flight: usize,
    /// Per-tenant token-bucket rate limit; `None` disables it.
    pub rate_limit: Option<RateLimitConfig>,
    /// Seeded deterministic fault injection; `None` (the default) disables
    /// it. **Test/chaos only** — never enable in production configs.
    pub fault: Option<FaultConfig>,
    /// Enables `GET /debug/panic/{key}`, a fault-injection route whose
    /// handler panics inside the shared single-flight — **test only**; the
    /// serving tests use it to prove a panicking handler cannot wedge
    /// other connections. Subsumed by [`ServeConfig::fault`] for anything
    /// beyond that one scenario.
    pub panic_route: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            limits: Limits::default(),
            read_poll: Duration::from_millis(100),
            request_deadline: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            max_in_flight: 256,
            rate_limit: None,
            fault: None,
            panic_route: false,
        }
    }
}

#[derive(Default)]
struct TenantCounters {
    queries: AtomicU64,
    errors: AtomicU64,
    /// Requests shed by this tenant's token bucket.
    rate_limited: AtomicU64,
    /// `X-Request-Id` of the most recent error response (0 = none yet;
    /// request ids start at 1).
    last_error_request_id: AtomicU64,
}

impl TenantCounters {
    fn note_error(&self, request_id: u64) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.last_error_request_id
            .store(request_id, Ordering::Relaxed);
    }
}

/// Serving counters surfaced by `GET /metrics`.
struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    requests_in_flight: AtomicU64,
    panics_caught: AtomicU64,
    /// 429s issued by the admission gate and the per-tenant rate limiter.
    requests_shed: AtomicU64,
    /// 503s issued by deadline-budget checks.
    deadline_exceeded: AtomicU64,
    /// Faults the configured [`FaultPlan`] injected.
    faults_injected: AtomicU64,
    /// EWMA of admitted-request service time (nanoseconds, α = 1/8) — the
    /// basis of the admission gate's `Retry-After` hint.
    service_ewma_nanos: AtomicU64,
    per_tenant: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
}

impl Metrics {
    fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            service_ewma_nanos: AtomicU64::new(0),
            per_tenant: Mutex::new(BTreeMap::new()),
        }
    }

    fn tenant(&self, name: &str) -> Arc<TenantCounters> {
        let mut map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    fn record_service_time(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        // Racy load/store is fine for a heuristic hint; no CAS needed.
        let old = self.service_ewma_nanos.load(Ordering::Relaxed);
        self.service_ewma_nanos
            .store(old - old / 8 + sample / 8, Ordering::Relaxed);
    }
}

/// Decrements the in-flight gauge even when the handler panics.
struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII admission permit; dropping it (including by panic) frees the slot.
struct AdmitPermit<'a>(&'a AtomicU64);

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A request's wall-clock budget, started when its first bytes arrived.
/// Stages check it *before* starting work; a blown budget sheds the rest
/// of the request rather than interrupting a stage mid-flight.
#[derive(Clone, Copy)]
struct Budget {
    arrived: Instant,
    limit: Duration,
}

impl Budget {
    /// `Ok` while inside budget; `Err(elapsed)` once exhausted.
    fn check(&self) -> Result<(), Duration> {
        let elapsed = self.arrived.elapsed();
        if elapsed > self.limit {
            Err(elapsed)
        } else {
            Ok(())
        }
    }
}

/// Single-flight key: tenant, snapshot generation (pointer identity), and
/// the raw request body (`Arc<str>` so the leader's key clone into the
/// in-flight map is a refcount bump, not a second body copy). Including
/// the generation means a hot swap never lets a request share a result
/// computed on the previous snapshot.
type QueryKey = (String, usize, Arc<str>);
/// Status + body, cheaply cloneable to every follower.
type QueryOutcome = (u16, Arc<String>);

struct Shared {
    registry: Arc<SnapshotRegistry>,
    config: ServeConfig,
    shutdown: Shutdown,
    metrics: Metrics,
    queries: SingleFlight<QueryKey, QueryOutcome>,
    /// Accept-order request id counter; ids start at 1.
    request_ids: AtomicU64,
    /// `/v1/*` requests currently admitted (bounded by `max_in_flight`).
    admitted: AtomicU64,
    limiter: Option<RateLimiter>,
    fault: Option<FaultPlan>,
}

impl Shared {
    fn try_admit(&self) -> Option<AdmitPermit<'_>> {
        let prev = self.admitted.fetch_add(1, Ordering::AcqRel);
        if prev >= self.config.max_in_flight as u64 {
            self.admitted.fetch_sub(1, Ordering::AcqRel);
            None
        } else {
            Some(AdmitPermit(&self.admitted))
        }
    }

    /// How long a shed client should wait before retrying: one EWMA
    /// service time (the 429 builder rounds this up to at least 1 s).
    fn retry_after_hint(&self) -> Duration {
        Duration::from_nanos(self.metrics.service_ewma_nanos.load(Ordering::Relaxed))
    }

    /// The 503 every exhausted-budget stage answers: which stage the
    /// request reached and how far over budget it was — partial progress a
    /// retrying client can log instead of a connection silently held.
    fn deadline_response(&self, stage: &str, elapsed: Duration, budget: &Budget) -> Response {
        self.metrics
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        Response::json(
            503,
            format!(
                "{{\"error\":\"deadline budget exhausted\",\"stage\":\"{stage}\",\
                 \"elapsed_ms\":{},\"budget_ms\":{}}}",
                elapsed.as_millis(),
                budget.limit.as_millis()
            ),
        )
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// accepting and drains in-flight connections.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `registry` on `addr` (use port 0 for an
    /// ephemeral port; read it back via [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<SnapshotRegistry>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let limiter = config.rate_limit.map(RateLimiter::new);
        let fault = config.fault.map(FaultPlan::new);
        let shared = Arc::new(Shared {
            registry,
            config,
            shutdown: Shutdown::new(),
            metrics: Metrics::new(),
            queries: SingleFlight::new(),
            request_ids: AtomicU64::new(1),
            admitted: AtomicU64::new(0),
            limiter,
            fault,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.shared.registry
    }

    /// Connections currently being served.
    pub fn connections_active(&self) -> usize {
        self.shared.shutdown.active()
    }

    /// `/v1/*` requests currently holding an admission permit.
    pub fn requests_admitted(&self) -> usize {
        self.shared.admitted.load(Ordering::Acquire) as usize
    }

    /// Stops accepting, wakes the accept loop, and waits up to the
    /// configured drain timeout for in-flight connections to finish.
    /// Returns `true` when fully drained.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        let Some(accept) = self.accept.take() else {
            return true;
        };
        // The accept loop polls a non-blocking listener, so triggering the
        // signal is enough — it exits within one poll tick, with nothing to
        // wake and therefore nothing that can fail to wake it.
        self.shared.shutdown.trigger();
        let _ = accept.join();
        self.shared.shutdown.drain(self.shared.config.drain_timeout)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Non-blocking accept polled on a short tick: shutdown needs no
    // wake-up connection (which could itself fail and hang the join), and
    // transient accept errors (fd exhaustion under a connection flood)
    // back off on the same tick instead of busy-spinning.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shared.shutdown.is_triggered() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // The guard rides into the connection thread; a refused guard
        // means shutdown won the race — drop the socket.
        let Some(guard) = shared.shutdown.begin() else {
            return;
        };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || handle_connection(shared, stream, guard));
    }
}

fn handle_connection(shared: Arc<Shared>, mut stream: TcpStream, guard: ConnectionGuard) {
    let _guard = guard;
    if configure_stream(
        &stream,
        shared.config.read_poll,
        shared.config.request_deadline,
    )
    .is_err()
    {
        return;
    }
    let mut carry = Vec::new();
    let shutdown = shared.shutdown.clone();
    loop {
        let outcome = read_request(
            &mut stream,
            &mut carry,
            &shared.config.limits,
            shared.config.request_deadline,
            &|| shutdown.is_triggered(),
        );
        match outcome {
            ReadOutcome::Request(request, arrived) => {
                shared
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let request_id = shared.request_ids.fetch_add(1, Ordering::Relaxed);
                let action = match &shared.fault {
                    None => FaultAction::None,
                    Some(plan) => plan.action(fault::fault_key(
                        &request.method,
                        &request.path,
                        &request.body,
                        request.header("x-fault-key"),
                    )),
                };
                if action != FaultAction::None {
                    shared
                        .metrics
                        .faults_injected
                        .fetch_add(1, Ordering::Relaxed);
                }
                if action == FaultAction::ReadError {
                    // Injected read failure: cut the connection before
                    // handling, as if the request never finished arriving.
                    return;
                }
                let handled = {
                    let _in_flight = InFlight::enter(&shared.metrics.requests_in_flight);
                    catch_unwind(AssertUnwindSafe(|| {
                        handle_request(&shared, &request, request_id, arrived, action)
                    }))
                };
                let (mut response, close) = match handled {
                    Ok(response) => {
                        let close = request.wants_close() || shutdown.is_triggered();
                        (response, close)
                    }
                    Err(_) => {
                        // A handler panic (own, injected, or a poisoned
                        // single-flight follower's) answers 500 and closes
                        // this connection; every other connection is
                        // unaffected.
                        shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                        (
                            Response::error(500, "internal error: handler panicked"),
                            true,
                        )
                    }
                };
                response
                    .headers
                    .push(("X-Request-Id".to_string(), request_id.to_string()));
                match action {
                    // Injected write failure: the work happened, the
                    // response is dropped on the floor.
                    FaultAction::WriteError => return,
                    FaultAction::TornResponse => {
                        let _ = write_torn_response(&mut stream, &response);
                        return;
                    }
                    _ => {}
                }
                if write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => {
                let _ = write_response(
                    &mut stream,
                    &Response::error(413, "request too large"),
                    true,
                );
                return;
            }
            ReadOutcome::Malformed(msg) => {
                let _ = write_response(&mut stream, &Response::error(400, &msg), true);
                return;
            }
            ReadOutcome::Io(_) => return,
        }
    }
}

/// The ingress pipeline for one parsed request: fault panic/delay seams,
/// the admission gate for `/v1/*`, then routing under the deadline budget.
fn handle_request(
    shared: &Shared,
    request: &Request,
    request_id: u64,
    arrived: Instant,
    action: FaultAction,
) -> Response {
    let budget = Budget {
        arrived,
        limit: shared.config.request_deadline,
    };
    if action == FaultAction::Panic {
        panic!("injected fault panic (request {request_id})");
    }
    // Control-plane routes bypass admission and rate limiting so the
    // service stays observable while it sheds.
    if !request.path.starts_with("/v1/") {
        if let FaultAction::Delay(d) = action {
            std::thread::sleep(d);
        }
        return route(shared, request, request_id, &budget);
    }
    let Some(_permit) = shared.try_admit() else {
        shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
        return Response::too_many_requests("server at capacity", shared.retry_after_hint());
    };
    // The injected delay runs *inside* the admitted section, so a chaos
    // plan can hold permits and drive the gate into shedding.
    if let FaultAction::Delay(d) = action {
        std::thread::sleep(d);
    }
    if let Err(elapsed) = budget.check() {
        return shared.deadline_response("admission", elapsed, &budget);
    }
    let started = Instant::now();
    let response = route(shared, request, request_id, &budget);
    shared.metrics.record_service_time(started.elapsed());
    response
}

fn route(shared: &Shared, request: &Request, request_id: u64, budget: &Budget) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics(shared),
        ("GET", ["debug", "panic", key]) if shared.config.panic_route => {
            // Fault injection: panic inside the shared single-flight so
            // tests can prove leader-panic poisoning surfaces as 500s, not
            // hangs. The key namespace cannot collide with query keys
            // (their middle element is a live Arc pointer, never 0).
            let key: QueryKey = (format!("__panic__/{key}"), 0, Arc::from(""));
            let ((status, body), _) = shared
                .queries
                .run(&key, || panic!("injected panic for {key:?}"));
            Response::json(status, body.as_str())
        }
        ("POST", ["v1", tenant, "query"]) => {
            query(shared, tenant, &request.body, request_id, budget)
        }
        ("GET", ["v1", tenant, "tables", table]) => {
            completed_table(shared, tenant, table, request, request_id, budget)
        }
        (_, ["v1", _, "query"]) | (_, ["v1", _, "tables", _]) | (_, ["healthz" | "metrics"]) => {
            Response::error(405, &format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

fn healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"tenants\":{}}}",
            shared.registry.tenants().to_json()
        ),
    )
}

/// Per-tenant rate limit check — after tenant resolution (unknown tenants
/// 404 first, so hostile tenant names cannot grow the bucket map), before
/// any work is done for the request.
fn rate_limit_check(
    shared: &Shared,
    tenant: &str,
    counters: &TenantCounters,
    request_id: u64,
) -> Result<(), Response> {
    let Some(limiter) = &shared.limiter else {
        return Ok(());
    };
    match limiter.try_acquire(tenant) {
        Ok(()) => Ok(()),
        Err(wait) => {
            shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            counters
                .last_error_request_id
                .store(request_id, Ordering::Relaxed);
            Err(Response::too_many_requests(
                &format!("tenant {tenant:?} over rate limit"),
                wait,
            ))
        }
    }
}

fn query(shared: &Shared, tenant: &str, body: &str, request_id: u64, budget: &Budget) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    if let Err(response) = rate_limit_check(shared, tenant, &counters, request_id) {
        return response;
    }
    counters.queries.fetch_add(1, Ordering::Relaxed);
    // Budget check before committing to the single-flight wait.
    if let Err(elapsed) = budget.check() {
        counters.note_error(request_id);
        return shared.deadline_response("singleflight", elapsed, budget);
    }
    let key: QueryKey = (
        tenant.to_string(),
        Arc::as_ptr(&snapshot) as usize,
        Arc::from(body),
    );
    let ((status, response_body), _leader) = shared.queries.run(&key, || {
        let (status, body) = execute_query(shared, &snapshot, body, budget);
        (status, Arc::new(body))
    });
    if status >= 400 {
        counters.note_error(request_id);
    }
    Response::json(status, response_body.as_str())
}

/// Parses and executes one query body against a snapshot, checking the
/// deadline budget before each expensive stage. Safe to share its result
/// across single-flight followers: a success is a pure function of
/// `(snapshot, body)`, and a budget 503 means the shared work did not
/// materialize for anyone piled onto this flight.
fn execute_query(
    shared: &Shared,
    snapshot: &restore_core::Snapshot,
    body: &str,
    budget: &Budget,
) -> (u16, String) {
    let request = match QueryRequest::from_json(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    if let Err(elapsed) = budget.check() {
        let response = shared.deadline_response("synthesis", elapsed, budget);
        return (response.status, response.body);
    }
    let result = match snapshot.execute(&request.query, request.seed) {
        Ok(r) => r,
        Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
    };
    let interval = match &request.confidence {
        None => None,
        Some(spec) => {
            if let Err(elapsed) = budget.check() {
                let response = shared.deadline_response("confidence", elapsed, budget);
                return (response.status, response.body);
            }
            match snapshot.confidence(&request.query.tables, &spec.query, spec.level, request.seed)
            {
                Ok(ci) => Some(ci),
                Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
            }
        }
    };
    (200, wire::query_response_json(&result, interval.as_ref()))
}

fn completed_table(
    shared: &Shared,
    tenant: &str,
    table: &str,
    request: &Request,
    request_id: u64,
    budget: &Budget,
) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    if let Err(response) = rate_limit_check(shared, tenant, &counters, request_id) {
        return response;
    }
    counters.queries.fetch_add(1, Ordering::Relaxed);
    let seed = match request.query_param("seed") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                counters.note_error(request_id);
                return Response::error(400, &format!("bad seed {raw:?}"));
            }
        },
    };
    if let Err(elapsed) = budget.check() {
        counters.note_error(request_id);
        return shared.deadline_response("synthesis", elapsed, budget);
    }
    match snapshot.completed_table(table, seed) {
        Ok(completed) => Response::json(200, wire::table_json(&completed)),
        Err(e) => {
            counters.note_error(request_id);
            Response::error(core_error_status(&e), &e.to_string())
        }
    }
}

/// Client-visible status for an execution error: unknown tables and other
/// relational errors are 404-ish lookups; everything else is a valid
/// request the snapshot cannot serve (no model, no path, …) → 422.
fn core_error_status(e: &CoreError) -> u16 {
    match e {
        CoreError::Db(_) => 404,
        _ => 422,
    }
}

fn metrics(shared: &Shared) -> Response {
    let uptime = shared.metrics.started.elapsed().as_secs_f64().max(1e-9);
    let tenants: Vec<String> = {
        let map = shared
            .metrics
            .per_tenant
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, c)| {
                let queries = c.queries.load(Ordering::Relaxed);
                format!(
                    "\"{}\":{{\"queries\":{},\"errors\":{},\"rate_limited\":{},\
                     \"last_error_request_id\":{},\"queries_per_s\":{}}}",
                    restore_util::json::escape(name),
                    queries,
                    c.errors.load(Ordering::Relaxed),
                    c.rate_limited.load(Ordering::Relaxed),
                    c.last_error_request_id.load(Ordering::Relaxed),
                    (queries as f64 / uptime).to_json()
                )
            })
            .collect()
    };
    // Aggregate completion-cache counters over the *current* registry view;
    // retired snapshots drop out of the aggregate as they drain.
    let view = shared.registry.view();
    let (mut hits, mut misses, mut waits, mut evictions) = (0u64, 0u64, 0u64, 0u64);
    let (mut bytes, mut entries) = (0usize, 0usize);
    for snapshot in view.values() {
        let stats = snapshot.full_cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        waits += stats.waits;
        evictions += stats.evictions;
        bytes += stats.bytes;
        entries += stats.entries;
    }
    let body = format!(
        "{{\"uptime_s\":{},\
           \"connections\":{{\"total\":{},\"active\":{}}},\
           \"requests\":{{\"total\":{},\"in_flight\":{},\"admitted\":{},\"shed\":{},\
                          \"deadline_exceeded\":{},\"panics_caught\":{},\"faults_injected\":{},\
                          \"service_ewma_ms\":{}}},\
           \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"waits\":{waits},\
                       \"evictions\":{evictions},\"bytes\":{bytes},\"entries\":{entries}}},\
           \"tenants\":{{{}}}}}",
        uptime.to_json(),
        shared.shutdown.total_started(),
        shared.shutdown.active(),
        shared.metrics.requests_total.load(Ordering::Relaxed),
        shared.metrics.requests_in_flight.load(Ordering::Relaxed),
        shared.admitted.load(Ordering::Acquire),
        shared.metrics.requests_shed.load(Ordering::Relaxed),
        shared.metrics.deadline_exceeded.load(Ordering::Relaxed),
        shared.metrics.panics_caught.load(Ordering::Relaxed),
        shared.metrics.faults_injected.load(Ordering::Relaxed),
        (shared.metrics.service_ewma_nanos.load(Ordering::Relaxed) as f64 / 1e6).to_json(),
        tenants.join(",")
    );
    Response::json(200, body)
}
