//! The serving front-end: a thread-per-connection TCP/HTTP 1.1 server over
//! a shared [`SnapshotRegistry`].
//!
//! Request lifecycle:
//!
//! ```text
//!  accept loop ──► connection thread (one per socket, ConnectionGuard held)
//!      │               loop: read_request (poll ticks check shutdown)
//!      │                 │
//!      │                 ▼ route — resolves ONE registry view per request
//!      │               POST /v1/{t}/query   GET /v1/{t}/tables/{n}
//!      │               GET /healthz         GET /metrics
//!      │                 │
//!      │                 ▼ catch_unwind: a panicking handler answers 500
//!      │               write_response (keep-alive unless asked to close)
//!      ▼
//!  Server::shutdown(): Shutdown::trigger → wake accept → drain guards
//! ```
//!
//! **Hot swap / drain semantics.** A request resolves its tenant against
//! one [`SnapshotRegistry::view`] and keeps the resulting `Arc<Snapshot>`
//! for its whole lifetime; `publish(tenant, v2)` makes v2 visible to the
//! *next* request while v1 drains under the in-flight `Arc` refs, and
//! `retire(tenant)` 404s new requests without disturbing running ones.
//!
//! **Cold-path dedupe.** Identical concurrent `POST …/query` bodies for
//! the same tenant *and the same snapshot version* share one execution via
//! `restore-util`'s [`SingleFlight`] — the snapshot's own single-flight
//! `JoinCache` already collapses concurrent synthesis of a chain; this
//! outer layer also collapses the (cheaper) filter/aggregate tail. A
//! leader panic poisons the flight: followers answer 500 instead of
//! hanging, and the next request computes afresh.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use restore_core::wire::{self, QueryRequest};
use restore_core::{CoreError, SnapshotRegistry};
use restore_util::json::ToJson;
use restore_util::{ConnectionGuard, Shutdown, SingleFlight};

use crate::http::{
    configure_stream, error_body, read_request, write_response, Limits, ReadOutcome, Request,
    Response,
};

/// Server knobs. Defaults are sized for tests and modest deployments.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub limits: Limits,
    /// Poll interval at which idle keep-alive connections re-check the
    /// shutdown signal.
    pub read_poll: Duration,
    /// Once request bytes start arriving, the complete request must land
    /// within this window — stalled or slow-dripping clients are cut.
    pub request_deadline: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections.
    pub drain_timeout: Duration,
    /// Enables `GET /debug/panic/{key}`, a fault-injection route whose
    /// handler panics inside the shared single-flight — **test only**; the
    /// serving tests use it to prove a panicking handler cannot wedge
    /// other connections.
    pub panic_route: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            limits: Limits::default(),
            read_poll: Duration::from_millis(100),
            request_deadline: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            panic_route: false,
        }
    }
}

#[derive(Default)]
struct TenantCounters {
    queries: AtomicU64,
    errors: AtomicU64,
}

/// Serving counters surfaced by `GET /metrics`.
struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    requests_in_flight: AtomicU64,
    panics_caught: AtomicU64,
    per_tenant: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
}

impl Metrics {
    fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            per_tenant: Mutex::new(BTreeMap::new()),
        }
    }

    fn tenant(&self, name: &str) -> Arc<TenantCounters> {
        let mut map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }
}

/// Decrements the in-flight gauge even when the handler panics.
struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Single-flight key: tenant, snapshot generation (pointer identity), and
/// the raw request body (`Arc<str>` so the leader's key clone into the
/// in-flight map is a refcount bump, not a second body copy). Including
/// the generation means a hot swap never lets a request share a result
/// computed on the previous snapshot.
type QueryKey = (String, usize, Arc<str>);
/// Status + body, cheaply cloneable to every follower.
type QueryOutcome = (u16, Arc<String>);

struct Shared {
    registry: Arc<SnapshotRegistry>,
    config: ServeConfig,
    shutdown: Shutdown,
    metrics: Metrics,
    queries: SingleFlight<QueryKey, QueryOutcome>,
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// accepting and drains in-flight connections.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `registry` on `addr` (use port 0 for an
    /// ephemeral port; read it back via [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<SnapshotRegistry>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            config,
            shutdown: Shutdown::new(),
            metrics: Metrics::new(),
            queries: SingleFlight::new(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.shared.registry
    }

    /// Connections currently being served.
    pub fn connections_active(&self) -> usize {
        self.shared.shutdown.active()
    }

    /// Stops accepting, wakes the accept loop, and waits up to the
    /// configured drain timeout for in-flight connections to finish.
    /// Returns `true` when fully drained.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        let Some(accept) = self.accept.take() else {
            return true;
        };
        // The accept loop polls a non-blocking listener, so triggering the
        // signal is enough — it exits within one poll tick, with nothing to
        // wake and therefore nothing that can fail to wake it.
        self.shared.shutdown.trigger();
        let _ = accept.join();
        self.shared.shutdown.drain(self.shared.config.drain_timeout)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Non-blocking accept polled on a short tick: shutdown needs no
    // wake-up connection (which could itself fail and hang the join), and
    // transient accept errors (fd exhaustion under a connection flood)
    // back off on the same tick instead of busy-spinning.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shared.shutdown.is_triggered() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // The guard rides into the connection thread; a refused guard
        // means shutdown won the race — drop the socket.
        let Some(guard) = shared.shutdown.begin() else {
            return;
        };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || handle_connection(shared, stream, guard));
    }
}

fn handle_connection(shared: Arc<Shared>, mut stream: TcpStream, guard: ConnectionGuard) {
    let _guard = guard;
    if configure_stream(
        &stream,
        shared.config.read_poll,
        shared.config.request_deadline,
    )
    .is_err()
    {
        return;
    }
    let mut carry = Vec::new();
    let shutdown = shared.shutdown.clone();
    loop {
        let outcome = read_request(
            &mut stream,
            &mut carry,
            &shared.config.limits,
            shared.config.request_deadline,
            &|| shutdown.is_triggered(),
        );
        match outcome {
            ReadOutcome::Request(request) => {
                shared
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let handled = {
                    let _in_flight = InFlight::enter(&shared.metrics.requests_in_flight);
                    catch_unwind(AssertUnwindSafe(|| route(&shared, &request)))
                };
                let (response, close) = match handled {
                    Ok(response) => {
                        let close = request.wants_close() || shutdown.is_triggered();
                        (response, close)
                    }
                    Err(_) => {
                        // A handler panic (own or a poisoned single-flight
                        // follower's) answers 500 and closes this
                        // connection; every other connection is unaffected.
                        shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                        (
                            Response::error(500, "internal error: handler panicked"),
                            true,
                        )
                    }
                };
                if write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => {
                let _ = write_response(
                    &mut stream,
                    &Response::error(413, "request too large"),
                    true,
                );
                return;
            }
            ReadOutcome::Malformed(msg) => {
                let _ = write_response(&mut stream, &Response::error(400, &msg), true);
                return;
            }
            ReadOutcome::Io(_) => return,
        }
    }
}

fn route(shared: &Shared, request: &Request) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics(shared),
        ("GET", ["debug", "panic", key]) if shared.config.panic_route => {
            // Fault injection: panic inside the shared single-flight so
            // tests can prove leader-panic poisoning surfaces as 500s, not
            // hangs. The key namespace cannot collide with query keys
            // (their middle element is a live Arc pointer, never 0).
            let key: QueryKey = (format!("__panic__/{key}"), 0, Arc::from(""));
            let ((status, body), _) = shared
                .queries
                .run(&key, || panic!("injected panic for {key:?}"));
            Response::json(status, body.as_str())
        }
        ("POST", ["v1", tenant, "query"]) => query(shared, tenant, &request.body),
        ("GET", ["v1", tenant, "tables", table]) => completed_table(shared, tenant, table, request),
        (_, ["v1", _, "query"]) | (_, ["v1", _, "tables", _]) | (_, ["healthz" | "metrics"]) => {
            Response::error(405, &format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

fn healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"tenants\":{}}}",
            shared.registry.tenants().to_json()
        ),
    )
}

fn query(shared: &Shared, tenant: &str, body: &str) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    counters.queries.fetch_add(1, Ordering::Relaxed);
    let key: QueryKey = (
        tenant.to_string(),
        Arc::as_ptr(&snapshot) as usize,
        Arc::from(body),
    );
    let ((status, response_body), _leader) = shared.queries.run(&key, || {
        let (status, body) = execute_query(&snapshot, body);
        (status, Arc::new(body))
    });
    if status >= 400 {
        counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    Response::json(status, response_body.as_str())
}

/// Parses and executes one query body against a snapshot. Pure — safe to
/// share its result across single-flight followers.
fn execute_query(snapshot: &restore_core::Snapshot, body: &str) -> (u16, String) {
    let request = match QueryRequest::from_json(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let result = match snapshot.execute(&request.query, request.seed) {
        Ok(r) => r,
        Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
    };
    let interval = match &request.confidence {
        None => None,
        Some(spec) => {
            match snapshot.confidence(&request.query.tables, &spec.query, spec.level, request.seed)
            {
                Ok(ci) => Some(ci),
                Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
            }
        }
    };
    (200, wire::query_response_json(&result, interval.as_ref()))
}

fn completed_table(shared: &Shared, tenant: &str, table: &str, request: &Request) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    counters.queries.fetch_add(1, Ordering::Relaxed);
    let seed = match request.query_param("seed") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                return Response::error(400, &format!("bad seed {raw:?}"));
            }
        },
    };
    match snapshot.completed_table(table, seed) {
        Ok(completed) => Response::json(200, wire::table_json(&completed)),
        Err(e) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            Response::error(core_error_status(&e), &e.to_string())
        }
    }
}

/// Client-visible status for an execution error: unknown tables and other
/// relational errors are 404-ish lookups; everything else is a valid
/// request the snapshot cannot serve (no model, no path, …) → 422.
fn core_error_status(e: &CoreError) -> u16 {
    match e {
        CoreError::Db(_) => 404,
        _ => 422,
    }
}

fn metrics(shared: &Shared) -> Response {
    let uptime = shared.metrics.started.elapsed().as_secs_f64().max(1e-9);
    let tenants: Vec<String> = {
        let map = shared
            .metrics
            .per_tenant
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, c)| {
                let queries = c.queries.load(Ordering::Relaxed);
                format!(
                    "\"{}\":{{\"queries\":{},\"errors\":{},\"queries_per_s\":{}}}",
                    restore_util::json::escape(name),
                    queries,
                    c.errors.load(Ordering::Relaxed),
                    (queries as f64 / uptime).to_json()
                )
            })
            .collect()
    };
    // Aggregate completion-cache counters over the *current* registry view;
    // retired snapshots drop out of the aggregate as they drain.
    let view = shared.registry.view();
    let (mut hits, mut misses, mut waits, mut evictions) = (0u64, 0u64, 0u64, 0u64);
    let (mut bytes, mut entries) = (0usize, 0usize);
    for snapshot in view.values() {
        let stats = snapshot.full_cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        waits += stats.waits;
        evictions += stats.evictions;
        bytes += stats.bytes;
        entries += stats.entries;
    }
    let body = format!(
        "{{\"uptime_s\":{},\
           \"connections\":{{\"total\":{},\"active\":{}}},\
           \"requests\":{{\"total\":{},\"in_flight\":{},\"panics_caught\":{}}},\
           \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"waits\":{waits},\
                       \"evictions\":{evictions},\"bytes\":{bytes},\"entries\":{entries}}},\
           \"tenants\":{{{}}}}}",
        uptime.to_json(),
        shared.shutdown.total_started(),
        shared.shutdown.active(),
        shared.metrics.requests_total.load(Ordering::Relaxed),
        shared.metrics.requests_in_flight.load(Ordering::Relaxed),
        shared.metrics.panics_caught.load(Ordering::Relaxed),
        tenants.join(",")
    );
    Response::json(200, body)
}
