//! The serving front-end: an epoll event-loop TCP/HTTP 1.1 server over a
//! shared [`SnapshotRegistry`], fronted by an ingress resilience plane.
//!
//! Request lifecycle:
//!
//! ```text
//!  reactor thread (crate::reactor — owns listener + every socket)
//!      │  accept (epoll-registered, no sleep tick) · nonblocking reads
//!      │  incremental parse: ReadingHead → ReadingBody → complete request
//!      │    │
//!      │    ▼ request id (parse order) · fault plan consult
//!      │  admission gate (max_in_flight) ──► 429 + Retry-After written
//!      │    │                                from the reactor, no worker
//!      │    ▼ Job{request, id, permit} ──► worker pool (queue + condvar)
//!      │                                     │ route — ONE registry view
//!      │                                     │ per-tenant token bucket 429
//!      │                                     │ deadline budget checks 503
//!      │                                     │ catch_unwind: panic → 500
//!      │    ┌────── Completion{response} ◄───┘ (+eventfd wake)
//!      │    ▼
//!      │  write on writability (+X-Request-Id; keep-alive; pipelined
//!      │  carry re-parsed immediately after each response)
//!      ▼
//!  Server::shutdown(): trigger + wake → close listener + idle conns,
//!  in-flight responses ride through drain, then the reactor exits
//! ```
//!
//! **Admission control.** At most [`ServeConfig::max_in_flight`] `/v1/*`
//! requests hold an admission permit (queued + executing) at once; excess
//! load is *shed* with an immediate 429 carrying a `Retry-After` computed
//! from an EWMA of recent service times, written straight from the reactor
//! without touching the worker pool. Control-plane routes (`/healthz`,
//! `/metrics`) bypass the gate so the service stays observable under
//! overload. A per-tenant token bucket ([`restore_util::RateLimiter`])
//! additionally bounds each tenant's sustained rate, so one hot tenant
//! degrades alone instead of starving the box.
//!
//! **Deadline budget.** [`ServeConfig::request_deadline`] is a per-request
//! wall-clock budget starting at the request's first byte, re-checked
//! between parse, the single-flight wait, synthesis, and the confidence
//! tail. An exhausted budget answers 503 with the stage reached and the
//! elapsed/budget milliseconds, releasing the connection instead of
//! holding it. The reactor enforces the same budget on the wire: a request
//! that stops arriving mid-parse is answered 400, and a client that stops
//! reading its response is cut.
//!
//! **Fault injection.** An optional seeded [`FaultPlan`] injects delays,
//! read/write errors, torn responses, and handler panics on a schedule
//! that is a pure function of `(seed, fault key)` — see [`crate::fault`].
//! Read/write faults act at the reactor's socket seam; delays and panics
//! ride the job into the worker pool (a panicking handler must never take
//! the reactor thread down).
//!
//! **Hot swap / drain semantics.** A request resolves its tenant against
//! one [`SnapshotRegistry::view`] and keeps the resulting `Arc<Snapshot>`
//! for its whole lifetime; `publish(tenant, v2)` makes v2 visible to the
//! *next* request while v1 drains under the in-flight `Arc` refs, and
//! `retire(tenant)` 404s new requests without disturbing running ones.
//!
//! **Cold-path dedupe.** Identical concurrent `POST …/query` bodies for
//! the same tenant *and the same snapshot version* share one execution via
//! `restore-util`'s [`SingleFlight`] — the snapshot's own single-flight
//! `JoinCache` already collapses concurrent synthesis of a chain; this
//! outer layer also collapses the (cheaper) filter/aggregate tail. A
//! leader panic poisons the flight: followers answer 500 instead of
//! hanging, and the next request computes afresh.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use restore_core::wire::{self, QueryRequest};
use restore_core::{CoreError, ReStore, SnapshotRegistry};
use restore_util::json::ToJson;
use restore_util::{derive_seed, RateLimitConfig, RateLimiter, Shutdown, SingleFlight};

use crate::fault::{self, FaultAction, FaultConfig, FaultPlan};
use crate::http::{error_body, Limits, Request, Response};
use crate::reactor::{Epoll, Reactor, WakeHandle, TOKEN_LISTENER, TOKEN_WAKE};
use crate::store::SnapshotStore;

/// Server knobs. Defaults are sized for tests and modest deployments.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub limits: Limits,
    /// Upper bound on how long the reactor parks in `epoll_wait` while any
    /// connection carries a deadline (partial request or stalled write) —
    /// the staleness bound on deadline enforcement.
    pub read_poll: Duration,
    /// Per-request deadline budget, started at the request's first byte:
    /// a request that has not finished arriving within it is cut, and one
    /// that has not *started each processing stage* within it answers 503
    /// with partial-progress detail instead of holding the connection.
    pub request_deadline: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections.
    pub drain_timeout: Duration,
    /// Admission gate: at most this many `/v1/*` requests hold a permit
    /// (queued for or executing on the worker pool) concurrently; excess
    /// answers 429 + `Retry-After` immediately.
    pub max_in_flight: usize,
    /// Request-execution worker threads behind the reactor.
    pub workers: usize,
    /// Per-tenant token-bucket rate limit; `None` disables it.
    pub rate_limit: Option<RateLimitConfig>,
    /// Seeded deterministic fault injection; `None` (the default) disables
    /// it. **Test/chaos only** — never enable in production configs.
    pub fault: Option<FaultConfig>,
    /// Enables `GET /debug/panic/{key}`, a fault-injection route whose
    /// handler panics inside the shared single-flight — **test only**; the
    /// serving tests use it to prove a panicking handler cannot wedge
    /// other connections. Subsumed by [`ServeConfig::fault`] for anything
    /// beyond that one scenario.
    pub panic_route: bool,
    /// Root of the versioned snapshot directory
    /// (`<dir>/<tenant>/v<NNNNN>.snap`). When set, [`Server::bind`] scans
    /// it and serves each tenant's newest *valid* version (corrupt or
    /// truncated files are skipped with a logged reason), and
    /// `POST /v1/{tenant}/rebuild` becomes available: retrain off-thread,
    /// save the next version atomically, publish through the registry.
    /// `None` (the default) disables persistence entirely.
    pub snapshot_dir: Option<PathBuf>,
    /// Fleet mode: when set, this server is a **shard router** — `/v1/*`
    /// requests forward to worker processes by stable tenant hash instead
    /// of executing locally, `/healthz` and `/metrics` describe the fleet,
    /// and `GET /fleet/{i}/metrics` drills into one worker. The reactor,
    /// admission gate, deadlines, request ids, and drain all behave
    /// exactly as in worker mode. See [`crate::router`].
    pub fleet: Option<Arc<crate::router::Fleet>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            limits: Limits::default(),
            read_poll: Duration::from_millis(100),
            request_deadline: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            max_in_flight: 256,
            // At least a few workers even on a 1-core box: handlers can
            // block on single-flight waits and injected delays, and panic
            // containment is only provable with real concurrency.
            workers: restore_util::default_workers().max(4),
            rate_limit: None,
            fault: None,
            panic_route: false,
            snapshot_dir: None,
            fleet: None,
        }
    }
}

#[derive(Default)]
struct TenantCounters {
    queries: AtomicU64,
    errors: AtomicU64,
    /// Requests shed by this tenant's token bucket.
    rate_limited: AtomicU64,
    /// `X-Request-Id` of the most recent error response (0 = none yet;
    /// request ids start at 1).
    last_error_request_id: AtomicU64,
}

impl TenantCounters {
    fn note_error(&self, request_id: u64) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.last_error_request_id
            .store(request_id, Ordering::Relaxed);
    }
}

/// Serving counters surfaced by `GET /metrics`.
pub(crate) struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    requests_in_flight: AtomicU64,
    panics_caught: AtomicU64,
    /// 429s issued by the admission gate and the per-tenant rate limiter.
    requests_shed: AtomicU64,
    /// 503s issued by deadline-budget checks.
    deadline_exceeded: AtomicU64,
    /// Faults the configured [`FaultPlan`] injected.
    faults_injected: AtomicU64,
    /// EWMA of admitted-request service time (nanoseconds, α = 1/8) — the
    /// basis of the admission gate's `Retry-After` hint.
    service_ewma_nanos: AtomicU64,
    // --- persistence counters (boot scan + rebuild pipeline) ---
    /// Snapshot files loaded and published (boot scan).
    snapshots_loaded: AtomicU64,
    /// Snapshot files written by the rebuild pipeline.
    snapshots_saved: AtomicU64,
    /// Cumulative snapshot load time, microseconds (reported as ms).
    snapshot_load_us: AtomicU64,
    snapshot_loaded_bytes: AtomicU64,
    snapshot_saved_bytes: AtomicU64,
    rebuilds_started: AtomicU64,
    rebuilds_completed: AtomicU64,
    rebuilds_failed: AtomicU64,
    per_tenant: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
    // --- event-loop counters, maintained by the reactor ---
    /// Gauge: sockets currently owned by the reactor.
    pub(crate) open_connections: AtomicU64,
    /// Gauge: connections idle between requests.
    pub(crate) keepalive_idle: AtomicU64,
    pub(crate) accepts: AtomicU64,
    pub(crate) epoll_wakeups: AtomicU64,
    /// Nonblocking reads/writes that hit `EWOULDBLOCK` — the readiness
    /// loop working as intended (vs. blocking threads doing nothing).
    pub(crate) read_would_block: AtomicU64,
    pub(crate) write_would_block: AtomicU64,
}

impl Metrics {
    fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            service_ewma_nanos: AtomicU64::new(0),
            snapshots_loaded: AtomicU64::new(0),
            snapshots_saved: AtomicU64::new(0),
            snapshot_load_us: AtomicU64::new(0),
            snapshot_loaded_bytes: AtomicU64::new(0),
            snapshot_saved_bytes: AtomicU64::new(0),
            rebuilds_started: AtomicU64::new(0),
            rebuilds_completed: AtomicU64::new(0),
            rebuilds_failed: AtomicU64::new(0),
            per_tenant: Mutex::new(BTreeMap::new()),
            open_connections: AtomicU64::new(0),
            keepalive_idle: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            epoll_wakeups: AtomicU64::new(0),
            read_would_block: AtomicU64::new(0),
            write_would_block: AtomicU64::new(0),
        }
    }

    fn tenant(&self, name: &str) -> Arc<TenantCounters> {
        let mut map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    fn record_service_time(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        // Racy load/store is fine for a heuristic hint; no CAS needed.
        let old = self.service_ewma_nanos.load(Ordering::Relaxed);
        self.service_ewma_nanos
            .store(old - old / 8 + sample / 8, Ordering::Relaxed);
    }
}

/// Decrements the in-flight gauge even when the handler panics.
struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Owned RAII admission permit; it rides inside a [`Job`] from the
/// reactor's dispatch decision to the end of worker execution, and
/// dropping it (including by panic, or with a job discarded at shutdown)
/// frees the slot.
struct AdmitPermit(Arc<AtomicU64>);

impl Drop for AdmitPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A request's wall-clock budget, started when its first bytes arrived.
/// Stages check it *before* starting work; a blown budget sheds the rest
/// of the request rather than interrupting a stage mid-flight.
#[derive(Clone, Copy)]
pub(crate) struct Budget {
    arrived: Instant,
    limit: Duration,
}

impl Budget {
    /// `Ok` while inside budget; `Err(elapsed)` once exhausted.
    fn check(&self) -> Result<(), Duration> {
        let elapsed = self.arrived.elapsed();
        if elapsed > self.limit {
            Err(elapsed)
        } else {
            Ok(())
        }
    }

    /// Wall-clock budget left before the deadline (zero once blown). The
    /// fleet forward loop spends this riding out a shard failover.
    pub(crate) fn remaining(&self) -> Duration {
        self.limit.saturating_sub(self.arrived.elapsed())
    }
}

/// Single-flight key: tenant, snapshot generation (pointer identity), and
/// the raw request body (`Arc<str>` so the leader's key clone into the
/// in-flight map is a refcount bump, not a second body copy). Including
/// the generation means a hot swap never lets a request share a result
/// computed on the previous snapshot.
type QueryKey = (String, usize, Arc<str>);
/// Status + body, cheaply cloneable to every follower.
type QueryOutcome = (u16, Arc<String>);

/// A parsed request on its way from the reactor to a worker.
pub(crate) struct Job {
    pub(crate) token: u64,
    request: Request,
    request_id: u64,
    arrived: Instant,
    action: FaultAction,
    permit: Option<AdmitPermit>,
}

/// A finished response on its way from a worker back to the reactor,
/// which owns the socket write (applying any write-side fault action).
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Response,
    pub(crate) close: bool,
    pub(crate) action: FaultAction,
}

/// The reactor's dispatch decision for one parsed request.
pub(crate) enum Decision {
    /// Cut the connection without an answer (injected read fault).
    Close,
    /// Answer straight from the reactor (admission shed), then close if
    /// the flag says so.
    Respond(Response, bool),
    /// The request was queued to the worker pool; a [`Completion`] will
    /// arrive via the wake handle.
    Dispatched,
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    stopped: bool,
}

/// The reactor → worker handoff: a plain mutex + condvar queue. Depth is
/// bounded by the admission gate (`/v1/*` needs a permit to enqueue) plus
/// the trickle of control-plane requests.
struct JobQueue {
    state: Mutex<JobQueueState>,
    available: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::new(),
                stopped: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.stopped {
            return; // job drops here; its permit releases
        }
        state.jobs.push_back(job);
        self.available.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.stopped {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Discards queued jobs (releasing their permits) and unparks every
    /// worker for exit.
    fn stop(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.stopped = true;
        state.jobs.clear();
        self.available.notify_all();
    }
}

pub(crate) struct Shared {
    registry: Arc<SnapshotRegistry>,
    pub(crate) config: ServeConfig,
    pub(crate) shutdown: Shutdown,
    pub(crate) metrics: Metrics,
    queries: SingleFlight<QueryKey, QueryOutcome>,
    /// Parse-order request id counter; ids start at 1.
    request_ids: AtomicU64,
    /// `/v1/*` permits outstanding (bounded by `max_in_flight`). Shared
    /// with the owned permits so a permit outliving `Shared` is impossible
    /// to misaccount.
    admitted: Arc<AtomicU64>,
    limiter: Option<RateLimiter>,
    fault: Option<FaultPlan>,
    /// The versioned snapshot directory, when persistence is configured.
    store: Option<SnapshotStore>,
    /// Tenants with a rebuild in flight — one rebuild per tenant at a
    /// time; a second `POST …/rebuild` answers 409 instead of stacking
    /// training runs.
    rebuilds: Mutex<BTreeSet<String>>,
    jobs: JobQueue,
    completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor out of `epoll_wait`: completions and shutdown.
    pub(crate) wake: WakeHandle,
    /// Set after the drain window: the reactor must exit now, dropping
    /// whatever connections remain.
    pub(crate) abandon: AtomicBool,
}

impl Shared {
    fn try_admit(&self) -> Option<AdmitPermit> {
        let prev = self.admitted.fetch_add(1, Ordering::AcqRel);
        if prev >= self.config.max_in_flight as u64 {
            self.admitted.fetch_sub(1, Ordering::AcqRel);
            None
        } else {
            Some(AdmitPermit(Arc::clone(&self.admitted)))
        }
    }

    /// How long a shed client should wait before retrying: one EWMA
    /// service time (the 429 builder rounds this up to at least 1 s).
    fn retry_after_hint(&self) -> Duration {
        Duration::from_nanos(self.metrics.service_ewma_nanos.load(Ordering::Relaxed))
    }

    /// The 503 every exhausted-budget stage answers: which stage the
    /// request reached and how far over budget it was — partial progress a
    /// retrying client can log instead of a connection silently held.
    fn deadline_response(&self, stage: &str, elapsed: Duration, budget: &Budget) -> Response {
        self.metrics
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        Response::json(
            503,
            format!(
                "{{\"error\":\"deadline budget exhausted\",\"stage\":\"{stage}\",\
                 \"elapsed_ms\":{},\"budget_ms\":{}}}",
                elapsed.as_millis(),
                budget.limit.as_millis()
            ),
        )
    }

    /// The reactor's per-request entry point: accounts the request,
    /// consults the fault plan, applies the admission gate, and either
    /// answers on the spot or queues a [`Job`] for the worker pool.
    pub(crate) fn on_request(&self, token: u64, request: Request, arrived: Instant) -> Decision {
        self.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let request_id = self.request_ids.fetch_add(1, Ordering::Relaxed);
        let action = match &self.fault {
            None => FaultAction::None,
            Some(plan) => plan.action(fault::fault_key(
                &request.method,
                &request.path,
                &request.body,
                request.header("x-fault-key"),
            )),
        };
        if action != FaultAction::None {
            self.metrics.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        if action == FaultAction::ReadError {
            // Injected read failure: cut the connection before handling,
            // as if the request never finished arriving.
            return Decision::Close;
        }
        // Control-plane routes bypass admission (and, in the worker, rate
        // limiting) so the service stays observable while it sheds.
        let permit = if request.path.starts_with("/v1/") {
            match self.try_admit() {
                Some(permit) => Some(permit),
                None => {
                    self.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
                    let response =
                        Response::too_many_requests("server at capacity", self.retry_after_hint())
                            .with_header("X-Request-Id", request_id.to_string());
                    let close = request.wants_close() || self.shutdown.is_triggered();
                    return Decision::Respond(response, close);
                }
            }
        } else {
            None
        };
        self.jobs.push(Job {
            token,
            request,
            request_id,
            arrived,
            action,
            permit,
        });
        Decision::Dispatched
    }

    pub(crate) fn take_completions(&self) -> Vec<Completion> {
        let mut completions = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *completions)
    }

    fn complete(&self, completion: Completion) {
        {
            let mut completions = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            completions.push(completion);
        }
        self.wake.wake();
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// accepting and drains in-flight connections.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `registry` on `addr` (use port 0 for an
    /// ephemeral port; read it back via [`Server::local_addr`]). Fails
    /// loudly if the listener cannot be made nonblocking or the epoll
    /// set / wake eventfd cannot be created — a server whose event loop
    /// can't run should never come up half-alive.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<SnapshotRegistry>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoll = Epoll::new()?;
        let wake = WakeHandle::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        epoll.add(wake.as_raw_fd(), TOKEN_WAKE, true, false)?;
        let limiter = config.rate_limit.map(RateLimiter::new);
        let fault = config.fault.map(FaultPlan::new);
        let workers = config.workers.max(1);
        let metrics = Metrics::new();
        let store = config.snapshot_dir.as_deref().map(SnapshotStore::new);
        if let Some(store) = &store {
            boot_scan(store, &registry, &metrics);
        }
        let shared = Arc::new(Shared {
            registry,
            config,
            shutdown: Shutdown::new(),
            metrics,
            queries: SingleFlight::new(),
            request_ids: AtomicU64::new(1),
            admitted: Arc::new(AtomicU64::new(0)),
            limiter,
            fault,
            store,
            rebuilds: Mutex::new(BTreeSet::new()),
            jobs: JobQueue::new(),
            completions: Mutex::new(Vec::new()),
            wake,
            abandon: AtomicBool::new(false),
        });
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            // Workers are detached: shutdown stops the queue rather than
            // joining, so a handler stuck in external code cannot wedge
            // shutdown (the old per-connection threads had the same
            // property).
            std::thread::spawn(move || worker_loop(shared));
        }
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || Reactor::new(listener, epoll, shared).run())
        };
        Ok(Self {
            addr,
            shared,
            reactor: Some(reactor),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.shared.registry
    }

    /// Connections currently being served.
    pub fn connections_active(&self) -> usize {
        self.shared.shutdown.active()
    }

    /// `/v1/*` requests currently holding an admission permit.
    pub fn requests_admitted(&self) -> usize {
        self.shared.admitted.load(Ordering::Acquire) as usize
    }

    /// Stops accepting, wakes the reactor, and waits up to the configured
    /// drain timeout for in-flight connections to finish. Returns `true`
    /// when fully drained.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        let Some(reactor) = self.reactor.take() else {
            return true;
        };
        self.shared.shutdown.trigger();
        self.shared.wake.wake();
        let drained = self.shared.shutdown.drain(self.shared.config.drain_timeout);
        // Drain window over (or instantly drained): tell the reactor to
        // exit unconditionally, dropping whatever connections remain.
        self.shared.abandon.store(true, Ordering::Release);
        self.shared.wake.wake();
        let _ = reactor.join();
        self.shared.jobs.stop();
        drained
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.jobs.pop() {
        let handled = {
            let _in_flight = InFlight::enter(&shared.metrics.requests_in_flight);
            catch_unwind(AssertUnwindSafe(|| execute_job(&shared, &job)))
        };
        let (mut response, close) = match handled {
            Ok(response) => {
                let close = job.request.wants_close() || shared.shutdown.is_triggered();
                (response, close)
            }
            Err(_) => {
                // A handler panic (own, injected, or a poisoned
                // single-flight follower's) answers 500 and closes this
                // connection; every other connection is unaffected.
                shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                (
                    Response::error(500, "internal error: handler panicked"),
                    true,
                )
            }
        };
        response
            .headers
            .push(("X-Request-Id".to_string(), job.request_id.to_string()));
        let completion = Completion {
            token: job.token,
            response,
            close,
            action: match job.action {
                FaultAction::WriteError => FaultAction::WriteError,
                FaultAction::TornResponse => FaultAction::TornResponse,
                _ => FaultAction::None,
            },
        };
        // Release the admission permit before the response ships, matching
        // the thread-per-connection server: the slot frees as soon as the
        // work is done, not when the client finishes reading.
        drop(job);
        shared.complete(completion);
    }
}

/// The ingress pipeline for one dispatched request: fault panic/delay
/// seams, then routing under the deadline budget. The admission permit (if
/// any) is already held by the surrounding [`Job`].
fn execute_job(shared: &Arc<Shared>, job: &Job) -> Response {
    let budget = Budget {
        arrived: job.arrived,
        limit: shared.config.request_deadline,
    };
    if job.action == FaultAction::Panic {
        panic!("injected fault panic (request {})", job.request_id);
    }
    if !job.request.path.starts_with("/v1/") {
        if let FaultAction::Delay(d) = job.action {
            std::thread::sleep(d);
        }
        return route(shared, &job.request, job.request_id, &budget);
    }
    debug_assert!(job.permit.is_some(), "/v1/* dispatched without a permit");
    // The injected delay runs *inside* the admitted section, so a chaos
    // plan can hold permits and drive the gate into shedding.
    if let FaultAction::Delay(d) = job.action {
        std::thread::sleep(d);
    }
    if let Err(elapsed) = budget.check() {
        return shared.deadline_response("admission", elapsed, &budget);
    }
    let started = Instant::now();
    let response = route(shared, &job.request, job.request_id, &budget);
    shared.metrics.record_service_time(started.elapsed());
    response
}

fn route(shared: &Arc<Shared>, request: &Request, request_id: u64, budget: &Budget) -> Response {
    // Fleet mode: this server is a shard router. Same reactor, parser,
    // admission, and deadlines — routing just forwards instead of executes.
    if let Some(fleet) = &shared.config.fleet {
        return crate::router::route_fleet(shared, fleet, request, budget);
    }
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics(shared, None),
        ("GET", ["debug", "panic", key]) if shared.config.panic_route => {
            // Fault injection: panic inside the shared single-flight so
            // tests can prove leader-panic poisoning surfaces as 500s, not
            // hangs. The key namespace cannot collide with query keys
            // (their middle element is a live Arc pointer, never 0).
            let key: QueryKey = (format!("__panic__/{key}"), 0, Arc::from(""));
            let ((status, body), _) = shared
                .queries
                .run(&key, || panic!("injected panic for {key:?}"));
            Response::json(status, body.as_str())
        }
        ("POST", ["v1", tenant, "query"]) => {
            query(shared, tenant, &request.body, request_id, budget)
        }
        ("GET", ["v1", tenant, "tables", table]) => {
            completed_table(shared, tenant, table, request, request_id, budget)
        }
        ("POST", ["v1", tenant, "rebuild"]) => rebuild(shared, tenant, request),
        (_, ["v1", _, "query"])
        | (_, ["v1", _, "tables", _])
        | (_, ["v1", _, "rebuild"])
        | (_, ["healthz" | "metrics"]) => {
            Response::error(405, &format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

fn healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"tenants\":{}}}",
            shared.registry.tenants().to_json()
        ),
    )
}

/// Per-tenant rate limit check — after tenant resolution (unknown tenants
/// 404 first, so hostile tenant names cannot grow the bucket map), before
/// any work is done for the request.
fn rate_limit_check(
    shared: &Shared,
    tenant: &str,
    counters: &TenantCounters,
    request_id: u64,
) -> Result<(), Response> {
    let Some(limiter) = &shared.limiter else {
        return Ok(());
    };
    match limiter.try_acquire(tenant) {
        Ok(()) => Ok(()),
        Err(wait) => {
            shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            counters
                .last_error_request_id
                .store(request_id, Ordering::Relaxed);
            Err(Response::too_many_requests(
                &format!("tenant {tenant:?} over rate limit"),
                wait,
            ))
        }
    }
}

fn query(shared: &Shared, tenant: &str, body: &str, request_id: u64, budget: &Budget) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    if let Err(response) = rate_limit_check(shared, tenant, &counters, request_id) {
        return response;
    }
    counters.queries.fetch_add(1, Ordering::Relaxed);
    // Budget check before committing to the single-flight wait.
    if let Err(elapsed) = budget.check() {
        counters.note_error(request_id);
        return shared.deadline_response("singleflight", elapsed, budget);
    }
    let key: QueryKey = (
        tenant.to_string(),
        Arc::as_ptr(&snapshot) as usize,
        Arc::from(body),
    );
    let ((status, response_body), _leader) = shared.queries.run(&key, || {
        let (status, body) = execute_query(shared, &snapshot, body, budget);
        (status, Arc::new(body))
    });
    if status >= 400 {
        counters.note_error(request_id);
    }
    Response::json(status, response_body.as_str())
}

/// Parses and executes one query body against a snapshot, checking the
/// deadline budget before each expensive stage. Safe to share its result
/// across single-flight followers: a success is a pure function of
/// `(snapshot, body)`, and a budget 503 means the shared work did not
/// materialize for anyone piled onto this flight.
fn execute_query(
    shared: &Shared,
    snapshot: &restore_core::Snapshot,
    body: &str,
    budget: &Budget,
) -> (u16, String) {
    let request = match QueryRequest::from_json(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    if let Err(elapsed) = budget.check() {
        let response = shared.deadline_response("synthesis", elapsed, budget);
        return (response.status, response.body);
    }
    let result = match snapshot.execute(&request.query, request.seed) {
        Ok(r) => r,
        Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
    };
    let interval = match &request.confidence {
        None => None,
        Some(spec) => {
            if let Err(elapsed) = budget.check() {
                let response = shared.deadline_response("confidence", elapsed, budget);
                return (response.status, response.body);
            }
            match snapshot.confidence(&request.query.tables, &spec.query, spec.level, request.seed)
            {
                Ok(ci) => Some(ci),
                Err(e) => return (core_error_status(&e), error_body(&e.to_string())),
            }
        }
    };
    (200, wire::query_response_json(&result, interval.as_ref()))
}

fn completed_table(
    shared: &Shared,
    tenant: &str,
    table: &str,
    request: &Request,
    request_id: u64,
    budget: &Budget,
) -> Response {
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let counters = shared.metrics.tenant(tenant);
    if let Err(response) = rate_limit_check(shared, tenant, &counters, request_id) {
        return response;
    }
    counters.queries.fetch_add(1, Ordering::Relaxed);
    let seed = match request.query_param("seed") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                counters.note_error(request_id);
                return Response::error(400, &format!("bad seed {raw:?}"));
            }
        },
    };
    if let Err(elapsed) = budget.check() {
        counters.note_error(request_id);
        return shared.deadline_response("synthesis", elapsed, budget);
    }
    match snapshot.completed_table(table, seed) {
        Ok(completed) => Response::json(200, wire::table_json(&completed)),
        Err(e) => {
            counters.note_error(request_id);
            Response::error(core_error_status(&e), &e.to_string())
        }
    }
}

/// Boot-time snapshot scan: serve each stored tenant's newest valid
/// version. Tenants already published (programmatically, before `bind`)
/// are left alone; corrupt/truncated/unreadable version files are skipped
/// with a logged reason and the scan falls back to the next-newest — a bad
/// file on disk must never keep the server from coming up.
fn boot_scan(store: &SnapshotStore, registry: &Arc<SnapshotRegistry>, metrics: &Metrics) {
    for tenant in store.tenants() {
        if registry.get(&tenant).is_some() {
            continue;
        }
        let (loaded, skipped) = store.load_latest(&tenant);
        for skip in &skipped {
            eprintln!(
                "restore-serve: boot scan skipping {}: {}",
                skip.path.display(),
                skip.reason
            );
        }
        if let Some(loaded) = loaded {
            metrics.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
            metrics
                .snapshot_load_us
                .fetch_add((loaded.load_ms * 1e3) as u64, Ordering::Relaxed);
            metrics
                .snapshot_loaded_bytes
                .fetch_add(loaded.bytes, Ordering::Relaxed);
            eprintln!(
                "restore-serve: serving tenant {:?} from v{:05} ({} bytes, {:.1} ms load)",
                loaded.tenant, loaded.version, loaded.bytes, loaded.load_ms
            );
            registry.publish(loaded.tenant, Arc::new(loaded.snapshot));
        }
    }
}

/// Removes the tenant from the in-flight rebuild set when the rebuild
/// thread exits — by any path, including a panic inside training.
struct RebuildGuard {
    shared: Arc<Shared>,
    tenant: String,
}

impl Drop for RebuildGuard {
    fn drop(&mut self) {
        let mut rebuilds = self
            .shared
            .rebuilds
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        rebuilds.remove(&self.tenant);
    }
}

/// `POST /v1/{tenant}/rebuild` — the background rebuild/republish
/// pipeline: answer 202 immediately, then, off the worker pool, retrain
/// version n+1 from the currently served snapshot while version n keeps
/// serving, save it atomically into the snapshot directory, and publish it
/// through the copy-on-write registry (in-flight requests finish on the
/// old snapshot under their own `Arc`).
///
/// Seeds default deterministically — `serve_seed` derives from the current
/// snapshot's serve seed and the new version number, `train_seed` from the
/// new serve seed — and can be pinned via `?train_seed=&serve_seed=`.
fn rebuild(shared: &Arc<Shared>, tenant: &str, request: &Request) -> Response {
    let Some(store) = shared.store.clone() else {
        return Response::error(
            503,
            "snapshot persistence is not configured (no snapshot dir)",
        );
    };
    let Some(snapshot) = shared.registry.view().get(tenant).cloned() else {
        return Response::error(404, &format!("unknown tenant {tenant:?}"));
    };
    let version = store.latest_version(tenant).unwrap_or(0).saturating_add(1);
    let serve_seed = match seed_param(request, "serve_seed") {
        Ok(Some(s)) => s,
        Ok(None) => derive_seed(snapshot.serve_seed().unwrap_or(0), version as u64),
        Err(response) => return response,
    };
    let train_seed = match seed_param(request, "train_seed") {
        Ok(Some(s)) => s,
        Ok(None) => derive_seed(serve_seed, 1),
        Err(response) => return response,
    };
    {
        let mut rebuilds = shared.rebuilds.lock().unwrap_or_else(|e| e.into_inner());
        if !rebuilds.insert(tenant.to_string()) {
            return Response::error(409, &format!("rebuild already in flight for {tenant:?}"));
        }
    }
    shared
        .metrics
        .rebuilds_started
        .fetch_add(1, Ordering::Relaxed);
    let guard = RebuildGuard {
        shared: Arc::clone(shared),
        tenant: tenant.to_string(),
    };
    std::thread::spawn(move || {
        run_rebuild(guard, store, snapshot, version, train_seed, serve_seed)
    });
    Response::json(
        202,
        format!(
            "{{\"status\":\"rebuilding\",\"tenant\":\"{}\",\"version\":{version},\
             \"train_seed\":\"{train_seed}\",\"serve_seed\":\"{serve_seed}\"}}",
            restore_util::json::escape(tenant)
        ),
    )
}

fn seed_param(request: &Request, name: &str) -> Result<Option<u64>, Response> {
    match request.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
    }
}

/// The rebuild thread body: retrain → seal → atomic save → publish.
fn run_rebuild(
    guard: RebuildGuard,
    store: SnapshotStore,
    base: Arc<restore_core::Snapshot>,
    version: u32,
    train_seed: u64,
    serve_seed: u64,
) {
    let shared = Arc::clone(&guard.shared);
    let tenant = guard.tenant.clone();
    let result = (|| -> Result<(), String> {
        let rs = ReStore::rebuild_from(&base, train_seed).map_err(|e| e.to_string())?;
        let sealed = rs.seal(serve_seed);
        let (path, bytes) = store
            .save_version(&tenant, version, &sealed)
            .map_err(|e| e.to_string())?;
        shared
            .metrics
            .snapshots_saved
            .fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .snapshot_saved_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        shared.registry.publish(&tenant, Arc::new(sealed));
        eprintln!(
            "restore-serve: rebuilt tenant {tenant:?} as v{version:05} ({bytes} bytes) at {}",
            path.display()
        );
        Ok(())
    })();
    match result {
        Ok(()) => {
            shared
                .metrics
                .rebuilds_completed
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            shared
                .metrics
                .rebuilds_failed
                .fetch_add(1, Ordering::Relaxed);
            eprintln!("restore-serve: rebuild of tenant {tenant:?} v{version:05} failed: {e}");
        }
    }
}

/// Client-visible status for an execution error: unknown tables and other
/// relational errors are 404-ish lookups; everything else is a valid
/// request the snapshot cannot serve (no model, no path, …) → 422.
fn core_error_status(e: &CoreError) -> u16 {
    match e {
        CoreError::Db(_) => 404,
        _ => 422,
    }
}

/// The `/metrics` document. `fleet` (router mode only) is a pre-rendered
/// JSON object slotted in as a `fleet` section ahead of `tenants`.
pub(crate) fn metrics(shared: &Shared, fleet: Option<String>) -> Response {
    let uptime = shared.metrics.started.elapsed().as_secs_f64().max(1e-9);
    let tenants: Vec<String> = {
        let map = shared
            .metrics
            .per_tenant
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, c)| {
                let queries = c.queries.load(Ordering::Relaxed);
                format!(
                    "\"{}\":{{\"queries\":{},\"errors\":{},\"rate_limited\":{},\
                     \"last_error_request_id\":{},\"queries_per_s\":{}}}",
                    restore_util::json::escape(name),
                    queries,
                    c.errors.load(Ordering::Relaxed),
                    c.rate_limited.load(Ordering::Relaxed),
                    c.last_error_request_id.load(Ordering::Relaxed),
                    (queries as f64 / uptime).to_json()
                )
            })
            .collect()
    };
    // Aggregate completion-cache counters over the *current* registry view;
    // retired snapshots drop out of the aggregate as they drain.
    let view = shared.registry.view();
    let (mut hits, mut misses, mut waits, mut evictions) = (0u64, 0u64, 0u64, 0u64);
    let (mut bytes, mut entries) = (0usize, 0usize);
    for snapshot in view.values() {
        let stats = snapshot.full_cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        waits += stats.waits;
        evictions += stats.evictions;
        bytes += stats.bytes;
        entries += stats.entries;
    }
    let body = format!(
        "{{\"uptime_s\":{},\
           \"connections\":{{\"total\":{},\"active\":{}}},\
           \"event_loop\":{{\"open_connections\":{},\"keepalive_idle\":{},\
                            \"accepts\":{},\"epoll_wakeups\":{},\
                            \"read_would_block\":{},\"write_would_block\":{}}},\
           \"requests\":{{\"total\":{},\"in_flight\":{},\"admitted\":{},\"shed\":{},\
                          \"deadline_exceeded\":{},\"panics_caught\":{},\"faults_injected\":{},\
                          \"service_ewma_ms\":{}}},\
           \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"waits\":{waits},\
                       \"evictions\":{evictions},\"bytes\":{bytes},\"entries\":{entries}}},\
           \"persistence\":{{\"snapshots_loaded\":{},\"snapshots_saved\":{},\
                             \"load_ms\":{},\"loaded_bytes\":{},\"saved_bytes\":{},\
                             \"rebuilds\":{{\"started\":{},\"completed\":{},\"failed\":{}}}}},\
           \"tenants\":{{{}}}}}",
        uptime.to_json(),
        shared.shutdown.total_started(),
        shared.shutdown.active(),
        shared.metrics.open_connections.load(Ordering::Relaxed),
        shared.metrics.keepalive_idle.load(Ordering::Relaxed),
        shared.metrics.accepts.load(Ordering::Relaxed),
        shared.metrics.epoll_wakeups.load(Ordering::Relaxed),
        shared.metrics.read_would_block.load(Ordering::Relaxed),
        shared.metrics.write_would_block.load(Ordering::Relaxed),
        shared.metrics.requests_total.load(Ordering::Relaxed),
        shared.metrics.requests_in_flight.load(Ordering::Relaxed),
        shared.admitted.load(Ordering::Acquire),
        shared.metrics.requests_shed.load(Ordering::Relaxed),
        shared.metrics.deadline_exceeded.load(Ordering::Relaxed),
        shared.metrics.panics_caught.load(Ordering::Relaxed),
        shared.metrics.faults_injected.load(Ordering::Relaxed),
        (shared.metrics.service_ewma_nanos.load(Ordering::Relaxed) as f64 / 1e6).to_json(),
        shared.metrics.snapshots_loaded.load(Ordering::Relaxed),
        shared.metrics.snapshots_saved.load(Ordering::Relaxed),
        (shared.metrics.snapshot_load_us.load(Ordering::Relaxed) as f64 / 1e3).to_json(),
        shared.metrics.snapshot_loaded_bytes.load(Ordering::Relaxed),
        shared.metrics.snapshot_saved_bytes.load(Ordering::Relaxed),
        shared.metrics.rebuilds_started.load(Ordering::Relaxed),
        shared.metrics.rebuilds_completed.load(Ordering::Relaxed),
        shared.metrics.rebuilds_failed.load(Ordering::Relaxed),
        tenants.join(",")
    );
    let body = match fleet {
        Some(fleet) => {
            let tenants_key = "\"tenants\":";
            let at = body
                .rfind(tenants_key)
                .expect("metrics has a tenants section");
            format!("{}\"fleet\":{fleet},{}", &body[..at], &body[at..])
        }
        None => body,
    };
    Response::json(200, body)
}
