//! Multi-process scale-out: the shard-router plane behind
//! [`Server`](crate::Server)'s fleet mode.
//!
//! One snapshot registry per process keeps the serving path simple, but a
//! single process is one core-budget and one blast radius. The router
//! turns N independent worker processes — each a stock `restore-serve`
//! server booted from the same versioned snapshot directory — into one
//! endpoint speaking the exact same HTTP/1.1 wire format:
//!
//! ```text
//!                        ┌─ worker 0 (Server, --snapshot-dir D) ─ D/
//!  clients ── router ────┤                                        │
//!   (epoll   (Server in  ├─ worker 1 (Server, --snapshot-dir D) ──┤
//!    keep-    fleet      │      ▲ health probes /healthz          │
//!    alive)   mode)      │      │ dead → re-exec from D ──────────┘
//!                        └─ … shard N-1
//! ```
//!
//! * **Tenant → shard** is a stable FNV-1a hash of the tenant name modulo
//!   the shard count ([`Fleet::shard_for`]) — no coordination, no lookup
//!   table, and the mapping survives worker restarts, so each tenant's
//!   completion caches stay warm on exactly one worker.
//! * **Forwarding** rides pooled keep-alive connections
//!   ([`crate::client::ConnectionPool`]) with health-aware checkout; the
//!   retry schedule reuses the client plane's
//!   [`RetryPolicy`](crate::RetryPolicy) backoff/jitter machinery. Only
//!   transport errors retry — worker status codes (including 429/503) pass
//!   through byte-identically so end-to-end semantics match a direct
//!   worker connection.
//! * **Failover**: a monitor thread probes each worker's `/healthz`; a
//!   worker that stops answering (or whose process exits) is marked down,
//!   and — when the fleet owns its spawn command — re-execed against the
//!   same `--snapshot-dir`. The PR 9 boot scan is the worker's entire
//!   startup story: the respawned process loads the newest valid snapshot
//!   per tenant and is serving again in roughly one snapshot-load. While
//!   the window is open, forwards to that shard back off and retry inside
//!   the request's own deadline budget, so a request that arrives
//!   mid-failover *waits out* the respawn instead of failing.
//! * **Fleet metrics**: the router's `/metrics` grows a `fleet` section —
//!   per-shard up/down, forwarded/failed/retried counts, respawns, pool
//!   reuse, and each worker's self-reported q/s (scraped from its own
//!   `/metrics`). `GET /fleet/{i}/metrics` passes one worker's raw metrics
//!   document through for drill-down.
//!
//! The router is not a second server implementation: fleet mode is a
//! [`ServeConfig`](crate::ServeConfig) field, so the epoll reactor, the
//! incremental parser, admission control, deadline budgets, request ids,
//! and graceful drain are all the same code paths a worker runs.

use std::fmt;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use restore_util::json::ToJson;
use restore_util::{fnv1a64, Shutdown};

use crate::client::{ClientConfig, ConnectionPool, HttpResponse, RetryPolicy};
use crate::http::{encode_target, Request, Response};
use crate::server::{Budget, Shared};

/// How to (re)spawn one worker process. The program must print a line
/// ending in its listening address (`… listening on 127.0.0.1:PORT`) on
/// stdout once bound — the `shard_router` binary's `--worker` mode does —
/// and should exit when its stdin reaches EOF (orphan cleanup).
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    pub program: PathBuf,
    pub args: Vec<String>,
}

/// One shard slot: a fixed address (externally managed worker), a spawn
/// command (fleet-managed worker, restarted on failure), or both (initial
/// address known, fleet still owns restarts).
#[derive(Clone, Debug, Default)]
pub struct ShardConfig {
    /// Address of an already-running worker; `None` means the fleet learns
    /// it from the spawned process's stdout.
    pub addr: Option<SocketAddr>,
    /// Spawn command; `None` disables failover re-exec for this shard
    /// (the fleet only marks it down and waits for [`Fleet::set_shard_addr`]).
    pub worker: Option<WorkerSpec>,
}

/// Fleet knobs. Defaults are sized for loopback worker fleets.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    pub shards: Vec<ShardConfig>,
    /// Client config for forwarded requests; its [`RetryPolicy`] supplies
    /// the forward backoff schedule and wall-clock budget.
    pub client: ClientConfig,
    /// Idle keep-alive connections pooled per shard.
    pub max_idle_per_shard: usize,
    /// Health-probe cadence of the monitor thread.
    pub health_interval: Duration,
    /// Consecutive failed probes before a shard is marked down.
    pub down_after: u32,
    /// How long one worker spawn may take to print its address and answer
    /// `/healthz` before the attempt counts as failed.
    pub spawn_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: Vec::new(),
            client: ClientConfig {
                read_timeout: Duration::from_secs(30),
                retry: RetryPolicy {
                    // The forward retry loop is deadline-bounded (riding
                    // out a failover window), so the budget — not an
                    // attempt count — is the real knob.
                    budget: Duration::from_secs(10),
                    ..RetryPolicy::default()
                },
            },
            max_idle_per_shard: 16,
            health_interval: Duration::from_millis(200),
            down_after: 2,
            spawn_timeout: Duration::from_secs(30),
        }
    }
}

/// Short-timeout config for health probes and metrics scrapes — a wedged
/// worker must cost the monitor 2 s, not the client default 30.
fn probe_config() -> ClientConfig {
    ClientConfig {
        read_timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    }
}

fn probe_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    crate::client::HttpClient::connect_with(addr, probe_config())?.get(path)
}

/// One worker slot's runtime state.
struct Shard {
    index: usize,
    pool: ConnectionPool,
    spec: Option<WorkerSpec>,
    child: Mutex<Option<Child>>,
    forwarded: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    respawns: AtomicU64,
}

impl Shard {
    fn probe_ok(&self) -> bool {
        match self.pool.peer() {
            Some(addr) => matches!(probe_get(addr, "/healthz"), Ok((200, _))),
            None => false,
        }
    }

    fn kill_child(&self) {
        let mut child = self.child.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut c) = child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    /// Has the fleet-spawned worker process exited?
    fn child_exited(&self) -> bool {
        let mut child = self.child.lock().unwrap_or_else(|e| e.into_inner());
        match child.as_mut() {
            Some(c) => matches!(c.try_wait(), Ok(Some(_))),
            None => false,
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.kill_child();
    }
}

/// A fleet of worker processes behind one router. Create with
/// [`Fleet::start`], hand the `Arc` to [`ServeConfig::fleet`]
/// (crate::ServeConfig::fleet), and call [`Fleet::shutdown`] after the
/// router server drains.
pub struct Fleet {
    shards: Vec<Arc<Shard>>,
    config: FleetConfig,
    shutdown: Shutdown,
    monitor: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards.len())
            .field(
                "addrs",
                &self
                    .shards
                    .iter()
                    .map(|s| s.pool.peer())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Fleet {
    /// Spawns every shard with a [`WorkerSpec`] (waiting for each to come
    /// up healthy), registers fixed addresses, and starts the health
    /// monitor. Fails loudly if any shard has neither an address nor a
    /// spawn command, or if an initial spawn doesn't become healthy within
    /// [`FleetConfig::spawn_timeout`].
    pub fn start(config: FleetConfig) -> io::Result<Arc<Self>> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one shard",
            ));
        }
        let mut shards = Vec::with_capacity(config.shards.len());
        for (index, shard_config) in config.shards.iter().enumerate() {
            if shard_config.addr.is_none() && shard_config.worker.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard {index} has neither an address nor a worker spec"),
                ));
            }
            let shard = Arc::new(Shard {
                index,
                pool: ConnectionPool::new(config.client, config.max_idle_per_shard),
                spec: shard_config.worker.clone(),
                child: Mutex::new(None),
                forwarded: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                retried: AtomicU64::new(0),
                respawns: AtomicU64::new(0),
            });
            if let Some(addr) = shard_config.addr {
                shard.pool.set_peer(addr);
            }
            if shard_config.addr.is_none() {
                let spec = shard.spec.as_ref().expect("checked above");
                let (child, addr) = spawn_worker(spec, config.spawn_timeout)?;
                *shard.child.lock().unwrap_or_else(|e| e.into_inner()) = Some(child);
                shard.pool.set_peer(addr);
                wait_healthy(addr, config.spawn_timeout).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("shard {index} worker at {addr} never became healthy: {e}"),
                    )
                })?;
                eprintln!("restore-serve: fleet shard {index} worker up at {addr}");
            }
            shards.push(shard);
        }
        let fleet = Arc::new(Self {
            shards,
            config,
            shutdown: Shutdown::new(),
            monitor: Mutex::new(None),
            started: Instant::now(),
        });
        let weak: Weak<Fleet> = Arc::downgrade(&fleet);
        let handle = std::thread::spawn(move || monitor_loop(weak));
        *fleet.monitor.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        Ok(fleet)
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stable tenant → shard mapping: FNV-1a over the tenant name,
    /// modulo the shard count. Pure, so every router replica (and every
    /// test) computes the same placement.
    pub fn shard_for(&self, tenant: &str) -> usize {
        (fnv1a64(tenant.as_bytes()) % self.shards.len() as u64) as usize
    }

    pub fn shard_addr(&self, shard: usize) -> Option<SocketAddr> {
        self.shards.get(shard).and_then(|s| s.pool.peer())
    }

    pub fn shard_is_up(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .is_some_and(|s| s.pool.health().is_up())
    }

    pub fn up_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.pool.health().is_up())
            .count()
    }

    /// Re-registers a shard whose externally-managed worker moved (new
    /// process, new ephemeral port). Clears the shard's pooled connections
    /// and restores it to service immediately; the monitor keeps probing
    /// the new address from here on.
    pub fn set_shard_addr(&self, shard: usize, addr: SocketAddr) {
        if let Some(s) = self.shards.get(shard) {
            s.pool.set_peer(addr);
            s.pool.health().record_success();
        }
    }

    /// Chaos/test hook: kill shard `shard`'s fleet-spawned worker process.
    /// The monitor notices (process exit or failed probe), marks the shard
    /// down, and — because the spec is still present — re-execs it.
    /// Returns `false` when there is no live child to kill.
    pub fn kill_shard(&self, shard: usize) -> bool {
        let Some(s) = self.shards.get(shard) else {
            return false;
        };
        let had_child = {
            let child = s.child.lock().unwrap_or_else(|e| e.into_inner());
            child.is_some()
        };
        s.kill_child();
        had_child
    }

    /// Stops the monitor and kills every fleet-spawned worker. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
        let handle = {
            let mut monitor = self.monitor.lock().unwrap_or_else(|e| e.into_inner());
            monitor.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        for shard in &self.shards {
            shard.kill_child();
        }
    }

    /// Forwards one `/v1/*` request to its tenant's shard and adapts the
    /// worker's response for passthrough. Transport errors retry on the
    /// policy's backoff schedule until `remaining` (the request's leftover
    /// deadline budget, capped by the policy budget) runs out — a request
    /// arriving mid-failover waits out the respawn. Worker status codes,
    /// including 429/503, pass through untouched: the worker owns request
    /// semantics, the router owns transport.
    pub(crate) fn forward(&self, tenant: &str, request: &Request, remaining: Duration) -> Response {
        let shard = &self.shards[self.shard_for(tenant)];
        let policy = self.config.client.retry;
        let deadline = Instant::now() + remaining.min(policy.budget);
        let target = encode_target(request);
        let body = (!request.body.is_empty()).then_some(request.body.as_str());
        let mut attempt = 0u32;
        let last_error = loop {
            let outcome = self.try_forward_once(shard, &request.method, &target, body);
            let error = match outcome {
                Ok(upstream) => {
                    shard.forwarded.fetch_add(1, Ordering::Relaxed);
                    return passthrough(upstream);
                }
                Err(e) => e,
            };
            let wait = policy
                .backoff
                .delay(policy.seed, attempt)
                .min(policy.retry_after_cap);
            if Instant::now() + wait > deadline {
                break error;
            }
            shard.retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(wait);
            attempt += 1;
        };
        shard.failed.fetch_add(1, Ordering::Relaxed);
        Response::error(
            503,
            &format!(
                "shard {} unavailable for tenant {tenant:?}: {last_error}",
                shard.index
            ),
        )
        .with_header("Retry-After", "1")
    }

    /// One forward attempt over a pooled connection. Success checks the
    /// connection back in (unless the worker asked to close) and records
    /// shard health; failure records it against the down threshold so the
    /// forward path and the monitor share one health authority.
    fn try_forward_once(
        &self,
        shard: &Shard,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let result = shard.pool.checkout().and_then(|mut client| {
            let response = client.request_full(method, target, body, &[])?;
            let keep = response
                .header("connection")
                .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
            if keep {
                shard.pool.checkin(client);
            }
            Ok(response)
        });
        match &result {
            Ok(_) => {
                shard.pool.health().record_success();
            }
            // A health-gate refusal (peer marked down / unregistered) is
            // not *new* evidence of failure; dial and request errors are.
            Err(e) if e.kind() != io::ErrorKind::NotConnected => {
                shard.pool.health().record_failure(self.config.down_after);
            }
            Err(_) => {}
        }
        result
    }

    /// The `fleet` section of the router's `/metrics`: shard counts and
    /// states, forward counters, pool reuse, and each live worker's
    /// self-reported totals scraped from its own `/metrics` (best effort —
    /// a down worker reports `null`).
    pub fn metrics_json(&self) -> String {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let (mut forwarded, mut failed, mut retried, mut respawns) = (0u64, 0u64, 0u64, 0u64);
        let per_shard: Vec<String> = self
            .shards
            .iter()
            .map(|shard| {
                let f = shard.forwarded.load(Ordering::Relaxed);
                forwarded += f;
                let shard_failed = shard.failed.load(Ordering::Relaxed);
                failed += shard_failed;
                let shard_retried = shard.retried.load(Ordering::Relaxed);
                retried += shard_retried;
                let shard_respawns = shard.respawns.load(Ordering::Relaxed);
                respawns += shard_respawns;
                let up = shard.pool.health().is_up();
                let addr = shard
                    .pool
                    .peer()
                    .map_or("null".to_string(), |a| format!("\"{a}\""));
                let pool = shard.pool.stats();
                let worker = match shard.pool.peer().filter(|_| up) {
                    Some(addr) => scrape_worker_metrics(addr),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"shard\":{},\"addr\":{addr},\"up\":{up},\"forwarded\":{f},\
                     \"failed\":{shard_failed},\"retried\":{shard_retried},\
                     \"respawns\":{shard_respawns},\"times_down\":{},\
                     \"queries_per_s\":{},\
                     \"pool\":{{\"idle\":{},\"reused\":{},\"dialed\":{},\"discarded\":{}}},\
                     \"worker\":{worker}}}",
                    shard.index,
                    shard.pool.health().times_down(),
                    (f as f64 / uptime).to_json(),
                    pool.idle,
                    pool.reused,
                    pool.dialed,
                    pool.discarded,
                )
            })
            .collect();
        format!(
            "{{\"shards\":{},\"up\":{},\"forwarded\":{forwarded},\"failed\":{failed},\
             \"retried\":{retried},\"respawns\":{respawns},\"per_shard\":[{}]}}",
            self.shards.len(),
            self.up_count(),
            per_shard.join(",")
        )
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker's self-reported request totals, scraped from its `/metrics`
/// with the short probe timeout. Returns a small JSON object (or `"null"`
/// when the scrape fails or doesn't parse).
fn scrape_worker_metrics(addr: SocketAddr) -> String {
    let Ok((200, body)) = probe_get(addr, "/metrics") else {
        return "null".to_string();
    };
    let Some(root) = restore_util::json::parse(&body) else {
        return "null".to_string();
    };
    let total = root
        .get("requests")
        .and_then(|r| r.get("total"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let uptime = root
        .get("uptime_s")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0)
        .max(1e-9);
    format!(
        "{{\"requests_total\":{},\"uptime_s\":{},\"queries_per_s\":{}}}",
        total.to_json(),
        uptime.to_json(),
        (total / uptime).to_json()
    )
}

/// Converts a worker's response into a router response for passthrough:
/// status and body verbatim; content/framing headers and the worker's
/// request id dropped (the response encoder re-frames, and the router
/// stamps its own `X-Request-Id`); everything else — notably
/// `Retry-After` — carried through.
fn passthrough(upstream: HttpResponse) -> Response {
    let mut response = Response::json(upstream.status, upstream.body);
    for (name, value) in upstream.headers {
        if matches!(
            name.as_str(),
            "content-length" | "content-type" | "connection" | "x-request-id"
        ) {
            continue;
        }
        response.headers.push((name, value));
    }
    response
}

/// Spawns one worker process and reads its listening address: the first
/// stdout line's last whitespace-separated token must parse as a socket
/// address. The read happens on a helper thread so a silent child costs
/// `timeout`, not forever. The child keeps a piped stdin for its lifetime;
/// fleet teardown (or fleet process death) closes it, which a well-behaved
/// worker treats as EOF-exit.
fn spawn_worker(spec: &WorkerSpec, timeout: Duration) -> io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(&spec.program)
        .args(&spec.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stdout).read_line(&mut line);
        let _ = tx.send(line);
    });
    let line = match rx.recv_timeout(timeout) {
        Ok(line) => line,
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "worker {} did not report an address within {timeout:?}",
                    spec.program.display()
                ),
            ));
        }
    };
    let addr = line
        .split_whitespace()
        .last()
        .and_then(|token| token.parse::<SocketAddr>().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker address line unparseable: {line:?}"),
            ))
        }
    }
}

/// Polls `/healthz` until it answers 200 or `timeout` elapses.
fn wait_healthy(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    let mut last = String::from("never probed");
    while Instant::now() < deadline {
        match probe_get(addr, "/healthz") {
            Ok((200, _)) => return Ok(()),
            Ok((status, _)) => last = format!("status {status}"),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(io::Error::new(io::ErrorKind::TimedOut, last))
}

/// The monitor thread: probe every shard each interval, flip health on the
/// evidence, and re-exec dead fleet-owned workers against their snapshot
/// directory. Holds only a `Weak` on the fleet so an abandoned fleet (all
/// `Arc`s dropped) tears down instead of leaking a thread.
fn monitor_loop(fleet: Weak<Fleet>) {
    loop {
        let Some(fleet) = fleet.upgrade() else {
            return;
        };
        if fleet.shutdown.is_triggered() {
            return;
        }
        for shard in &fleet.shards {
            check_shard(&fleet, shard);
        }
        let interval = fleet.config.health_interval;
        drop(fleet); // don't hold the fleet alive through the sleep
        std::thread::sleep(interval);
    }
}

/// One monitor round for one shard: child exit is a definitive down
/// signal; otherwise a `/healthz` probe decides. A shard that is down and
/// owns a spawn spec is re-execed (synchronously — respawn latency is
/// bounded by `spawn_timeout` and the fleet is small).
fn check_shard(fleet: &Fleet, shard: &Shard) {
    let exited = shard.child_exited();
    if !exited && shard.probe_ok() {
        if shard.pool.health().record_success() {
            eprintln!(
                "restore-serve: fleet shard {} back up at {:?}",
                shard.index,
                shard.pool.peer()
            );
        }
        return;
    }
    let went_down = if exited {
        shard.pool.health().force_down()
    } else {
        shard.pool.health().record_failure(fleet.config.down_after)
    };
    if went_down {
        eprintln!(
            "restore-serve: fleet shard {} down ({})",
            shard.index,
            if exited {
                "worker process exited"
            } else {
                "health probes failing"
            }
        );
    }
    if shard.pool.health().is_up() || fleet.shutdown.is_triggered() {
        return;
    }
    let Some(spec) = &shard.spec else {
        return; // externally managed: wait for set_shard_addr
    };
    shard.kill_child();
    match spawn_worker(spec, fleet.config.spawn_timeout).and_then(|(child, addr)| {
        wait_healthy(addr, fleet.config.spawn_timeout).map(|()| (child, addr))
    }) {
        Ok((child, addr)) => {
            *shard.child.lock().unwrap_or_else(|e| e.into_inner()) = Some(child);
            shard.pool.set_peer(addr);
            shard.respawns.fetch_add(1, Ordering::Relaxed);
            shard.pool.health().record_success();
            eprintln!(
                "restore-serve: fleet shard {} re-execed, up at {addr}",
                shard.index
            );
        }
        Err(e) => {
            eprintln!(
                "restore-serve: fleet shard {} respawn failed ({e}); retrying next round",
                shard.index
            );
        }
    }
}

/// Routing for a server in fleet mode: control-plane routes answer from
/// the router itself (health and metrics describe the *fleet*), a
/// drill-down route passes one worker's metrics through raw, and every
/// `/v1/{tenant}/…` request forwards to the tenant's shard.
pub(crate) fn route_fleet(
    shared: &Shared,
    fleet: &Fleet,
    request: &Request,
    budget: &Budget,
) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let up = fleet.up_count();
            let shards = fleet.shard_count();
            Response::json(
                200,
                format!(
                    "{{\"status\":\"{}\",\"fleet\":{{\"shards\":{shards},\"up\":{up}}}}}",
                    if up == shards { "ok" } else { "degraded" }
                ),
            )
        }
        ("GET", ["metrics"]) => crate::server::metrics(shared, Some(fleet.metrics_json())),
        ("GET", ["fleet", index, "metrics"]) => {
            let Ok(index) = index.parse::<usize>() else {
                return Response::error(400, &format!("bad shard index {index:?}"));
            };
            let Some(addr) = fleet
                .shard_addr(index)
                .filter(|_| index < fleet.shard_count())
            else {
                return Response::error(404, &format!("no shard {index}"));
            };
            match probe_get(addr, "/metrics") {
                Ok((status, body)) => Response::json(status, body),
                Err(e) => Response::error(503, &format!("shard {index} metrics: {e}")),
            }
        }
        (_, ["v1", tenant, ..]) => fleet.forward(tenant, request, budget.remaining()),
        (_, ["healthz" | "metrics"]) => {
            Response::error(405, &format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_mapping_is_stable_and_total() {
        let config = FleetConfig {
            shards: vec![
                ShardConfig {
                    addr: Some("127.0.0.1:1".parse().unwrap()),
                    worker: None,
                },
                ShardConfig {
                    addr: Some("127.0.0.1:2".parse().unwrap()),
                    worker: None,
                },
            ],
            ..FleetConfig::default()
        };
        let fleet = Fleet::start(config).expect("fleet with fixed addrs");
        for tenant in ["alpha", "beta", "tenant with spaces", ""] {
            let shard = fleet.shard_for(tenant);
            assert!(shard < 2);
            assert_eq!(shard, fleet.shard_for(tenant), "mapping must be stable");
            assert_eq!(
                shard,
                (restore_util::fnv1a64(tenant.as_bytes()) % 2) as usize,
                "mapping is the documented hash"
            );
        }
        fleet.shutdown();
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(Fleet::start(FleetConfig::default()).is_err());
        let no_way_to_reach = FleetConfig {
            shards: vec![ShardConfig::default()],
            ..FleetConfig::default()
        };
        assert!(Fleet::start(no_way_to_reach).is_err());
    }

    #[test]
    fn passthrough_strips_framing_but_keeps_retry_after() {
        let upstream = HttpResponse {
            status: 429,
            headers: vec![
                ("content-type".into(), "application/json".into()),
                ("content-length".into(), "2".into()),
                ("connection".into(), "keep-alive".into()),
                ("x-request-id".into(), "9".into()),
                ("retry-after".into(), "3".into()),
            ],
            body: "{}".into(),
        };
        let response = passthrough(upstream);
        assert_eq!(response.status, 429);
        assert_eq!(response.body, "{}");
        assert_eq!(
            response.headers,
            vec![("retry-after".to_string(), "3".to_string())]
        );
    }
}
