//! Kernel micro-bench: wide (lane-tiled) vs naive reference throughput
//! for each hot GEMM kernel, across band widths shaped like the AR
//! sweep's degree bands — ragged, lane-aligned, and full-trunk. Drops
//! `results/BENCH_kernels.json` so the per-kernel speedups ride the same
//! trend report as the end-to-end benches.

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use restore_nn::Matrix;
use restore_util::impl_to_json;

use crate::{hardware_threads, lane_width, target_feature, write_bench_json};

/// One wide-vs-naive kernel measurement.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Bench group, always `"kernels"`.
    pub bench: String,
    /// Kernel entry point, e.g. `"matmul_col_band_into"`.
    pub kernel: String,
    /// Problem shape label, e.g. `"256x64x64"` or `"band_w17"` — part of
    /// the record identity, so widths compare like-for-like across runs.
    pub shape: String,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Lane-tiled kernel throughput, giga multiply-accumulates per second.
    pub wide_gmacs_per_s: f64,
    /// Naive reference-loop throughput on the same problem.
    pub naive_gmacs_per_s: f64,
    /// `wide / naive`.
    pub speedup: f64,
}
impl_to_json!(KernelRecord {
    bench,
    kernel,
    shape,
    hardware_threads,
    lane_width,
    target_feature,
    wide_gmacs_per_s,
    naive_gmacs_per_s,
    speedup
});

/// Times `f` over `reps` runs (after one warm-up) and returns throughput
/// in giga multiply-accumulates per second for a problem of `macs` MACs.
fn gmacs_per_s(macs: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    macs as f64 * reps as f64 / t.elapsed().as_secs_f64() / 1e9
}

fn record(kernel: &str, shape: String, wide: f64, naive: f64) -> KernelRecord {
    let rec = KernelRecord {
        bench: "kernels".into(),
        kernel: kernel.into(),
        shape,
        hardware_threads: hardware_threads(),
        lane_width: lane_width(),
        target_feature: target_feature(),
        wide_gmacs_per_s: wide,
        naive_gmacs_per_s: naive,
        speedup: wide / naive,
    };
    println!(
        "kernels: {} {}: wide {:.2} GMAC/s, naive {:.2} GMAC/s ({:.2}x)",
        rec.kernel, rec.shape, rec.wide_gmacs_per_s, rec.naive_gmacs_per_s, rec.speedup
    );
    rec
}

/// Runs the micro-bench and writes `BENCH_kernels.json`. `quick` trims
/// repetitions for the CI smoke path; the measured shapes are identical,
/// so quick and full runs produce the same record identities.
pub fn run(quick: bool) {
    let reps = if quick { 60 } else { 2000 };
    let mut rng = StdRng::seed_from_u64(7);
    // Trunk-sized operands: a 256-row batch through a 64-unit layer, like
    // the completion sweep's hidden GEMMs.
    let (m, k, n) = (256usize, 64usize, 64usize);
    let a = Matrix::rand_uniform(m, k, -1.0, 1.0, &mut rng);
    let b = Matrix::rand_uniform(k, n, -1.0, 1.0, &mut rng);
    let mut out = Matrix::zeros(m, n);
    let mut records = Vec::new();

    let wide = gmacs_per_s(m * k * n, reps, || a.matmul_into(&b, black_box(&mut out)));
    let naive = gmacs_per_s(m * k * n, reps, || {
        a.matmul_into_naive(&b, black_box(&mut out))
    });
    records.push(record("matmul_into", format!("{m}x{k}x{n}"), wide, naive));

    // Band widths like the sweep's degree bands: ragged sub-lane, exactly
    // one lane (post-padding common case), ragged multi-lane, and wide.
    let wide_b = Matrix::rand_uniform(k, 256, -1.0, 1.0, &mut rng);
    for w in [7usize, 16, 17, 33, 64] {
        let band = 64..64 + w;
        let wide = gmacs_per_s(m * k * w, reps, || {
            a.matmul_col_band_into(&wide_b, band.clone(), black_box(&mut out))
        });
        let naive = gmacs_per_s(m * k * w, reps, || {
            a.matmul_col_band_into_naive(&wide_b, band.clone(), black_box(&mut out))
        });
        records.push(record(
            "matmul_col_band_into",
            format!("band_w{w}"),
            wide,
            naive,
        ));
    }

    // Backward accumulators at training shapes. Accumulating across reps
    // is fine for timing — the add sequence per rep is what's measured.
    let gb = Matrix::rand_uniform(n, k, -1.0, 1.0, &mut rng);
    let mut acc = Matrix::zeros(m, n);
    let wide = gmacs_per_s(m * k * n, reps, || a.matmul_t_acc(&gb, black_box(&mut acc)));
    let naive = gmacs_per_s(m * k * n, reps, || {
        a.matmul_t_acc_naive(&gb, black_box(&mut acc))
    });
    records.push(record("matmul_t_acc", format!("{m}x{k}x{n}"), wide, naive));

    let ta = Matrix::rand_uniform(m, k, -1.0, 1.0, &mut rng);
    let tb = Matrix::rand_uniform(m, n, -1.0, 1.0, &mut rng);
    let mut tacc = Matrix::zeros(k, n);
    let wide = gmacs_per_s(m * k * n, reps, || {
        ta.t_matmul_acc(&tb, black_box(&mut tacc))
    });
    let naive = gmacs_per_s(m * k * n, reps, || {
        ta.t_matmul_acc_naive(&tb, black_box(&mut tacc))
    });
    records.push(record("t_matmul_acc", format!("{m}x{k}x{n}"), wide, naive));

    let mut mask = Matrix::rand_uniform(k, n, 0.0, 1.0, &mut rng);
    for v in mask.data_mut() {
        *v = if *v < 0.5 { 0.0 } else { 1.0 };
    }
    let mut macc = Matrix::zeros(k, n);
    let wide = gmacs_per_s(m * k * n, reps, || {
        ta.t_matmul_masked_acc(&tb, &mask, black_box(&mut macc))
    });
    let naive = gmacs_per_s(m * k * n, reps, || {
        ta.t_matmul_masked_acc_naive(&tb, &mask, black_box(&mut macc))
    });
    records.push(record(
        "t_matmul_masked_acc",
        format!("{m}x{k}x{n}"),
        wide,
        naive,
    ));

    write_bench_json("BENCH_kernels.json", &records);
}
