//! CI chaos smoke: soaks the serving front-end through a seeded
//! [`FaultPlan`](restore_serve::FaultPlan) — delays, read/write errors,
//! torn responses, and handler panics on a reproducible schedule — and
//! asserts the resilience-plane contract end to end:
//!
//! * **no wedge** — every soaked request resolves (answer or clean
//!   transport error), the whole soak finishes, and `/metrics` stays
//!   reachable throughout;
//! * **bit-reproducible** — two soaks with the same seed produce identical
//!   per-key outcome classes, even with 4 concurrent client workers
//!   (the schedule is a pure function of `(seed, fault key)`);
//! * **recovery** — every request past the fault window answers 200;
//! * **bounded shed** — a saturated admission gate answers 429 with
//!   `Retry-After` instead of queueing, and reopens after the load passes;
//! * **drain** — a server that just absorbed panics and torn writes still
//!   shuts down gracefully.
//!
//! Exits non-zero on any violation (the workflow checks the exit code).

use std::sync::Arc;
use std::time::{Duration, Instant};

use restore_bench::{sealed_synthetic_snapshot, serving_workload as workload};
use restore_core::wire::QueryRequest;
use restore_core::{Snapshot, SnapshotRegistry};
use restore_serve::{FaultAction, FaultConfig, FaultPlan, HttpClient, ServeConfig, Server};
use restore_util::json::{parse, JsonValue};

const SEED: u64 = 2026;
const WINDOW: (u64, u64) = (0, 120);
const KEYS: u64 = 180;
const WORKERS: u64 = 4;

fn fault_config() -> FaultConfig {
    FaultConfig {
        seed: SEED,
        window: WINDOW,
        delay_prob: 0.10,
        delay: Duration::from_millis(2),
        read_error_prob: 0.10,
        write_error_prob: 0.10,
        torn_prob: 0.10,
        panic_prob: 0.10,
    }
}

/// Outcome class of one soaked request: `'k'` answered 200, `'p'` drew a
/// panic (500), `'c'` lost its connection to an injected transport fault.
fn soak(registry: &Arc<SnapshotRegistry>, bodies: &Arc<Vec<String>>) -> (Vec<char>, f64) {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(registry),
        ServeConfig {
            fault: Some(fault_config()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let bodies = Arc::clone(bodies);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for key in (0..KEYS).filter(|k| k % WORKERS == w) {
                let body = &bodies[key as usize % bodies.len()];
                let outcome = HttpClient::connect(addr).expect("connect").request_full(
                    "POST",
                    "/v1/synthetic/query",
                    Some(body),
                    &[("X-Fault-Key", &key.to_string())],
                );
                let class = match outcome {
                    Ok(r) if r.status == 200 => 'k',
                    Ok(r) if r.status == 500 => 'p',
                    Ok(r) => panic!("unexpected status {} for key {key}: {}", r.status, r.body),
                    Err(_) => 'c',
                };
                out.push((key, class));
            }
            out
        }));
    }
    let mut classes = vec![' '; KEYS as usize];
    for handle in handles {
        for (key, class) in handle.join().expect("soak worker must not wedge") {
            classes[key as usize] = class;
        }
    }
    // The server is still observable after absorbing the whole fault mix…
    let mut client = HttpClient::connect(addr).expect("post-soak connect");
    let (status, metrics) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200, "{metrics}");
    let injected = parse(&metrics)
        .expect("metrics is valid JSON")
        .get("requests")
        .and_then(|r| r.get("faults_injected"))
        .and_then(JsonValue::as_f64)
        .expect("faults_injected counter");
    // …and still drains gracefully.
    drop(client);
    assert!(server.shutdown(), "faulted server must drain");
    (classes, injected)
}

fn main() {
    // The soak injects handler panics on purpose; keep their backtraces out
    // of the CI log while leaving real failures (the asserts below) loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected fault panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let started = Instant::now();
    let snapshot: Arc<Snapshot> = sealed_synthetic_snapshot(13, 13);
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", snapshot);
    let bodies: Arc<Vec<String>> = Arc::new(
        workload()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone(), i as u64).to_json())
            .collect(),
    );

    // The expected outcome classes come straight from the plan: the soak
    // must land exactly on them, run after run.
    let plan = FaultPlan::new(fault_config());
    let expected: Vec<char> = (0..KEYS)
        .map(|k| match plan.action(k) {
            FaultAction::None | FaultAction::Delay(_) => 'k',
            FaultAction::Panic => 'p',
            _ => 'c',
        })
        .collect();
    let expected_injected = (0..KEYS)
        .filter(|&k| plan.action(k) != FaultAction::None)
        .count() as f64;
    assert!(
        expected[..WINDOW.1 as usize].iter().any(|&c| c != 'k'),
        "the seed must actually fault part of the window"
    );

    let (first, injected_first) = soak(&registry, &bodies);
    let (second, injected_second) = soak(&registry, &bodies);
    assert_eq!(first, expected, "soak must match the seeded plan exactly");
    assert_eq!(second, expected, "second soak must be bit-identical");
    assert_eq!(
        (injected_first, injected_second),
        (expected_injected, expected_injected),
        "faults_injected must count exactly the planned faults"
    );
    assert!(
        first[WINDOW.1 as usize..].iter().all(|&c| c == 'k'),
        "every request past the fault window must answer 200 (recovery)"
    );

    // Bounded shed: hold the only admission permit with a delayed request,
    // watch a concurrent request shed 429 + Retry-After, then watch the
    // gate reopen once the slow request completes.
    let shed_server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            max_in_flight: 1,
            fault: Some(FaultConfig {
                seed: SEED,
                window: (1, 2),
                delay_prob: 1.0,
                delay: Duration::from_millis(300),
                ..FaultConfig::default()
            }),
            ..ServeConfig::default()
        },
    )
    .expect("bind shed server");
    let addr = shed_server.local_addr();
    let slow_body = bodies[0].clone();
    let slow = std::thread::spawn(move || {
        HttpClient::connect(addr)
            .expect("connect")
            .request_full(
                "POST",
                "/v1/synthetic/query",
                Some(&slow_body),
                &[("X-Fault-Key", "1")],
            )
            .expect("slow request")
    });
    let hold_deadline = Instant::now() + Duration::from_secs(5);
    while shed_server.requests_admitted() == 0 {
        assert!(Instant::now() < hold_deadline, "permit never taken");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut client = HttpClient::connect(addr).expect("connect");
    let shed = client
        .request_full("POST", "/v1/synthetic/query", Some(&bodies[1]), &[])
        .expect("shed request answers");
    assert_eq!(shed.status, 429, "saturated gate must shed: {}", shed.body);
    assert!(shed.retry_after().is_some(), "sheds carry Retry-After");
    assert_eq!(slow.join().expect("slow thread").status, 200);
    let reopened = client
        .request_full("POST", "/v1/synthetic/query", Some(&bodies[1]), &[])
        .expect("post-overload request");
    assert_eq!(reopened.status, 200, "gate must reopen: {}", reopened.body);
    drop(client);
    assert!(shed_server.shutdown(), "shed server must drain");

    let faulted = expected.iter().filter(|&&c| c != 'k').count();
    println!(
        "chaos smoke OK: 2x{KEYS}-request seeded soak ({WORKERS} workers, {faulted} faulted keys) \
         bit-reproducible, full recovery past the window, bounded 429 shed with Retry-After, \
         graceful drains; {:.2}s total",
        started.elapsed().as_secs_f64()
    );
}
