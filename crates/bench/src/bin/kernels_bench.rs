//! Kernel micro-bench runner: times each wide (lane-tiled) GEMM kernel
//! against its naive reference across band widths and writes
//! `results/BENCH_kernels.json` (plus the trend delta against the previous
//! run). `--quick` trims repetitions for CI.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "kernels_bench: lane_width={} target_feature={} ({})",
        restore_bench::lane_width(),
        restore_bench::target_feature(),
        if quick { "quick" } else { "full" },
    );
    restore_bench::kernels::run(quick);
}
