//! CI smoke for the concurrent serving engine: builds one tiny sealed
//! [`Snapshot`], executes a query workload serially, then again from 4
//! threads over the shared snapshot, and asserts the answers are
//! bit-identical — plus that single-flight held (synthesis count ==
//! distinct completion paths, not requests). Exits non-zero on any
//! divergence, so the workflow catches serving-determinism regressions
//! without paying for the full bench suite.

use std::sync::Arc;
use std::time::Instant;

use restore_bench::{result_fingerprint as fingerprint, serving_workload as workload};
use restore_core::{CompleterConfig, ReStore, RestoreConfig, Snapshot, TrainConfig};
use restore_data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};

fn build() -> Arc<Snapshot> {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 150,
            ..Default::default()
        },
        9,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 9;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 2,
            min_steps: 50,
            hidden: vec![24, 24],
            max_train_rows: 2_000,
            workers: 1,
            ..TrainConfig::default()
        },
        completer: CompleterConfig {
            workers: 1,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    rs.train(9).expect("train");
    for q in workload() {
        rs.ensure_query_models(&q.tables, 9).expect("ensure models");
    }
    Arc::new(rs.seal(9))
}

fn main() {
    let queries = workload();
    let seeds: Vec<u64> = (0..4).collect();

    // Serial reference over a fresh snapshot.
    let serial_snap = build();
    let mut serial = Vec::new();
    for q in &queries {
        for &s in &seeds {
            serial.push(fingerprint(
                &serial_snap.execute(q, s).expect("serial execute"),
            ));
        }
    }

    // Concurrent pass over another fresh snapshot: 4 threads, each runs
    // the whole workload in a different order.
    let snap = build();
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..4usize {
        let (snap, queries, seeds) = (Arc::clone(&snap), queries.clone(), seeds.clone());
        handles.push(std::thread::spawn(move || {
            let mut results = vec![String::new(); queries.len() * seeds.len()];
            for k in 0..results.len() {
                let idx = (k + t * 3) % results.len(); // per-thread order
                let (qi, si) = (idx / seeds.len(), idx % seeds.len());
                results[idx] = fingerprint(
                    &snap
                        .execute(&queries[qi], seeds[si])
                        .expect("concurrent execute"),
                );
            }
            results
        }));
    }
    let concurrent: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();

    for (t, results) in concurrent.iter().enumerate() {
        assert_eq!(
            results, &serial,
            "thread {t} diverged from the serial reference"
        );
    }

    // Single-flight accounting: syntheses == distinct completion chains.
    let stats = snap.full_cache_stats();
    let distinct_paths = snap.cached_completions().len() as u64;
    assert_eq!(
        stats.misses, distinct_paths,
        "synthesis count must equal distinct paths (single-flight)"
    );
    let total_queries = 4 * queries.len() * seeds.len();
    println!(
        "serve smoke OK: {total_queries} queries from 4 threads in {elapsed:.2}s \
         ({:.0} q/s), bit-identical to serial; {} syntheses for {} distinct paths \
         ({} hits, {} waits)",
        total_queries as f64 / elapsed.max(1e-9),
        stats.misses,
        distinct_paths,
        stats.hits,
        stats.waits,
    );
}
