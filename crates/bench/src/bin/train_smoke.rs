//! CI smoke bench for the training engine: trains one tiny completion
//! model (1 epoch) through the data-parallel path at 1 and 2 workers,
//! asserts the runs are bit-identical, and prints the step throughput.
//! Exits non-zero on any divergence, so the workflow catches determinism
//! regressions without paying for the full bench suite.

use std::time::Instant;

use restore_core::{CompletionModel, CompletionPath, SchemaAnnotation, TrainConfig};
use restore_data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};

fn train(sc: &restore_data::Scenario, workers: usize) -> (CompletionModel, f64) {
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path =
        CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()]).expect("path");
    let cfg = TrainConfig {
        epochs: 1,
        min_steps: 1,
        hidden: vec![24, 24],
        max_train_rows: 2_000,
        workers,
        ..TrainConfig::default()
    };
    let t = Instant::now();
    let model = CompletionModel::train(&sc.incomplete, &ann, path, &cfg, 5).expect("train");
    (model, t.elapsed().as_secs_f64())
}

fn main() {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent: 200,
            ..Default::default()
        },
        5,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 5;
    let sc = apply_removal(&db, &removal);

    let (m1, t1) = train(&sc, 1);
    let (m2, t2) = train(&sc, 2);

    assert_eq!(m1.train_losses, m2.train_losses, "train losses diverged");
    assert_eq!(
        m1.val_loss.to_bits(),
        m2.val_loss.to_bits(),
        "val loss diverged"
    );
    for id in 0..m1.params().len() {
        assert_eq!(
            m1.params().value(id),
            m2.params().value(id),
            "parameter {id} diverged between 1 and 2 workers"
        );
    }
    let steps = m1.train_losses.len().max(1);
    println!(
        "train smoke OK: val_loss {:.4}, 1 worker {:.2}s, 2 workers {:.2}s \
         (~{:.1} epochs/s single-threaded), bit-identical across workers",
        m1.val_loss,
        t1,
        t2,
        steps as f64 / t1.max(1e-9),
    );
}
