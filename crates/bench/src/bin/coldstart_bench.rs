//! Cold-start measurement: how fast a server comes up from a snapshot file
//! versus retraining from scratch — the number the persistence layer
//! exists to improve.
//!
//! Measures, over the synthetic `ta → tb` fixture:
//! * `train_ms`  — build + train + warm + seal from raw data,
//! * `save_ms`   — serialize + atomic write to disk,
//! * `load_ms`   — read + validate + rehydrate into a serving snapshot,
//! * `snapshot_bytes` and `speedup = train_ms / load_ms`.
//!
//! Writes `results/BENCH_coldstart.json` (picked up by the CI trend
//! report) and leaves the snapshot under `results/snapshots/` so CI can
//! upload it as an artifact. Asserts the loaded snapshot serves the
//! workload bit-identically and that `speedup ≥ 10` — instant cold start
//! is a hard acceptance bar, not an aspiration. `--quick` shrinks nothing
//! (the fixture is already tiny) but skips the repeat loop.

use std::path::PathBuf;
use std::time::Instant;

use restore_bench::{
    hardware_threads, lane_width, result_fingerprint as fingerprint, sealed_synthetic_snapshot,
    serving_workload as workload, target_feature, write_bench_json,
};
use restore_core::Snapshot;
use restore_util::impl_to_json;

/// One cold-start measurement (`BENCH_coldstart.json`).
#[derive(Clone, Debug)]
struct ColdstartRecord {
    /// Bench group, `"coldstart"`.
    bench: String,
    /// Variant label, `"snapshot_vs_train"`.
    engine: String,
    /// Hardware threads of the machine the record was taken on.
    hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    lane_width: usize,
    /// Target-feature label behind the lane width.
    target_feature: String,
    /// Milliseconds to build + train + warm + seal from raw data.
    train_ms: f64,
    /// Milliseconds to serialize + atomically write the snapshot.
    save_ms: f64,
    /// Milliseconds to load + validate + rehydrate from disk (best of the
    /// measured iterations — steady-state cold start, not first-touch IO).
    load_ms: f64,
    /// Snapshot file size in bytes.
    snapshot_bytes: f64,
    /// `train_ms / load_ms` — how much faster a snapshot boot is.
    speedup: f64,
}
impl_to_json!(ColdstartRecord {
    bench,
    engine,
    hardware_threads,
    lane_width,
    target_feature,
    train_ms,
    save_ms,
    load_ms,
    snapshot_bytes,
    speedup
});

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let load_iters = if quick { 3 } else { 10 };

    // Train phase: everything a server without persistence must do before
    // it can answer its first query.
    let train_started = Instant::now();
    let snapshot = sealed_synthetic_snapshot(11, 23);
    let train_ms = train_started.elapsed().as_secs_f64() * 1e3;

    // Save into results/snapshots/ so CI uploads the file as an artifact.
    let dir: PathBuf = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/snapshots"
    ));
    std::fs::create_dir_all(&dir).expect("snapshots dir");
    let path = dir.join("coldstart").join("v00001.snap");
    std::fs::create_dir_all(path.parent().unwrap()).expect("tenant dir");
    let save_started = Instant::now();
    let snapshot_bytes = snapshot.save(&path).expect("save");
    let save_ms = save_started.elapsed().as_secs_f64() * 1e3;

    // Load phase: what a server *with* persistence does instead. Best of N
    // so the record reflects the format, not one cold page cache.
    let mut load_ms = f64::INFINITY;
    let mut loaded = None;
    for _ in 0..load_iters {
        let started = Instant::now();
        let snap = Snapshot::load(&path).expect("load");
        load_ms = load_ms.min(started.elapsed().as_secs_f64() * 1e3);
        loaded = Some(snap);
    }
    let loaded = loaded.expect("at least one load iteration");

    // The speedup only counts if the loaded snapshot actually serves the
    // same bytes.
    for q in workload() {
        for seed in [0u64, 7] {
            assert_eq!(
                fingerprint(&loaded.execute(&q, seed).expect("loaded execute")),
                fingerprint(&snapshot.execute(&q, seed).expect("trained execute")),
                "loaded snapshot diverged on {q:?} seed {seed}"
            );
        }
    }

    let speedup = train_ms / load_ms.max(1e-9);
    let record = ColdstartRecord {
        bench: "coldstart".into(),
        engine: "snapshot_vs_train".into(),
        hardware_threads: hardware_threads(),
        lane_width: lane_width(),
        target_feature: target_feature(),
        train_ms,
        save_ms,
        load_ms,
        snapshot_bytes: snapshot_bytes as f64,
        speedup,
    };
    write_bench_json("BENCH_coldstart.json", std::slice::from_ref(&record));
    println!(
        "coldstart: train {train_ms:.1} ms, save {save_ms:.2} ms, load {load_ms:.2} ms, \
         {snapshot_bytes} bytes, speedup {speedup:.0}x"
    );
    assert!(
        speedup >= 10.0,
        "cold start from snapshot must be ≥10x faster than retraining \
         (train {train_ms:.1} ms / load {load_ms:.2} ms = {speedup:.1}x)"
    );
}
