//! CI smoke for the HTTP serving front-end: publishes one sealed snapshot
//! into a [`SnapshotRegistry`], starts the `restore-serve` server on a
//! loopback port, fires the serving workload from a client thread over
//! real sockets, and asserts every HTTP response body is **byte-identical**
//! to the wire encoding of direct `Snapshot::execute` — then checks
//! `/healthz`, `/metrics`, the completed-table endpoint, and a clean
//! graceful shutdown. Exits non-zero on any divergence (the workflow
//! checks the exit code).
//!
//! `--connections N` additionally parks N idle keep-alive connections on
//! the epoll reactor before the workload runs, asserting byte-equality
//! holds with the armada in place and that `/metrics` accounts every
//! open socket.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use restore_bench::{sealed_synthetic_snapshot, serving_workload as workload};
use restore_core::wire::{self, QueryRequest};
use restore_core::SnapshotRegistry;
use restore_serve::{raise_fd_limit, HttpClient, ServeConfig, Server};
use restore_util::json::{parse, JsonValue};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let idle_connections: usize = args
        .iter()
        .position(|a| a == "--connections")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--connections N")
        })
        .unwrap_or(0);

    let snapshot = sealed_synthetic_snapshot(9, 9);
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", Arc::clone(&snapshot));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    // Optional connection axis: park an armada of idle keep-alive sockets
    // on the reactor before (and throughout) the byte-equality run. Each
    // is primed with one request so the server holds it in KeepAliveIdle.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_connections);
    if idle_connections > 0 {
        raise_fd_limit().expect("raise fd limit");
        for i in 0..idle_connections {
            let mut stream =
                TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}"));
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("prime idle socket");
            idle.push(stream);
        }
        for stream in &mut idle {
            let mut seen = Vec::new();
            let mut chunk = [0u8; 1024];
            // One healthz response is tiny; read until the blank line, then
            // trust Content-Length-free framing (body arrives with head).
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                let n = std::io::Read::read(stream, &mut chunk).expect("idle response");
                assert!(n > 0, "idle socket closed during prime");
                seen.extend_from_slice(&chunk[..n]);
            }
        }
    }

    // Query bit-equality from a dedicated client thread (like CI's other
    // smokes, the comparison is exact, not approximate).
    let expected: Vec<(String, String)> = workload()
        .iter()
        .flat_map(|q| {
            (0..3u64).map(|seed| {
                let body = QueryRequest::new(q.clone(), seed).to_json();
                let direct =
                    wire::query_response_json(&snapshot.execute(q, seed).expect("direct"), None);
                (body, direct)
            })
        })
        .collect();
    let started = Instant::now();
    let client = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connect");
        for (request_body, direct) in &expected {
            let (status, body) = client
                .post("/v1/synthetic/query", request_body)
                .expect("query request");
            assert_eq!(status, 200, "query must succeed: {body}");
            assert_eq!(
                &body, direct,
                "HTTP response must be byte-identical to direct execution"
            );
        }
        expected.len()
    });
    let queries = client.join().expect("client thread");
    let elapsed = started.elapsed().as_secs_f64();

    let mut client = HttpClient::connect(addr).expect("reconnect");

    // Completed-table endpoint: byte-identical to the direct call.
    let (status, table_body) = client
        .get("/v1/synthetic/tables/tb?seed=1")
        .expect("table request");
    assert_eq!(status, 200, "table fetch must succeed: {table_body}");
    assert_eq!(
        table_body,
        wire::table_json(&snapshot.completed_table("tb", 1).expect("direct table")),
        "completed-table response must be byte-identical"
    );

    // Liveness + counters.
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert!(
        health.contains("\"synthetic\""),
        "healthz lists tenants: {health}"
    );
    let (status, metrics) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let doc = parse(&metrics).expect("metrics is valid JSON");
    let requests = doc
        .get("requests")
        .and_then(|r| r.get("total"))
        .and_then(JsonValue::as_f64)
        .expect("requests.total");
    assert!(
        requests >= queries as f64,
        "metrics counted requests: {metrics}"
    );
    let tenant_queries = doc
        .get("tenants")
        .and_then(|t| t.get("synthetic"))
        .and_then(|t| t.get("queries"))
        .and_then(JsonValue::as_f64)
        .expect("per-tenant queries");
    assert!(tenant_queries >= queries as f64);
    let cache_misses = doc
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(JsonValue::as_f64)
        .expect("cache.misses");
    assert!(
        cache_misses >= 1.0,
        "served queries synthesized at least one chain"
    );
    let open_connections = doc
        .get("event_loop")
        .and_then(|e| e.get("open_connections"))
        .and_then(JsonValue::as_f64)
        .expect("event_loop.open_connections");
    assert!(
        open_connections >= idle_connections as f64 + 1.0,
        "reactor accounts the idle armada + this client: {metrics}"
    );

    // Unknown tenants and routes fail cleanly, connection stays usable.
    let (status, _) = client.post("/v1/nope/query", "{}").expect("unknown tenant");
    assert_eq!(status, 404);
    let (status, _) = client.get("/nowhere").expect("unknown route");
    assert_eq!(status, 404);

    // Graceful shutdown: drains (idle keep-alive connections included —
    // the armada stays parked until the trigger closes it) and stops
    // accepting.
    drop(client);
    assert!(server.shutdown(), "server must drain cleanly");
    drop(idle);
    assert!(
        HttpClient::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );

    println!(
        "http smoke OK: {queries} HTTP queries in {elapsed:.2}s ({:.0} q/s) with \
         {idle_connections} idle keep-alive connections parked, byte-identical to \
         direct Snapshot::execute; healthz/metrics/tables live; graceful shutdown \
         drained",
        queries as f64 / elapsed.max(1e-9),
    );
}
