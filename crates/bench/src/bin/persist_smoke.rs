//! CI persistence gate: proves a snapshot loaded from disk serves
//! **byte-identically** to the in-memory snapshot it was saved from — not
//! just in this process, but in a *fresh* one.
//!
//! 1. Build a tiny sealed snapshot, save it, load it back in-process, and
//!    assert bit-identical fingerprints over the whole serving workload
//!    (every query × seed, plus a confidence interval).
//! 2. Re-exec this binary as a child (`--child <path>`): the child knows
//!    nothing but the file path, loads the snapshot cold, and prints its
//!    fingerprints; the parent asserts they match the in-memory ones —
//!    the cold-start contract across a process boundary.
//! 3. Corrupt a copy (one flipped byte; then a truncated tail) and assert
//!    the loader rejects both with a clean `corrupt snapshot` error — no
//!    panic, no garbage snapshot.
//!
//! Exits non-zero on any divergence.

use std::path::{Path, PathBuf};
use std::process::Command;

use restore_bench::{
    result_fingerprint as fingerprint, sealed_synthetic_snapshot, serving_workload as workload,
};
use restore_core::{ConfidenceQuery, PersistError, Snapshot};

const SEEDS: [u64; 3] = [0, 7, 40];

/// Every fingerprint the serving contract covers: the full query workload
/// under each seed, then one §6 confidence interval (a different execution
/// path: per-row certainties + bootstrap over the completed join).
fn serve_fingerprints(snapshot: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    for q in workload() {
        for &seed in &SEEDS {
            out.push(fingerprint(&snapshot.execute(&q, seed).expect("execute")));
        }
    }
    let tables = vec!["ta".to_string(), "tb".to_string()];
    let cq = ConfidenceQuery::CountFraction {
        table: "tb".to_string(),
        column: "b".to_string(),
        value: "b0".to_string(),
    };
    let ci = snapshot
        .confidence(&tables, &cq, 0.95, 7)
        .expect("confidence");
    out.push(format!(
        "ci:{:016x},{:016x},{:016x}",
        ci.lo.to_bits(),
        ci.hi.to_bits(),
        ci.estimate.to_bits()
    ));
    out
}

/// Child mode: load the snapshot cold and print one fingerprint per line.
fn child(path: &Path) {
    let snapshot = Snapshot::load(path).expect("child load");
    for fp in serve_fingerprints(&snapshot) {
        println!("{fp}");
    }
}

fn expect_corrupt(bytes: &[u8], label: &str) {
    match Snapshot::from_bytes(bytes) {
        Err(PersistError::Corrupt(reason)) => {
            println!("persist smoke: {label} rejected: {reason}");
        }
        Err(other) => panic!("{label}: expected Corrupt, got {other}"),
        Ok(_) => panic!("{label}: loader accepted corrupted bytes"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--child" {
        child(Path::new(&args[2]));
        return;
    }

    let dir: PathBuf = std::env::temp_dir().join(format!("restore-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("v00001.snap");

    // Build, serve in memory, save.
    let snapshot = sealed_synthetic_snapshot(11, 23);
    let reference = serve_fingerprints(&snapshot);
    let bytes = snapshot.save(&path).expect("save");

    // In-process round trip: byte-identical serving.
    let loaded = Snapshot::load(&path).expect("load");
    assert_eq!(
        loaded.serve_seed(),
        snapshot.serve_seed(),
        "serve seed must survive the round trip"
    );
    let round_trip = serve_fingerprints(&loaded);
    assert_eq!(
        round_trip, reference,
        "loaded snapshot diverged from the in-memory original"
    );

    // Idempotence: re-serializing the loaded snapshot reproduces the file.
    let on_disk = std::fs::read(&path).expect("read back");
    assert_eq!(
        loaded.to_bytes(),
        on_disk,
        "serialization must be deterministic across a round trip"
    );

    // Cross-process cold start: a fresh process, given only the file path,
    // must serve the same bytes.
    let exe = std::env::current_exe().expect("current exe");
    let output = Command::new(&exe)
        .arg("--child")
        .arg(&path)
        .output()
        .expect("spawn child");
    assert!(
        output.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let child_lines: Vec<String> = String::from_utf8(output.stdout)
        .expect("child stdout utf-8")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        child_lines, reference,
        "cold-started child process diverged from the in-memory original"
    );

    // Corruption rejection: a flipped byte mid-file and a truncated tail
    // must both fail checksum/framing validation with a clean error.
    let mut flipped = on_disk.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    expect_corrupt(&flipped, "flipped byte");
    expect_corrupt(&on_disk[..on_disk.len() - 16], "truncated tail");

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "persist smoke OK: {} fingerprints byte-identical in-process and across a \
         process boundary ({bytes} byte snapshot); flipped-byte and truncated copies rejected",
        reference.len()
    );
}
