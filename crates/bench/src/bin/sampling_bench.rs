//! CI-runnable sampling-engine bench: times single-row tape sampling vs
//! the batched no-grad engine (full-trunk recompute vs band-incremental
//! sweep vs parallel fan-out) and writes `results/BENCH_completion.json`
//! with a trend diff against the previous run — so a sweep regression
//! shows up in the job log's trend report before merge.
//!
//! `--quick` shrinks the repetition counts for the CI test job (like
//! `http_bench --quick`); the records keep the same identities either way.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    restore_bench::sampling::SamplingBench::new().measure_and_write(quick);
}
