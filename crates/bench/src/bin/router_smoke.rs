//! Fleet smoke: one shard router in front of two worker *processes*
//! (re-execs of this binary with `--worker <dir>`), both booted from a
//! temp snapshot directory — the CI gate for the multi-process scale-out
//! path. Exercises, in order:
//!
//! 1. **Byte equality** — for every wire route (query with and without a
//!    confidence interval, completed table, protocol errors, unknown
//!    tenant, method mismatch), the response through the router is
//!    byte-identical (status + body) to asking the tenant's worker
//!    directly. The router adds transport, never bits.
//! 2. **Failover** — kill one worker mid-load: the monitor re-execs it
//!    from the same snapshot directory, a closed-loop client pinned to
//!    that shard sees **zero failed requests** (forwards ride out the
//!    window on the retry budget), the tenant→shard mapping is unchanged,
//!    and post-recovery responses are byte-identical to pre-kill ones
//!    (same snapshot directory ⇒ same bytes).
//! 3. **Fleet observability** — `/healthz` reports the fleet up,
//!    `/metrics` carries a `fleet` section with the respawn on record, and
//!    `/fleet/{i}/metrics` passes a worker's own document through.
//! 4. **Graceful drain** — the router drains cleanly and the fleet tears
//!    its workers down.

use std::sync::Arc;
use std::time::{Duration, Instant};

use restore_bench::{
    balanced_fleet_tenants, run_fleet_worker_child, seed_fleet_snapshot_dir,
    serving_workload as workload,
};
use restore_core::wire::QueryRequest;
use restore_core::{ConfidenceQuery, SnapshotRegistry};
use restore_db::{Agg, Query};
use restore_serve::router::{Fleet, FleetConfig, ShardConfig, WorkerSpec};
use restore_serve::{HttpClient, HttpResponse, ServeConfig, Server};
use restore_util::json::parse;

/// (status, body) for one request against one address — the unit of the
/// byte-equality comparison. Headers are excluded on purpose: request ids
/// are per-server accept-order counters and legitimately differ.
fn ask(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let HttpResponse { status, body, .. } = HttpClient::connect(addr)
        .expect("connect")
        .request_full(method, path, body, &[])
        .expect("request");
    (status, body)
}

fn assert_byte_equal(
    router: std::net::SocketAddr,
    worker: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String) {
    let via_router = ask(router, method, path, body);
    let direct = ask(worker, method, path, body);
    assert_eq!(
        via_router, direct,
        "router must pass bytes through untouched: {method} {path}"
    );
    via_router
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--worker") {
        let dir = args.get(i + 1).expect("--worker <snapshot-dir>");
        run_fleet_worker_child(std::path::PathBuf::from(dir));
    }

    // Two shards, four tenants balanced two-per-shard, one snapshot dir.
    let snapshot_dir =
        std::env::temp_dir().join(format!("restore_router_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let tenants = balanced_fleet_tenants(2, 2);
    seed_fleet_snapshot_dir(&snapshot_dir, &tenants);
    let spec = WorkerSpec {
        program: std::env::current_exe().expect("current exe"),
        args: vec!["--worker".to_string(), snapshot_dir.display().to_string()],
    };
    let fleet = Fleet::start(FleetConfig {
        shards: vec![
            ShardConfig {
                addr: None,
                worker: Some(spec)
            };
            2
        ],
        ..FleetConfig::default()
    })
    .expect("fleet start");
    let router = Server::bind(
        "127.0.0.1:0",
        Arc::new(SnapshotRegistry::new()),
        ServeConfig {
            fleet: Some(Arc::clone(&fleet)),
            ..ServeConfig::default()
        },
    )
    .expect("bind router");
    let router_addr = router.local_addr();
    println!("router on {router_addr}, fleet {:?}", fleet);

    // Phase 1: byte equality on every route, for every tenant.
    let plain = QueryRequest::new(workload()[0].clone(), 3).to_json();
    let confident = QueryRequest::new(Query::new(["ta", "tb"]).aggregate(Agg::CountStar), 5)
        .with_confidence(
            ConfidenceQuery::CountFraction {
                table: "tb".into(),
                column: "b".into(),
                value: "b1".into(),
            },
            0.95,
        )
        .to_json();
    for tenant in &tenants {
        let worker = fleet
            .shard_addr(fleet.shard_for(tenant))
            .expect("shard addr");
        let base = format!("/v1/{tenant}");
        let (status, _) = assert_byte_equal(
            router_addr,
            worker,
            "POST",
            &format!("{base}/query"),
            Some(&plain),
        );
        assert_eq!(status, 200);
        let (status, _) = assert_byte_equal(
            router_addr,
            worker,
            "POST",
            &format!("{base}/query"),
            Some(&confident),
        );
        assert_eq!(status, 200);
        let (status, _) = assert_byte_equal(
            router_addr,
            worker,
            "GET",
            &format!("{base}/tables/tb?seed=2"),
            None,
        );
        assert_eq!(status, 200);
        // Protocol errors and method mismatches pass through too.
        let (status, _) = assert_byte_equal(
            router_addr,
            worker,
            "POST",
            &format!("{base}/query"),
            Some("not json"),
        );
        assert_eq!(status, 400);
        let (status, _) =
            assert_byte_equal(router_addr, worker, "GET", &format!("{base}/query"), None);
        assert_eq!(status, 405);
    }
    // Unknown tenants still route (by hash) and 404 identically.
    let ghost_worker = fleet
        .shard_addr(fleet.shard_for("no-such-tenant"))
        .expect("ghost shard addr");
    let (status, _) = assert_byte_equal(
        router_addr,
        ghost_worker,
        "POST",
        "/v1/no-such-tenant/query",
        Some(&plain),
    );
    assert_eq!(status, 404);
    println!(
        "byte equality: all routes identical through router, {} tenants",
        tenants.len()
    );

    // Phase 3a (pre-kill observability): fleet healthz + metrics sections.
    let (status, health) = ask(router_addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(
        health.contains("\"status\":\"ok\"") && health.contains("\"up\":2"),
        "fleet healthz must report both shards up: {health}"
    );
    let (status, metrics) = ask(router_addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let root = parse(&metrics).expect("router metrics parse");
    let fleet_section = root
        .get("fleet")
        .expect("metrics must carry a fleet section");
    assert_eq!(
        fleet_section.get("shards").and_then(|v| v.as_f64()),
        Some(2.0)
    );
    let (status, shard0_metrics) = ask(router_addr, "GET", "/fleet/0/metrics", None);
    assert_eq!(status, 200, "shard drill-down must pass through");
    assert!(
        parse(&shard0_metrics)
            .and_then(|v| v.get("requests").map(|_| ()))
            .is_some(),
        "worker metrics must pass through parseable: {shard0_metrics}"
    );
    let (status, _) = ask(router_addr, "GET", "/fleet/9/metrics", None);
    assert_eq!(status, 404, "out-of-range shard index answers 404");

    // Phase 2: kill shard 0's worker under load; zero failed requests.
    let victim_tenant = tenants
        .iter()
        .find(|t| fleet.shard_for(t) == 0)
        .expect("a tenant lives on shard 0")
        .clone();
    let victim_path = format!("/v1/{victim_tenant}/query");
    let pre_kill = ask(router_addr, "POST", &victim_path, Some(&plain));
    let old_addr = fleet.shard_addr(0).expect("shard 0 addr");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = {
        let (stop, path, body) = (Arc::clone(&stop), victim_path.clone(), plain.clone());
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(router_addr).expect("load connect");
            let mut completed = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match client.request_full("POST", &path, Some(&body), &[]) {
                    Ok(response) => assert_eq!(
                        response.status, 200,
                        "zero failed requests through failover: {}",
                        response.body
                    ),
                    // The router may close the connection it was holding
                    // when it answered; transport-level reconnect is the
                    // client's normal keep-alive contract, not a failure.
                    Err(_) => client = HttpClient::connect(router_addr).expect("reconnect"),
                }
                completed += 1;
            }
            completed
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(fleet.kill_shard(0), "shard 0 must have a child to kill");
    // Wait for the monitor to notice, re-exec, and restore service.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !(fleet.shard_is_up(0) && fleet.shard_addr(0) != Some(old_addr)) {
        assert!(Instant::now() < deadline, "failover must finish within 30s");
        std::thread::sleep(Duration::from_millis(50));
    }
    // Ride a little longer on the recovered shard, then stop the load.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let completed = load.join().expect("load thread");
    assert!(
        completed > 0,
        "load thread must have exercised the failover"
    );
    let new_addr = fleet.shard_addr(0).expect("respawned shard addr");
    assert_ne!(new_addr, old_addr, "respawned worker binds a fresh port");

    // Mapping stability + byte-stable answers across the restart: the
    // respawned worker boot-scanned the same snapshot directory, so the
    // same request answers with the same bytes.
    assert_eq!(fleet.shard_for(&victim_tenant), 0);
    let post_kill = ask(router_addr, "POST", &victim_path, Some(&plain));
    assert_eq!(
        pre_kill, post_kill,
        "a re-execed worker must answer byte-identically from the same snapshot dir"
    );
    let fleet_metrics = parse(&fleet.metrics_json()).expect("fleet metrics parse");
    let respawns = fleet_metrics
        .get("respawns")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(respawns >= 1.0, "the failover must be a recorded re-exec");
    let (_, health) = ask(router_addr, "GET", "/healthz", None);
    assert!(
        health.contains("\"up\":2"),
        "fleet must be fully healthy after failover: {health}"
    );
    println!(
        "failover: worker re-execed ({old_addr} -> {new_addr}), {completed} requests, 0 failures, \
         respawns {respawns}"
    );

    // Phase 4: graceful drain.
    assert!(router.shutdown(), "router must drain cleanly");
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    println!("router_smoke ok: byte-equal forwarding, zero-loss failover, clean drain");
}
