//! HTTP serving throughput: N client threads, each with its own keep-alive
//! connection, hammer the `restore-serve` front-end over loopback sockets
//! with the serving workload. Measures end-to-end request latency (parse +
//! registry lookup + AQP execution + wire encoding + TCP) and writes
//! `results/BENCH_http.json` records `{threads, queries/s, p50/p99 ms}`
//! with a trend diff against the previous run.
//!
//! `--quick` shrinks the sweep for CI; the full run also measures a
//! reconnect-per-request variant (connection-setup overhead) at 4 threads.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use restore_bench::{
    percentile, sealed_synthetic_snapshot, serving_workload as workload, write_bench_json,
    HttpRecord,
};
use restore_core::wire::QueryRequest;
use restore_core::SnapshotRegistry;
use restore_serve::{HttpClient, ServeConfig, Server};

/// Runs `per_thread` requests on each of `threads` keep-alive connections;
/// returns (queries/s, per-request latencies in ms).
fn run_clients(
    addr: std::net::SocketAddr,
    threads: usize,
    per_thread: usize,
    reconnect: bool,
) -> (f64, Vec<f64>) {
    let bodies: Arc<Vec<String>> = Arc::new(
        workload()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone(), i as u64).to_json())
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(threads * per_thread)));
    let mut handles = Vec::new();
    for t in 0..threads {
        let (bodies, barrier, latencies) = (
            Arc::clone(&bodies),
            Arc::clone(&barrier),
            Arc::clone(&latencies),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            barrier.wait();
            let mut local = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                if reconnect {
                    client = HttpClient::connect(addr).expect("reconnect");
                }
                let body = &bodies[(t + i) % bodies.len()];
                let started = Instant::now();
                let (status, response) = client
                    .post("/v1/synthetic/query", body)
                    .expect("query request");
                local.push(started.elapsed().as_secs_f64() * 1e3);
                assert_eq!(status, 200, "bench query failed: {response}");
            }
            latencies
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(local);
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let latencies = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    ((threads * per_thread) as f64 / elapsed, latencies)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (thread_sweep, per_thread): (&[usize], usize) = if quick {
        (&[1, 2, 4], 30)
    } else {
        (&[1, 2, 4, 8], 150)
    };

    let snapshot = sealed_synthetic_snapshot(21, 21);
    // Warm every chain up front so the sweep measures serving, not
    // synthesis (the cold path is covered by the `serving` bench).
    for q in workload() {
        snapshot.execute(&q, 0).expect("warmup");
    }
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", snapshot);
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut records = Vec::new();
    let mut summary = String::from("http serving (warm cache, keep-alive)");
    for &threads in thread_sweep {
        run_clients(addr, threads, per_thread / 3 + 1, false); // warmup
        let (qps, latencies) = run_clients(addr, threads, per_thread, false);
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
        records.push(HttpRecord {
            bench: "http".into(),
            engine: "warm_keepalive".into(),
            threads,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
            p50_ms: p50,
            p99_ms: p99,
        });
        summary.push_str(&format!(
            ", t{threads} {qps:.0} q/s (p50 {p50:.2}ms p99 {p99:.2}ms)"
        ));
    }
    if !quick {
        let (qps, latencies) = run_clients(addr, 4, per_thread, true);
        records.push(HttpRecord {
            bench: "http".into(),
            engine: "warm_reconnect".into(),
            threads: 4,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
            p50_ms: percentile(&latencies, 0.5),
            p99_ms: percentile(&latencies, 0.99),
        });
        summary.push_str(&format!(", reconnect t4 {qps:.0} q/s"));
    }
    println!("{summary}");
    write_bench_json("BENCH_http.json", &records);
    assert!(server.shutdown(), "server must drain after the bench");
}
