//! HTTP serving throughput: N client threads, each with its own keep-alive
//! connection, hammer the `restore-serve` front-end over loopback sockets
//! with the serving workload. Measures end-to-end request latency (parse +
//! registry lookup + AQP execution + wire encoding + TCP) and writes
//! `results/BENCH_http.json` records `{threads, queries/s, p50/p99 ms}`
//! with a trend diff against the previous run.
//!
//! `--quick` shrinks the sweep for CI; the full run also measures a
//! reconnect-per-request variant (connection-setup overhead) at 4 threads.
//!
//! Every run ends with an **overload phase**: twice as many closed-loop
//! clients as the admission gate has permits hammer a capacity-capped
//! server, and the record `{offered_per_s, queries_per_s, shed_rate,
//! p99_ms}` (engine `overload_2x`) lands next to the healthy records —
//! the trend report then tracks graceful degradation, not just peak speed.
//!
//! …and a **connection-scale phase**: a child process (re-exec of this
//! binary with `--hold-connections N <addr>`) parks N idle keep-alive
//! connections on the epoll reactor while a hot 4-client subset keeps
//! querying from the parent. The record `{connections, queries_per_s,
//! p50_ms, p99_ms, rss_mb}` (engine `concurrent_connections`) tracks
//! sockets-per-box and what an idle armada costs the hot path. The child
//! exists because the box caps each process at ~20k fds: the server side
//! of the armada lives in the parent, the client side in the child.
//! `--connections N` overrides the armada size (default 10000, `--quick`
//! 2000).
//!
//! …and a **fleet phase**: a shard router in front of N worker *processes*
//! (re-execs of this binary with `--fleet-worker <dir>`), all booted from
//! one temp snapshot directory, swept over shard counts with 8 tenants
//! hash-balanced across shards. Workers run 2 executor threads with a
//! deterministic 3 ms injected delay, so throughput is concurrency-bound
//! (~N × threads/delay) and the records `fleet_{shards}` `{shards,
//! queries_per_s, p50_ms, p99_ms}` measure horizontal scaling honestly
//! even on a 1-core box. The phase asserts ≥ 1.6× the matched 1-shard
//! baseline for every multi-shard point.

use std::io::BufRead;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use restore_bench::{
    balanced_fleet_tenants, percentile, sealed_synthetic_snapshot, seed_fleet_snapshot_dir,
    serving_workload as workload, write_bench_json, HttpConnectionsRecord, HttpFleetRecord,
    HttpOverloadRecord, HttpRecord,
};
use restore_core::wire::QueryRequest;
use restore_core::SnapshotRegistry;
use restore_serve::router::{Fleet, FleetConfig, ShardConfig, WorkerSpec};
use restore_serve::{raise_fd_limit, HttpClient, ServeConfig, Server};
use restore_util::json::ToJson;

/// One file, four record shapes: the healthy sweep, the overload phase,
/// the connection-scale phase, and the fleet phase.
enum Record {
    Healthy(HttpRecord),
    Overload(HttpOverloadRecord),
    Connections(HttpConnectionsRecord),
    Fleet(HttpFleetRecord),
}

impl ToJson for Record {
    fn to_json(&self) -> String {
        match self {
            Record::Healthy(r) => r.to_json(),
            Record::Overload(r) => r.to_json(),
            Record::Connections(r) => r.to_json(),
            Record::Fleet(r) => r.to_json(),
        }
    }
}

/// Child mode: connect `n` keep-alive clients to `addr`, prime each with
/// one `/healthz` round trip so the server parks it in `KeepAliveIdle`,
/// report `held n` on stdout, then sit on the sockets until the parent
/// closes our stdin.
fn hold_connections(n: usize, addr: &str) -> ! {
    raise_fd_limit().expect("raise fd limit in holder");
    let addr: std::net::SocketAddr = addr.parse().expect("holder addr");
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        let mut client =
            HttpClient::connect(addr).unwrap_or_else(|e| panic!("holder connect {i}: {e}"));
        let (status, _) = client.get("/healthz").expect("prime keep-alive");
        assert_eq!(status, 200, "holder prime {i}");
        held.push(client);
    }
    println!("held {n}");
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
    drop(held);
    std::process::exit(0);
}

/// Resident set size of this process (the server process) in MiB, from
/// `/proc/self/status` VmRSS. 0.0 when unreadable (non-Linux).
fn rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// A numeric field out of the `event_loop` section of `/metrics`.
fn event_loop_metric(metrics_body: &str, key: &str) -> f64 {
    restore_util::json::parse(metrics_body)
        .and_then(|root| root.get("event_loop")?.get(key)?.as_f64())
        .unwrap_or_else(|| panic!("event_loop.{key} missing in {metrics_body}"))
}

/// Runs `per_thread` requests on each of `threads` keep-alive connections;
/// returns (queries/s, per-request latencies in ms).
fn run_clients(
    addr: std::net::SocketAddr,
    threads: usize,
    per_thread: usize,
    reconnect: bool,
) -> (f64, Vec<f64>) {
    let bodies: Arc<Vec<String>> = Arc::new(
        workload()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone(), i as u64).to_json())
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(threads * per_thread)));
    let mut handles = Vec::new();
    for t in 0..threads {
        let (bodies, barrier, latencies) = (
            Arc::clone(&bodies),
            Arc::clone(&barrier),
            Arc::clone(&latencies),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            barrier.wait();
            let mut local = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                if reconnect {
                    client = HttpClient::connect(addr).expect("reconnect");
                }
                let body = &bodies[(t + i) % bodies.len()];
                let started = Instant::now();
                let (status, response) = client
                    .post("/v1/synthetic/query", body)
                    .expect("query request");
                local.push(started.elapsed().as_secs_f64() * 1e3);
                assert_eq!(status, 200, "bench query failed: {response}");
            }
            latencies
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(local);
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let latencies = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    ((threads * per_thread) as f64 / elapsed, latencies)
}

/// Runs `per_thread` requests per tenant, one keep-alive client thread
/// pinned to each tenant (so the router's hash mapping spreads the threads
/// across shards exactly as the tenant list was balanced); returns
/// (queries/s, per-request latencies in ms).
fn run_fleet_clients(
    addr: std::net::SocketAddr,
    tenants: &[String],
    per_thread: usize,
) -> (f64, Vec<f64>) {
    let bodies: Arc<Vec<String>> = Arc::new(
        workload()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone(), i as u64).to_json())
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(tenants.len() + 1));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(tenants.len() * per_thread)));
    let mut handles = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let path = format!("/v1/{tenant}/query");
        let (bodies, barrier, latencies) = (
            Arc::clone(&bodies),
            Arc::clone(&barrier),
            Arc::clone(&latencies),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("fleet connect");
            barrier.wait();
            let mut local = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                let body = &bodies[(t + i) % bodies.len()];
                let started = Instant::now();
                let (status, response) = client.post(&path, body).expect("fleet query");
                local.push(started.elapsed().as_secs_f64() * 1e3);
                assert_eq!(status, 200, "fleet query failed: {response}");
            }
            latencies
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(local);
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("fleet client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let latencies = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    ((tenants.len() * per_thread) as f64 / elapsed, latencies)
}

/// Hammers `addr` with `threads` closed-loop clients that tolerate 429s
/// (shed requests are counted, checked for `Retry-After`, and immediately
/// followed by the next request — no client-side backoff, this *is* the
/// overload). Returns `(offered/s, answered-200/s, shed rate, ok latencies)`.
fn run_overload(
    addr: std::net::SocketAddr,
    threads: usize,
    per_thread: usize,
) -> (f64, f64, f64, Vec<f64>) {
    let bodies: Arc<Vec<String>> = Arc::new(
        workload()
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone(), i as u64).to_json())
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let tallies = Arc::new(Mutex::new((0usize, 0usize, Vec::new())));
    let mut handles = Vec::new();
    for t in 0..threads {
        let (bodies, barrier, tallies) = (
            Arc::clone(&bodies),
            Arc::clone(&barrier),
            Arc::clone(&tallies),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            barrier.wait();
            let (mut oks, mut sheds, mut local) = (0usize, 0usize, Vec::new());
            for i in 0..per_thread {
                let body = &bodies[(t + i) % bodies.len()];
                let started = Instant::now();
                let response = client
                    .request_full("POST", "/v1/synthetic/query", Some(body), &[])
                    .expect("overload request answers");
                match response.status {
                    200 => {
                        local.push(started.elapsed().as_secs_f64() * 1e3);
                        oks += 1;
                    }
                    429 => {
                        assert!(
                            response.retry_after().is_some(),
                            "every shed must carry Retry-After"
                        );
                        sheds += 1;
                    }
                    s => panic!("unexpected overload status {s}: {}", response.body),
                }
            }
            let mut tallies = tallies.lock().unwrap_or_else(|e| e.into_inner());
            tallies.0 += oks;
            tallies.1 += sheds;
            tallies.2.extend(local);
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("overload client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let (oks, sheds, latencies) = Arc::try_unwrap(tallies)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    let offered = (oks + sheds) as f64;
    (
        offered / elapsed,
        oks as f64 / elapsed,
        sheds as f64 / offered.max(1.0),
        latencies,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--hold-connections") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--hold-connections N <addr>");
        let addr = args.get(i + 2).expect("--hold-connections N <addr>");
        hold_connections(n, addr);
    }
    if let Some(i) = args.iter().position(|a| a == "--fleet-worker") {
        let dir = args.get(i + 1).expect("--fleet-worker <snapshot-dir>");
        restore_bench::run_fleet_worker_child(std::path::PathBuf::from(dir));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let connections_override: Option<usize> =
        args.iter().position(|a| a == "--connections").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--connections N")
        });
    let (thread_sweep, per_thread): (&[usize], usize) = if quick {
        (&[1, 2, 4], 30)
    } else {
        (&[1, 2, 4, 8], 150)
    };

    let snapshot = sealed_synthetic_snapshot(21, 21);
    // Warm every chain up front so the sweep measures serving, not
    // synthesis (the cold path is covered by the `serving` bench).
    for q in workload() {
        snapshot.execute(&q, 0).expect("warmup");
    }
    let registry = Arc::new(SnapshotRegistry::new());
    registry.publish("synthetic", snapshot);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut records = Vec::new();
    let mut healthy_p99 = 0.0f64;
    let mut summary = String::from("http serving (warm cache, keep-alive)");
    for &threads in thread_sweep {
        run_clients(addr, threads, per_thread / 3 + 1, false); // warmup
        let (qps, latencies) = run_clients(addr, threads, per_thread, false);
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
        healthy_p99 = p99;
        records.push(Record::Healthy(HttpRecord {
            bench: "http".into(),
            engine: "warm_keepalive".into(),
            threads,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
            p50_ms: p50,
            p99_ms: p99,
        }));
        summary.push_str(&format!(
            ", t{threads} {qps:.0} q/s (p50 {p50:.2}ms p99 {p99:.2}ms)"
        ));
    }
    if !quick {
        let (qps, latencies) = run_clients(addr, 4, per_thread, true);
        records.push(Record::Healthy(HttpRecord {
            bench: "http".into(),
            engine: "warm_reconnect".into(),
            threads: 4,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
            p50_ms: percentile(&latencies, 0.5),
            p99_ms: percentile(&latencies, 0.99),
        }));
        summary.push_str(&format!(", reconnect t4 {qps:.0} q/s"));
    }
    assert!(server.shutdown(), "healthy server must drain");

    // Overload phase: a server whose admission gate holds as many permits
    // as the top healthy concurrency, driven by twice as many closed-loop
    // clients — roughly 2x offered load. Warm-cache queries finish in
    // ~100 µs, far below the loopback request cycle, so the gate would
    // never bind; a deterministic 1 ms injected delay stands in for a
    // realistic per-query cost and makes the saturation real. The gate
    // must shed the excess with 429 + Retry-After while the admitted tail
    // stays sane.
    let capacity = *thread_sweep.last().expect("non-empty sweep");
    let overload_server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            max_in_flight: capacity,
            fault: Some(restore_serve::FaultConfig {
                seed: 0,
                window: (0, u64::MAX),
                delay_prob: 1.0,
                delay: std::time::Duration::from_millis(1),
                ..restore_serve::FaultConfig::default()
            }),
            ..ServeConfig::default()
        },
    )
    .expect("bind overload server");
    let clients = capacity * 2;
    run_overload(overload_server.local_addr(), clients, per_thread / 3 + 1); // warmup
    let (offered, ok_qps, shed_rate, ok_latencies) =
        run_overload(overload_server.local_addr(), clients, per_thread);
    let overload_p99 = percentile(&ok_latencies, 0.99);
    assert!(
        !ok_latencies.is_empty(),
        "the gate must still admit work under overload"
    );
    assert!(
        shed_rate > 0.0,
        "2x offered load against a bound gate must shed some requests"
    );
    records.push(Record::Overload(HttpOverloadRecord {
        bench: "http".into(),
        engine: "overload_2x".into(),
        threads: clients,
        hardware_threads: restore_bench::hardware_threads(),
        lane_width: restore_bench::lane_width(),
        target_feature: restore_bench::target_feature(),
        offered_per_s: offered,
        queries_per_s: ok_qps,
        shed_rate,
        p99_ms: overload_p99,
    }));
    summary.push_str(&format!(
        ", overload t{clients}/gate{capacity} offered {offered:.0}/s answered {ok_qps:.0}/s \
         shed {:.0}% (admitted p99 {overload_p99:.2}ms vs healthy {healthy_p99:.2}ms)",
        shed_rate * 100.0
    ));
    assert!(
        overload_server.shutdown(),
        "overloaded server must still drain"
    );

    // Connection-scale phase: a child process parks an armada of idle
    // keep-alive connections on the reactor, then a hot 4-client subset
    // queries from the parent. The phase measures what tens of thousands
    // of parked sockets cost the hot path (throughput, tail, RSS).
    let requested = connections_override.unwrap_or(if quick { 2_000 } else { 10_000 });
    let soft = raise_fd_limit().expect("raise fd limit");
    let connections = if soft < requested as u64 + 1024 {
        let clamped = soft.saturating_sub(1024) as usize;
        println!(
            "fd soft limit {soft} cannot hold {requested} server-side sockets; \
             clamping armada to {clamped}"
        );
        clamped
    } else {
        requested
    };
    let conn_server =
        Server::bind("127.0.0.1:0", registry, ServeConfig::default()).expect("bind armada server");
    let conn_addr = conn_server.local_addr();
    let mut child = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .arg("--hold-connections")
        .arg(connections.to_string())
        .arg(conn_addr.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn connection holder");
    let mut holder_out = std::io::BufReader::new(child.stdout.take().expect("holder stdout"));
    let mut line = String::new();
    holder_out.read_line(&mut line).expect("holder report");
    assert_eq!(
        line.trim(),
        format!("held {connections}"),
        "holder must park the full armada"
    );
    let mut probe = HttpClient::connect(conn_addr).expect("probe connect");
    let (status, metrics) = probe.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let open = event_loop_metric(&metrics, "open_connections");
    assert!(
        open >= connections as f64,
        "reactor must hold the armada: {open} open < {connections} parked"
    );
    run_clients(conn_addr, 4, per_thread / 3 + 1, false); // warmup
    let (qps, latencies) = run_clients(conn_addr, 4, per_thread, false);
    let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
    let rss = rss_mb();
    let (status, metrics) = probe.get("/metrics").expect("metrics after hot subset");
    assert_eq!(status, 200);
    let accepts = event_loop_metric(&metrics, "accepts");
    let wakeups = event_loop_metric(&metrics, "epoll_wakeups");
    let idle = event_loop_metric(&metrics, "keepalive_idle");
    records.push(Record::Connections(HttpConnectionsRecord {
        bench: "http".into(),
        engine: "concurrent_connections".into(),
        connections,
        hardware_threads: restore_bench::hardware_threads(),
        lane_width: restore_bench::lane_width(),
        target_feature: restore_bench::target_feature(),
        queries_per_s: qps,
        p50_ms: p50,
        p99_ms: p99,
        rss_mb: rss,
    }));
    summary.push_str(&format!(
        ", {connections} idle conns hot4 {qps:.0} q/s (p50 {p50:.2}ms p99 {p99:.2}ms, \
         rss {rss:.0} MiB, idle {idle:.0}, accepts {accepts:.0}, wakeups {wakeups:.0})"
    ));
    drop(child.stdin.take()); // holder sees stdin EOF, releases the armada
    let _ = child.wait();
    assert!(conn_server.shutdown(), "armada server must drain");

    // Fleet phase: router + N worker processes from one snapshot
    // directory, swept over shard counts. Workers are delay-dominated
    // (3 ms injected, 2 threads — see `fleet_worker_config`), so each
    // shard contributes a fixed ~threads/delay capacity and the sweep
    // measures horizontal scaling, not how N processes time-slice the
    // box's cores. shards == 1 is the matched baseline.
    let shard_sweep: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let fleet_per_thread = if quick { 40 } else { 120 };
    let tenants = balanced_fleet_tenants(2, *shard_sweep.last().expect("non-empty sweep"));
    let snapshot_dir =
        std::env::temp_dir().join(format!("restore_fleet_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    seed_fleet_snapshot_dir(&snapshot_dir, &tenants);
    let worker_spec = WorkerSpec {
        program: std::env::current_exe().expect("current exe"),
        args: vec![
            "--fleet-worker".to_string(),
            snapshot_dir.display().to_string(),
        ],
    };
    let mut fleet_baseline = 0.0f64;
    for &shards in shard_sweep {
        let fleet = Fleet::start(FleetConfig {
            shards: vec![
                ShardConfig {
                    addr: None,
                    worker: Some(worker_spec.clone()),
                };
                shards
            ],
            ..FleetConfig::default()
        })
        .expect("fleet start");
        let router = Server::bind(
            "127.0.0.1:0",
            Arc::new(SnapshotRegistry::new()),
            ServeConfig {
                fleet: Some(Arc::clone(&fleet)),
                workers: 16,
                ..ServeConfig::default()
            },
        )
        .expect("bind router");
        let router_addr = router.local_addr();
        run_fleet_clients(router_addr, &tenants, fleet_per_thread / 4 + 1); // warmup
        let (qps, latencies) = run_fleet_clients(router_addr, &tenants, fleet_per_thread);
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
        if shards == 1 {
            fleet_baseline = qps;
        } else {
            assert!(
                qps >= 1.6 * fleet_baseline,
                "fleet of {shards} must scale: {qps:.0} q/s < 1.6x the \
                 1-shard baseline {fleet_baseline:.0} q/s"
            );
        }
        records.push(Record::Fleet(HttpFleetRecord {
            bench: "http".into(),
            engine: format!("fleet_{shards}"),
            shards,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
            p50_ms: p50,
            p99_ms: p99,
        }));
        summary.push_str(&format!(
            ", fleet{shards} {qps:.0} q/s (p50 {p50:.2}ms p99 {p99:.2}ms{})",
            if shards == 1 {
                String::new()
            } else {
                format!(", {:.2}x baseline", qps / fleet_baseline.max(1e-9))
            }
        ));
        assert!(router.shutdown(), "router must drain");
        fleet.shutdown();
    }
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    println!("{summary}");
    write_bench_json("BENCH_http.json", &records);
}
