//! CI guard: asserts the build selected a real vector lane width. The
//! kernels fall back to lane width 1 when no SIMD target feature is
//! enabled — numerically identical but silently scalar, which would make
//! every perf record on that runner incomparable. Failing loudly here
//! catches a dead autovectorization path (e.g. a lost `target-cpu` flag)
//! before it poisons the bench trend.

fn main() {
    let (width, feature) = (restore_bench::lane_width(), restore_bench::target_feature());
    println!("kernel_smoke: lane_width={width} target_feature={feature}");
    assert!(
        width > 1,
        "scalar kernel fallback selected (target_feature={feature}) — \
         check the build's target-cpu/target-feature flags"
    );
    println!("kernel_smoke: OK");
}
