//! Prints every record of every `results/BENCH_*.json` — the consolidated
//! bench report CI runs after the smoke/bench steps so per-PR performance
//! is visible in the job log (the per-run *deltas* are printed by
//! `write_bench_json` when each bench writes its file; this binary shows
//! the absolute numbers the artifacts carry).

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let files = restore_bench::print_results_report(dir);
    println!("bench report: {files} bench file(s) under {dir}");
}
