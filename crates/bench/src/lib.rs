//! Shared setup for the Criterion benches: pre-built scenarios and trained
//! models so the hot loops measure exactly what the paper's timing figures
//! measure (Fig. 11: training; Fig. 12: completion per path) — plus the
//! machine-readable result records the benches drop under `results/` so
//! the perf trajectory is tracked across PRs.

use std::sync::Arc;

use restore_core::{
    CompleterConfig, CompletionModel, CompletionPath, ReStore, RestoreConfig, SchemaAnnotation,
    Snapshot, TrainConfig,
};
use restore_data::{
    apply_removal, generate_synthetic, BiasSpec, RemovalConfig, Scenario, SyntheticConfig,
};
use restore_db::{Agg, Query, QueryResult};
use restore_util::impl_to_json;
use restore_util::json::{parse, JsonValue, ToJson};

pub mod kernels;
pub mod sampling;

/// Hardware threads visible to this process — stamped into every bench
/// record so the trend report can flag comparisons between runs taken on
/// differently sized boxes (a 1-core CI container masks thread scaling).
pub fn hardware_threads() -> usize {
    restore_util::default_workers()
}

/// SIMD lane width the kernels were compiled for — stamped into every
/// bench record next to [`hardware_threads`], so the trend report can flag
/// comparisons between runs built for different vector widths (a scalar
/// fallback build would otherwise read as a perf regression).
pub fn lane_width() -> usize {
    restore_nn::lane::WIDTH
}

/// Target-feature label behind [`lane_width`] (e.g. `"avx512f"`,
/// `"scalar"`).
pub fn target_feature() -> String {
    restore_nn::lane::TARGET_FEATURE.to_string()
}

/// One machine-readable throughput measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Bench group, e.g. `"training_engines"`.
    pub bench: String,
    /// Engine / variant label, e.g. `"arena_parallel"`.
    pub engine: String,
    /// Worker threads the variant ran with (1 for single-threaded paths).
    pub workers: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Gradient steps per second (0 when not applicable).
    pub steps_per_s: f64,
    /// Sampled/trained tuples per second.
    pub tuples_per_s: f64,
}
impl_to_json!(BenchRecord {
    bench,
    engine,
    workers,
    hardware_threads,
    lane_width,
    target_feature,
    steps_per_s,
    tuples_per_s
});

/// One serving-throughput measurement (the `serving` bench).
#[derive(Clone, Debug)]
pub struct ServingRecord {
    /// Bench group, e.g. `"serving"`.
    pub bench: String,
    /// Variant label, e.g. `"warm_cache"`.
    pub engine: String,
    /// Client threads executing queries over the shared snapshot.
    pub threads: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Queries answered per second across all threads.
    pub queries_per_s: f64,
}
impl_to_json!(ServingRecord {
    bench,
    engine,
    threads,
    hardware_threads,
    lane_width,
    target_feature,
    queries_per_s
});

/// One HTTP serving measurement (the `http_bench` binary): throughput plus
/// tail latency over real sockets.
#[derive(Clone, Debug)]
pub struct HttpRecord {
    /// Bench group, e.g. `"http"`.
    pub bench: String,
    /// Variant label, e.g. `"warm_keepalive"`.
    pub engine: String,
    /// Client threads, each with its own keep-alive connection.
    pub threads: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Requests answered per second across all threads.
    pub queries_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}
impl_to_json!(HttpRecord {
    bench,
    engine,
    threads,
    hardware_threads,
    lane_width,
    target_feature,
    queries_per_s,
    p50_ms,
    p99_ms
});

/// One HTTP overload measurement (the `http_bench` binary): offered load
/// past capacity, what the admission gate admitted vs shed, and the tail
/// latency of the *admitted* requests — the "degrades gracefully" record
/// next to [`HttpRecord`]'s "how fast when healthy".
#[derive(Clone, Debug)]
pub struct HttpOverloadRecord {
    /// Bench group, e.g. `"http"`.
    pub bench: String,
    /// Variant label, e.g. `"overload_2x"`.
    pub engine: String,
    /// Client threads driving the overload.
    pub threads: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Requests offered per second (attempted, before shedding).
    pub offered_per_s: f64,
    /// Requests answered 200 per second under that offered load.
    pub queries_per_s: f64,
    /// Fraction of offered requests shed with 429.
    pub shed_rate: f64,
    /// 99th-percentile latency of the *admitted* requests, milliseconds.
    pub p99_ms: f64,
}
impl_to_json!(HttpOverloadRecord {
    bench,
    engine,
    threads,
    hardware_threads,
    lane_width,
    target_feature,
    offered_per_s,
    queries_per_s,
    shed_rate,
    p99_ms
});

/// One HTTP connection-scale measurement (the `http_bench` binary): a
/// large armada of idle keep-alive connections parked on the epoll
/// reactor while a hot subset keeps querying — "how many sockets per box"
/// next to [`HttpRecord`]'s "how fast per socket".
#[derive(Clone, Debug)]
pub struct HttpConnectionsRecord {
    /// Bench group, e.g. `"http"`.
    pub bench: String,
    /// Variant label, `"concurrent_connections"`.
    pub engine: String,
    /// Idle keep-alive connections held open for the whole phase.
    pub connections: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Hot-subset requests answered per second while the armada idles.
    pub queries_per_s: f64,
    /// Median hot-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile hot-request latency, milliseconds.
    pub p99_ms: f64,
    /// Server-process resident set size with the armada parked, MiB.
    pub rss_mb: f64,
}
impl_to_json!(HttpConnectionsRecord {
    bench,
    engine,
    connections,
    hardware_threads,
    lane_width,
    target_feature,
    queries_per_s,
    p50_ms,
    p99_ms,
    rss_mb
});

/// One fleet-throughput measurement (the `http_bench` binary's fleet
/// phase): a shard router in front of `shards` worker processes, all
/// booted from one snapshot directory — "how many boxes wide" next to
/// [`HttpRecord`]'s "how fast per box". `shards == 1` is the matched
/// baseline the scaling ratio is read against.
#[derive(Clone, Debug)]
pub struct HttpFleetRecord {
    /// Bench group, e.g. `"http"`.
    pub bench: String,
    /// Variant label, `"fleet"`.
    pub engine: String,
    /// Worker processes behind the router.
    pub shards: usize,
    /// Hardware threads of the machine the record was taken on.
    pub hardware_threads: usize,
    /// SIMD lane width the kernels were compiled for.
    pub lane_width: usize,
    /// Target-feature label behind the lane width.
    pub target_feature: String,
    /// Requests answered per second through the router, all tenants.
    pub queries_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}
impl_to_json!(HttpFleetRecord {
    bench,
    engine,
    shards,
    hardware_threads,
    lane_width,
    target_feature,
    queries_per_s,
    p50_ms,
    p99_ms
});

/// Nearest-rank percentile (`p` in `[0, 1]`) of an unsorted sample, in the
/// sample's own unit. Returns 0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[rank]
}

/// Writes bench records as a JSON array to `results/<file>` at the
/// workspace root (the benches run with the package dir as cwd), then
/// prints a **trend report**: per record, the delta of every numeric field
/// against the matching record of the previous run's file.
pub fn write_bench_json<T: ToJson>(file: &str, records: &[T]) {
    write_bench_json_to(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"),
        file,
        records,
    )
}

/// [`write_bench_json`] against an explicit results directory, which is
/// created (including parents) when missing — a fresh checkout or a wiped
/// `results/` must never make a bench run error out.
pub fn write_bench_json_to<T: ToJson>(dir: &str, file: &str, records: &[T]) {
    let path = format!("{dir}/{file}");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir}: {e}");
        return;
    }
    let previous = std::fs::read_to_string(&path).ok().and_then(|s| parse(&s));
    let body = records.to_json();
    match std::fs::write(&path, format!("{body}\n")) {
        Ok(()) => println!("wrote {}", path),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    let current = parse(&body).expect("records serialize to valid JSON");
    match previous {
        Some(prev) => print_trend(file, &prev, &current),
        None => println!("trend {file}: no previous run to compare against"),
    }
}

/// Fields that describe the machine/build *context* of a run rather than
/// identifying or measuring a record: they never enter record identity
/// (the same logical record must pair up across boxes and builds), never
/// get a delta, but a mismatch against the previous run puts a warning on
/// the comparison.
const CONTEXT_FIELDS: [&str; 3] = ["hardware_threads", "lane_width", "target_feature"];

fn is_context_field(key: &str) -> bool {
    CONTEXT_FIELDS.contains(&key)
}

/// True for the fields that *identify* a record (as opposed to measuring
/// it): strings, bools, and the integer-valued axis knobs — context
/// fields excluded.
fn is_identity_field(key: &str, value: &JsonValue) -> bool {
    !is_context_field(key)
        && (matches!(value, JsonValue::Str(_) | JsonValue::Bool(_))
            || matches!(
                key,
                "workers" | "threads" | "batch" | "seed" | "connections" | "shards"
            ))
}

/// Context-field value rendered for the mismatch warning (numbers without
/// a fraction, strings verbatim).
fn render_context(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Bool(b) => format!("{b}"),
        _ => "?".to_string(),
    }
}

/// Record identity = all identity fields, rendered.
fn record_key(rec: &JsonValue) -> String {
    rec.fields()
        .iter()
        .filter(|(k, v)| is_identity_field(k, v))
        .map(|(k, v)| match v {
            JsonValue::Str(s) => format!("{k}={s}"),
            JsonValue::Bool(b) => format!("{k}={b}"),
            JsonValue::Num(n) => format!("{k}={n}"),
            _ => format!("{k}=?"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Prints per-record numeric deltas between two parsed bench files —
/// the cross-PR perf trajectory in one glance. Records are matched on
/// their identity fields; unmatched records are reported as new/dropped.
pub fn print_trend(label: &str, prev: &JsonValue, cur: &JsonValue) {
    let (Some(prev_recs), Some(cur_recs)) = (prev.as_array(), cur.as_array()) else {
        println!("trend {label}: previous file not comparable");
        return;
    };
    let mut seen_prev = vec![false; prev_recs.len()];
    for rec in cur_recs {
        let key = record_key(rec);
        let old = prev_recs.iter().enumerate().find_map(|(i, p)| {
            (record_key(p) == key).then(|| {
                seen_prev[i] = true;
                p
            })
        });
        let mut parts = Vec::new();
        for (k, v) in rec.fields() {
            // Context fields (machine size, kernel lane width) describe
            // the run, not the measurement — they never get a delta, but a
            // mismatch against the previous record flags the comparison
            // below.
            if is_context_field(k) {
                continue;
            }
            let (Some(new), false) = (v.as_f64(), is_identity_field(k, v)) else {
                continue;
            };
            match old.and_then(|o| o.get(k)).and_then(JsonValue::as_f64) {
                Some(oldv) if oldv != 0.0 => {
                    let pct = (new - oldv) / oldv * 100.0;
                    parts.push(format!("{k} {oldv:.1} → {new:.1} ({pct:+.1}%)"));
                }
                _ => parts.push(format!("{k} {new:.1} (new)")),
            }
        }
        for ctx in CONTEXT_FIELDS {
            let rendered = |r: &JsonValue| r.get(ctx).map(render_context);
            if let (Some(prev_v), Some(cur_v)) = (old.and_then(rendered), rendered(rec)) {
                if prev_v != cur_v {
                    parts.push(format!(
                        "WARNING: {ctx} {prev_v} → {cur_v} \
                         (different machine/build context, deltas not comparable)"
                    ));
                }
            }
        }
        if !parts.is_empty() {
            println!("trend {label}: {key}: {}", parts.join(", "));
        }
    }
    for (i, p) in prev_recs.iter().enumerate() {
        if !seen_prev[i] {
            println!("trend {label}: {} dropped from this run", record_key(p));
        }
    }
}

/// Prints every record of every `BENCH_*.json` under `dir` — the
/// consolidated bench report CI runs so per-PR perf numbers are visible in
/// the job log without checking out the branch. Returns the number of
/// bench files reported.
pub fn print_results_report(dir: &str) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        println!("bench report: no results directory at {dir}");
        return 0;
    };
    let mut files: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    files.sort();
    for name in &files {
        let parsed = std::fs::read_to_string(format!("{dir}/{name}"))
            .ok()
            .and_then(|s| parse(&s));
        let Some(records) = parsed.as_ref().and_then(JsonValue::as_array) else {
            println!("bench report {name}: unreadable");
            continue;
        };
        for rec in records {
            let measurements: Vec<String> = rec
                .fields()
                .iter()
                // Context fields describe the machine/build, not the
                // measurement — excluded here exactly as in the trend
                // printer's delta loop.
                .filter(|(k, v)| !is_identity_field(k, v) && !is_context_field(k))
                .filter_map(|(k, v)| v.as_f64().map(|n| format!("{k} {n:.1}")))
                .collect();
            println!(
                "bench report {name}: {}: {}",
                record_key(rec),
                measurements.join(", ")
            );
        }
    }
    files.len()
}

/// A sealed snapshot over the synthetic `ta → tb` schema with every
/// [`serving_workload`] model trained and warmed — the shared fixture of
/// the HTTP smoke binary and the HTTP serving tests. `data_seed` controls
/// the generated data and removal; `serve_seed` controls sealed synthesis,
/// so two snapshots over the same data with different serve seeds give the
/// hot-swap tests observably different (but individually deterministic)
/// responses.
pub fn sealed_synthetic_snapshot(data_seed: u64, serve_seed: u64) -> Arc<Snapshot> {
    let db = generate_synthetic(
        &SyntheticConfig {
            predictability: 0.9,
            n_parent: 150,
            ..Default::default()
        },
        data_seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = data_seed;
    let sc = apply_removal(&db, &removal);
    let cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 3,
            min_steps: 60,
            hidden: vec![24, 24],
            max_train_rows: 2_000,
            workers: 1,
            ..TrainConfig::default()
        },
        completer: CompleterConfig {
            workers: 1,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    rs.train(data_seed).expect("train");
    for q in serving_workload() {
        rs.ensure_query_models(&q.tables, data_seed)
            .expect("ensure");
    }
    Arc::new(rs.seal(serve_seed))
}

/// Tenant names balanced over `classes` FNV-1a shard classes: exactly
/// `per_class` tenants hash to each value of `fnv1a64(name) % classes`.
/// Any shard count that divides `classes` partitions those classes
/// evenly, so one tenant list serves a whole shard sweep (e.g. 8 tenants
/// balanced over 4 classes are also 4-per-shard at 2 shards and trivially
/// balanced at 1) — fleet scaling measurements then never confound hash
/// skew with shard count.
pub fn balanced_fleet_tenants(per_class: usize, classes: usize) -> Vec<String> {
    let mut buckets = vec![0usize; classes];
    let mut tenants = Vec::with_capacity(per_class * classes);
    let mut i = 0u64;
    while tenants.len() < per_class * classes {
        let name = format!("tenant-{i}");
        let class = (restore_util::fnv1a64(name.as_bytes()) % classes as u64) as usize;
        if buckets[class] < per_class {
            buckets[class] += 1;
            tenants.push(name);
        }
        i += 1;
    }
    tenants
}

/// Seeds a fleet snapshot directory: one sealed synthetic snapshot
/// (trained once) saved as version 1 under every tenant, so seeding N
/// tenants is serialization-bound, not training-bound. Every fleet worker
/// boot-scans this directory and serves all tenants; which shard actually
/// *receives* a tenant's requests is the router's hash mapping.
pub fn seed_fleet_snapshot_dir(dir: &std::path::Path, tenants: &[String]) {
    let snapshot = sealed_synthetic_snapshot(7, 1);
    let store = restore_serve::SnapshotStore::new(dir);
    for tenant in tenants {
        store
            .save_version(tenant, 1, &snapshot)
            .expect("seed fleet snapshot");
    }
}

/// The worker-side [`ServeConfig`](restore_serve::ServeConfig) of the
/// fleet bench/smoke harnesses: boot from `snapshot_dir`, two executor
/// threads, and a deterministic 3 ms injected delay on every request. The
/// delay makes fleet scaling *concurrency*-bound instead of core-bound —
/// each worker answers ~(threads / delay) q/s regardless of host cores —
/// so N healthy shards measure ~N× one shard even on a 1-core CI box
/// where N busy processes would otherwise just time-slice one core.
pub fn fleet_worker_config(snapshot_dir: std::path::PathBuf) -> restore_serve::ServeConfig {
    restore_serve::ServeConfig {
        snapshot_dir: Some(snapshot_dir),
        workers: 2,
        fault: Some(restore_serve::FaultConfig {
            seed: 0,
            window: (0, u64::MAX),
            delay_prob: 1.0,
            delay: std::time::Duration::from_millis(3),
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Child-process entry point shared by the bench binaries' worker modes
/// (`http_bench --fleet-worker`, `router_smoke --worker`): bind a fleet
/// worker on an ephemeral port, print the address line the fleet spawner
/// parses, serve until stdin reaches EOF (parent drop or death), then
/// drain and exit.
pub fn run_fleet_worker_child(snapshot_dir: std::path::PathBuf) -> ! {
    use std::io::Read;
    let registry = Arc::new(restore_core::SnapshotRegistry::new());
    let server =
        restore_serve::Server::bind("127.0.0.1:0", registry, fleet_worker_config(snapshot_dir))
            .expect("fleet worker bind");
    println!("fleet worker listening on {}", server.local_addr());
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    server.shutdown();
    std::process::exit(0);
}

/// Training configuration used by the timing benches (matches the
/// evaluation harness defaults).
pub fn bench_train_config(ssar: bool) -> TrainConfig {
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 256,
        hidden: vec![48, 48],
        embed_dim: 8,
        max_train_rows: 8_000,
        ..TrainConfig::default()
    };
    if ssar {
        cfg.ssar()
    } else {
        cfg
    }
}

/// The standard housing benchmark scenario (H1-style: price-biased
/// apartment removal at keep 40% / correlation 40%).
pub fn housing_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::housing::generate_housing(
        &restore_data::housing::HousingConfig::scaled(scale),
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.4, 0.4);
    removal.tf_keep_rate = 0.3;
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// The standard movies benchmark scenario (M1-style).
pub fn movies_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::movies::generate_movies(
        &restore_data::movies::MoviesConfig::scaled(scale),
        seed,
    );
    let mut removal =
        RemovalConfig::new(BiasSpec::continuous("movie", "production_year"), 0.4, 0.4);
    removal.tf_keep_rate = 0.2;
    removal.cascade = vec![
        "movie_company".to_string(),
        "movie_actor".to_string(),
        "movie_director".to_string(),
    ];
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// Annotation for a scenario's incomplete tables.
pub fn annotation_of(sc: &Scenario) -> SchemaAnnotation {
    SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str))
}

/// Trains the first viable completion path for the scenario's biased table.
pub fn trained_model(sc: &Scenario, ssar: bool, seed: u64) -> CompletionModel {
    let ann = annotation_of(sc);
    let paths = restore_core::enumerate_paths(&sc.incomplete, &ann, &sc.bias.table, 5);
    for p in paths {
        if let Ok(m) =
            CompletionModel::train(&sc.incomplete, &ann, p, &bench_train_config(ssar), seed)
        {
            return m;
        }
    }
    panic!("no trainable path for {}", sc.bias.table);
}

/// The serving query mix over the synthetic `ta → tb` schema: repeated
/// shapes (cache reuse) and distinct shapes, like a dashboard hammering
/// one database. Shared by the `serving` bench, the `serve_smoke` CI bin
/// and the concurrent-serving test suite, so they all check the same
/// workload.
pub fn serving_workload() -> Vec<Query> {
    vec![
        Query::new(["tb"]).aggregate(Agg::CountStar),
        Query::new(["ta", "tb"]).aggregate(Agg::CountStar),
        Query::new(["ta", "tb"])
            .group_by(["b"])
            .aggregate(Agg::CountStar),
        Query::new(["tb"]).group_by(["b"]).aggregate(Agg::CountStar),
        Query::new(["ta"]).aggregate(Agg::CountStar),
    ]
}

/// Bit-stable rendering of a query result (group keys + f64 bit patterns)
/// — the unit of the serial-vs-concurrent equality checks.
pub fn result_fingerprint(r: &QueryResult) -> String {
    let mut out = String::new();
    for (key, vals) in r.groups() {
        out.push_str(&format!("{key:?}:"));
        for v in vals {
            out.push_str(&format!("{:016x},", v.to_bits()));
        }
        out.push(';');
    }
    out
}

/// A short housing path used by micro-benches.
pub fn housing_path(sc: &Scenario) -> CompletionPath {
    CompletionPath::from_tables(
        &sc.incomplete,
        &["neighborhood".to_string(), "apartment".to_string()],
    )
    .expect("housing path")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_matches_records_on_identity_fields() {
        let prev = parse(
            r#"[{"bench":"training_engines","engine":"arena_parallel","workers":2,"steps_per_s":100.0,"tuples_per_s":25600.0},
                {"bench":"training_engines","engine":"gone","workers":1,"steps_per_s":5.0,"tuples_per_s":10.0}]"#,
        )
        .unwrap();
        let cur = parse(
            r#"[{"bench":"training_engines","engine":"arena_parallel","workers":2,"steps_per_s":110.0,"tuples_per_s":28160.0},
                {"bench":"serving","engine":"warm_cache","threads":4,"queries_per_s":1234.5}]"#,
        )
        .unwrap();
        let recs = cur.as_array().unwrap();
        // Same identity → matched; measurement fields excluded from keys.
        assert_eq!(
            record_key(&recs[0]),
            record_key(&prev.as_array().unwrap()[0])
        );
        assert!(record_key(&recs[1]).contains("threads=4"));
        assert!(!record_key(&recs[0]).contains("steps_per_s"));
        // Smoke the printer over matched, new and dropped records.
        print_trend("TEST.json", &prev, &cur);
    }

    #[test]
    fn trend_flags_cross_core_count_comparisons() {
        // Matched records taken on different hardware_threads must carry a
        // warning; equal core counts must not, and hardware_threads never
        // appears as a delta'd measurement.
        let prev = parse(
            r#"[{"bench":"serving","engine":"warm_cache","threads":4,"hardware_threads":1,"queries_per_s":100.0}]"#,
        )
        .unwrap();
        let same = parse(
            r#"[{"bench":"serving","engine":"warm_cache","threads":4,"hardware_threads":1,"queries_per_s":110.0}]"#,
        )
        .unwrap();
        let moved = parse(
            r#"[{"bench":"serving","engine":"warm_cache","threads":4,"hardware_threads":8,"queries_per_s":900.0}]"#,
        )
        .unwrap();
        // Identity matching ignores hardware_threads (records still pair up).
        assert_eq!(
            record_key(&prev.as_array().unwrap()[0]),
            record_key(&moved.as_array().unwrap()[0])
        );
        assert!(!record_key(&prev.as_array().unwrap()[0]).contains("hardware_threads"));
        // Smoke the printer over both shapes.
        print_trend("TEST_same_box.json", &prev, &same);
        print_trend("TEST_new_box.json", &prev, &moved);
    }

    #[test]
    fn trend_flags_cross_lane_width_comparisons() {
        // lane_width / target_feature are context fields like
        // hardware_threads: excluded from record identity (a scalar CI
        // build still pairs with a vector build of the same record, so the
        // warning can fire), never delta'd, mismatches warned.
        let prev = parse(
            r#"[{"bench":"k","kernel":"matmul","lane_width":16,"target_feature":"avx512f","hardware_threads":8,"gmacs_per_s":25.0}]"#,
        )
        .unwrap();
        let moved = parse(
            r#"[{"bench":"k","kernel":"matmul","lane_width":1,"target_feature":"scalar","hardware_threads":8,"gmacs_per_s":3.0}]"#,
        )
        .unwrap();
        let key = record_key(&prev.as_array().unwrap()[0]);
        assert_eq!(key, record_key(&moved.as_array().unwrap()[0]));
        assert!(!key.contains("lane_width") && !key.contains("target_feature"));
        print_trend("TEST_new_lanes.json", &prev, &moved);
    }

    #[test]
    fn write_bench_json_creates_missing_results_dir() {
        // Fresh-checkout regression: the results dir (and parents) must be
        // created on demand, never be a precondition.
        let dir = std::env::temp_dir().join(format!(
            "restore-bench-fresh-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("deep").join("results");
        let nested = nested.to_str().expect("utf-8 temp path");
        let rec = HttpRecord {
            bench: "http".into(),
            engine: "warm_keepalive".into(),
            threads: 2,
            hardware_threads: hardware_threads(),
            lane_width: lane_width(),
            target_feature: target_feature(),
            queries_per_s: 100.0,
            p50_ms: 1.5,
            p99_ms: 9.0,
        };
        write_bench_json_to(nested, "BENCH_test.json", std::slice::from_ref(&rec));
        let written =
            std::fs::read_to_string(format!("{nested}/BENCH_test.json")).expect("file written");
        let parsed = parse(&written).expect("valid JSON");
        assert_eq!(
            parsed.as_array().unwrap()[0]
                .get("p99_ms")
                .and_then(JsonValue::as_f64),
            Some(9.0)
        );
        // Second write diffs against the first (smoke the trend path) and
        // the consolidated report sees the file.
        write_bench_json_to(nested, "BENCH_test.json", &[rec]);
        assert_eq!(print_results_report(nested), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.5), 51.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn serving_record_serializes_requested_fields() {
        let rec = ServingRecord {
            bench: "serving".into(),
            engine: "warm_cache".into(),
            threads: 8,
            hardware_threads: hardware_threads(),
            lane_width: lane_width(),
            target_feature: target_feature(),
            queries_per_s: 42.5,
        };
        let j = rec.to_json();
        assert!(j.contains("\"threads\":8"));
        assert!(j.contains("\"queries_per_s\":42.5"));
    }
}
