//! Shared setup for the Criterion benches: pre-built scenarios and trained
//! models so the hot loops measure exactly what the paper's timing figures
//! measure (Fig. 11: training; Fig. 12: completion per path).

use restore_core::{CompletionModel, CompletionPath, SchemaAnnotation, TrainConfig};
use restore_data::{apply_removal, BiasSpec, RemovalConfig, Scenario};

/// Training configuration used by the timing benches (matches the
/// evaluation harness defaults).
pub fn bench_train_config(ssar: bool) -> TrainConfig {
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 256,
        hidden: vec![48, 48],
        embed_dim: 8,
        max_train_rows: 8_000,
        ..TrainConfig::default()
    };
    if ssar {
        cfg.ssar()
    } else {
        cfg
    }
}

/// The standard housing benchmark scenario (H1-style: price-biased
/// apartment removal at keep 40% / correlation 40%).
pub fn housing_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::housing::generate_housing(
        &restore_data::housing::HousingConfig::scaled(scale),
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.4, 0.4);
    removal.tf_keep_rate = 0.3;
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// The standard movies benchmark scenario (M1-style).
pub fn movies_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::movies::generate_movies(
        &restore_data::movies::MoviesConfig::scaled(scale),
        seed,
    );
    let mut removal =
        RemovalConfig::new(BiasSpec::continuous("movie", "production_year"), 0.4, 0.4);
    removal.tf_keep_rate = 0.2;
    removal.cascade = vec![
        "movie_company".to_string(),
        "movie_actor".to_string(),
        "movie_director".to_string(),
    ];
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// Annotation for a scenario's incomplete tables.
pub fn annotation_of(sc: &Scenario) -> SchemaAnnotation {
    SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str))
}

/// Trains the first viable completion path for the scenario's biased table.
pub fn trained_model(sc: &Scenario, ssar: bool, seed: u64) -> CompletionModel {
    let ann = annotation_of(sc);
    let paths = restore_core::enumerate_paths(&sc.incomplete, &ann, &sc.bias.table, 5);
    for p in paths {
        if let Ok(m) =
            CompletionModel::train(&sc.incomplete, &ann, p, &bench_train_config(ssar), seed)
        {
            return m;
        }
    }
    panic!("no trainable path for {}", sc.bias.table);
}

/// A short housing path used by micro-benches.
pub fn housing_path(sc: &Scenario) -> CompletionPath {
    CompletionPath::from_tables(
        &sc.incomplete,
        &["neighborhood".to_string(), "apartment".to_string()],
    )
    .expect("housing path")
}
