//! Shared setup for the Criterion benches: pre-built scenarios and trained
//! models so the hot loops measure exactly what the paper's timing figures
//! measure (Fig. 11: training; Fig. 12: completion per path) — plus the
//! machine-readable result records the benches drop under `results/` so
//! the perf trajectory is tracked across PRs.

use restore_core::{CompletionModel, CompletionPath, SchemaAnnotation, TrainConfig};
use restore_data::{apply_removal, BiasSpec, RemovalConfig, Scenario};
use restore_util::impl_to_json;
use restore_util::json::ToJson;

/// One machine-readable throughput measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Bench group, e.g. `"training_engines"`.
    pub bench: String,
    /// Engine / variant label, e.g. `"arena_parallel"`.
    pub engine: String,
    /// Worker threads the variant ran with (1 for single-threaded paths).
    pub workers: usize,
    /// Gradient steps per second (0 when not applicable).
    pub steps_per_s: f64,
    /// Sampled/trained tuples per second.
    pub tuples_per_s: f64,
}
impl_to_json!(BenchRecord {
    bench,
    engine,
    workers,
    steps_per_s,
    tuples_per_s
});

/// Writes bench records as a JSON array to `results/<file>` at the
/// workspace root (the benches run with the package dir as cwd).
pub fn write_bench_json(file: &str, records: &[BenchRecord]) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let path = format!("{dir}/{file}");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir}: {e}");
        return;
    }
    let body = records.to_json();
    match std::fs::write(&path, format!("{body}\n")) {
        Ok(()) => println!("wrote {}", path),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Training configuration used by the timing benches (matches the
/// evaluation harness defaults).
pub fn bench_train_config(ssar: bool) -> TrainConfig {
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 256,
        hidden: vec![48, 48],
        embed_dim: 8,
        max_train_rows: 8_000,
        ..TrainConfig::default()
    };
    if ssar {
        cfg.ssar()
    } else {
        cfg
    }
}

/// The standard housing benchmark scenario (H1-style: price-biased
/// apartment removal at keep 40% / correlation 40%).
pub fn housing_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::housing::generate_housing(
        &restore_data::housing::HousingConfig::scaled(scale),
        seed,
    );
    let mut removal = RemovalConfig::new(BiasSpec::continuous("apartment", "price"), 0.4, 0.4);
    removal.tf_keep_rate = 0.3;
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// The standard movies benchmark scenario (M1-style).
pub fn movies_scenario(scale: f64, seed: u64) -> Scenario {
    let complete = restore_data::movies::generate_movies(
        &restore_data::movies::MoviesConfig::scaled(scale),
        seed,
    );
    let mut removal =
        RemovalConfig::new(BiasSpec::continuous("movie", "production_year"), 0.4, 0.4);
    removal.tf_keep_rate = 0.2;
    removal.cascade = vec![
        "movie_company".to_string(),
        "movie_actor".to_string(),
        "movie_director".to_string(),
    ];
    removal.seed = seed;
    apply_removal(&complete, &removal)
}

/// Annotation for a scenario's incomplete tables.
pub fn annotation_of(sc: &Scenario) -> SchemaAnnotation {
    SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str))
}

/// Trains the first viable completion path for the scenario's biased table.
pub fn trained_model(sc: &Scenario, ssar: bool, seed: u64) -> CompletionModel {
    let ann = annotation_of(sc);
    let paths = restore_core::enumerate_paths(&sc.incomplete, &ann, &sc.bias.table, 5);
    for p in paths {
        if let Ok(m) =
            CompletionModel::train(&sc.incomplete, &ann, p, &bench_train_config(ssar), seed)
        {
            return m;
        }
    }
    panic!("no trainable path for {}", sc.bias.table);
}

/// A short housing path used by micro-benches.
pub fn housing_path(sc: &Scenario) -> CompletionPath {
    CompletionPath::from_tables(
        &sc.incomplete,
        &["neighborhood".to_string(), "apartment".to_string()],
    )
    .expect("housing path")
}
