//! The sampling-engine comparison shared by the `completion` criterion
//! bench and the `sampling_bench` CI binary: iterative forward sampling of
//! the same MADE model through (a) a single-row tape-driven loop (the
//! seed's inference path), (b) the batched no-grad engine with the
//! full-trunk recompute per attribute (the PR 1 engine, now the escape
//! hatch), (c) the batched engine on the **band-incremental sweep** (the
//! default — only the newly needed hidden-degree band is recomputed per
//! attribute), and (d) the sweep fanned out over the worker pool the way
//! `Completer` runs it. Writes `results/BENCH_completion.json` with a
//! trend diff against the previous run; the `batched_nograd` record keeps
//! its identity across PRs, so the sweep's old-vs-new delta shows up in
//! the trend report.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use restore_nn::{
    sample_categorical, AttrSpec, InferenceSession, Made, MadeConfig, ParamStore, Tape,
};

use crate::{hardware_threads, write_bench_json, BenchRecord};

/// The shared fixture: a housing-shaped MADE model plus a 256-row batch
/// with the first two attributes given as evidence.
pub struct SamplingBench {
    made: Made,
    /// Same weights, band-incremental sweep disabled.
    made_full: Made,
    store: ParamStore,
    base: Vec<Vec<u32>>,
    n_attrs: usize,
    pub n_rows: usize,
    pub start_attr: usize,
}

impl Default for SamplingBench {
    fn default() -> Self {
        Self::new()
    }
}

impl SamplingBench {
    pub fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let cards = [13usize, 25, 9, 25, 4, 5];
        let attrs: Vec<AttrSpec> = cards.iter().map(|&card| AttrSpec::new(card, 8)).collect();
        let made = Made::new(
            MadeConfig::new(attrs).with_hidden(vec![64, 64]),
            &mut store,
            &mut rng,
        );
        let mut made_full = made.clone();
        made_full.set_incremental_sweep(false);
        let n_rows = 256usize;
        let base: Vec<Vec<u32>> = cards
            .iter()
            .map(|&card| (0..n_rows as u32).map(|r| r % card as u32).collect())
            .collect();
        Self {
            made,
            made_full,
            store,
            base,
            n_attrs: cards.len(),
            n_rows,
            start_attr: 2,
        }
    }

    /// (a) Single-row, tape-driven: per row, per attribute, record a full
    /// tape forward and sample from the logits (what the seed's
    /// `Made::logits` did for every conditional).
    pub fn sample_single_row_tape(&self, rng: &mut StdRng) -> Vec<Vec<u32>> {
        let mut toks = self.base.clone();
        for r in 0..self.n_rows {
            for attr in self.start_attr..self.n_attrs {
                let cols: Vec<Arc<Vec<u32>>> = toks.iter().map(|t| Arc::new(vec![t[r]])).collect();
                let mut tape = Tape::new();
                let out = self.made.forward(&mut tape, &self.store, &cols, None);
                let dist = self.made.layout().dist(tape.value(out).row(0), attr);
                toks[attr][r] = sample_categorical(&dist, rng);
            }
        }
        toks
    }

    /// Batched no-grad engine over a caller-warm session (the deployment
    /// shape — `Completer` keeps one session warm per worker). `sweep`
    /// picks the band-incremental engine or the full-trunk recompute.
    pub fn sample_batched(
        &self,
        session: &mut InferenceSession,
        sweep: bool,
        rng: &mut StdRng,
    ) -> Vec<Arc<Vec<u32>>> {
        let made = if sweep { &self.made } else { &self.made_full };
        let mut cols: Vec<Arc<Vec<u32>>> = self.base.iter().map(|t| Arc::new(t.clone())).collect();
        made.sample_range_in(
            session,
            &self.store,
            &mut cols,
            None,
            self.start_attr,
            self.n_attrs,
            &[],
            rng,
        );
        cols
    }

    /// (d) Batched + parallel: batches of B rows fanned out over warm
    /// per-worker sessions, one derived RNG stream per batch — exactly the
    /// `Completer` wiring.
    pub fn sample_batched_parallel(
        &self,
        sessions: &mut [InferenceSession],
        seed: u64,
    ) -> Vec<Vec<Arc<Vec<u32>>>> {
        let batch_size = 64usize;
        let chunks: Vec<(usize, Vec<usize>)> = (0..self.n_rows)
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .enumerate()
            .map(|(k, c)| (k * batch_size, c.to_vec()))
            .collect();
        restore_util::parallel_map_with(chunks, sessions, |session, (offset, rows)| {
            let mut rng = StdRng::seed_from_u64(restore_util::derive_seed(seed, *offset as u64));
            let mut cols: Vec<Arc<Vec<u32>>> = self
                .base
                .iter()
                .map(|t| Arc::new(rows.iter().map(|&r| t[r]).collect::<Vec<u32>>()))
                .collect();
            self.made.sample_range_in(
                session,
                &self.store,
                &mut cols,
                None,
                self.start_attr,
                self.n_attrs,
                &[],
                &mut rng,
            );
            cols
        })
    }

    /// Times every engine, prints the tuples/s summary (with the sweep's
    /// old-vs-new speedup), and writes `results/BENCH_completion.json`
    /// plus the trend diff. `quick` shrinks the repetition counts for CI.
    pub fn measure_and_write(&self, quick: bool) {
        let (reps_single, reps_batched) = if quick { (1, 8) } else { (3, 20) };
        fn time_of(mut f: impl FnMut(&mut StdRng), reps: usize) -> f64 {
            let mut rng = StdRng::seed_from_u64(7);
            f(&mut rng); // warmup
            let t = Instant::now();
            for _ in 0..reps {
                f(&mut rng);
            }
            t.elapsed().as_secs_f64() / reps as f64
        }
        let t_single = time_of(
            |rng| {
                black_box(self.sample_single_row_tape(rng));
            },
            reps_single,
        );
        let mut session_full = InferenceSession::new();
        let t_full = time_of(
            |rng| {
                black_box(self.sample_batched(&mut session_full, false, rng));
            },
            reps_batched,
        );
        let mut session_sweep = InferenceSession::new();
        let t_sweep = time_of(
            |rng| {
                black_box(self.sample_batched(&mut session_sweep, true, rng));
            },
            reps_batched,
        );
        let workers = restore_util::default_workers();
        let mut sessions: Vec<InferenceSession> = (0..workers.max(1))
            .map(|_| InferenceSession::new())
            .collect();
        let t_parallel = {
            black_box(self.sample_batched_parallel(&mut sessions, 7));
            let t = Instant::now();
            for _ in 0..reps_batched {
                black_box(self.sample_batched_parallel(&mut sessions, 7));
            }
            t.elapsed().as_secs_f64() / reps_batched as f64
        };

        let tps = |t: f64| self.n_rows as f64 / t;
        println!(
            "\nsampling throughput: single-row tape {:.0} tuples/s, \
             batched full-trunk {:.0} tuples/s ({:.1}x), \
             batched sweep {:.0} tuples/s ({:.1}x, {:.2}x over full trunk), \
             batched+parallel {:.0} tuples/s ({:.1}x)",
            tps(t_single),
            tps(t_full),
            t_single / t_full,
            tps(t_sweep),
            t_single / t_sweep,
            t_full / t_sweep,
            tps(t_parallel),
            t_single / t_parallel,
        );
        let rec = |engine: &str, workers: usize, tuples_per_s: f64| BenchRecord {
            bench: "sampling_engines".into(),
            engine: engine.into(),
            workers,
            hardware_threads: hardware_threads(),
            lane_width: crate::lane_width(),
            target_feature: crate::target_feature(),
            steps_per_s: 0.0,
            tuples_per_s,
        };
        write_bench_json(
            "BENCH_completion.json",
            &[
                rec("single_row_tape", 1, tps(t_single)),
                rec("batched_full_trunk", 1, tps(t_full)),
                // Keeps the PR 4 record's identity: the delta against the
                // old full-trunk `batched_nograd` number IS the sweep win.
                rec("batched_nograd", 1, tps(t_sweep)),
                rec("batched_parallel", workers, tps(t_parallel)),
            ],
        );
    }
}
