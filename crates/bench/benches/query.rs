//! Relational-engine benchmarks: hash join, grouped aggregation, and the
//! full SPJA execution over the housing schema — the substrate costs under
//! every incompleteness join.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use restore_bench::housing_scenario;
use restore_db::{aggregate, execute, hash_join, Agg, Expr, Query};

fn bench_query(c: &mut Criterion) {
    let sc = housing_scenario(0.5, 4);
    let db = &sc.complete;
    let apartments = db.table("apartment").unwrap();
    let neighborhoods = db.table("neighborhood").unwrap();

    let mut group = c.benchmark_group("query_engine");
    group.bench_function("hash_join/apartment_x_neighborhood", |b| {
        b.iter(|| {
            let out = hash_join(
                black_box(apartments),
                "neighborhood_id",
                black_box(neighborhoods),
                "id",
                "j",
            )
            .unwrap();
            black_box(out.table.n_rows())
        })
    });

    group.bench_function("aggregate/count_by_room_type", |b| {
        b.iter(|| {
            let out = aggregate(
                black_box(apartments),
                &["room_type".to_string()],
                &[Agg::CountStar, Agg::Avg("price".into())],
            )
            .unwrap();
            black_box(out.n_rows())
        })
    });

    let q = Query::new(["neighborhood", "apartment"])
        .filter(Expr::col("price").ge(Expr::lit(500.0)))
        .group_by(["state"])
        .aggregate(Agg::Avg("price".into()));
    group.bench_function("spja/avg_price_by_state", |b| {
        b.iter(|| {
            let res = execute(black_box(db), &q).unwrap();
            black_box(res.table.n_rows())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
