//! **Fig. 11** — time required for training one completion model, AR vs
//! SSAR, on the housing and movies schemas. The paper reports minutes on
//! their full datasets; at benchmark scale the *ratios* are what carries
//! over (SSAR > AR; movies > housing).
//!
//! Plus the **training-engine comparison**: the PR 1 single-threaded
//! full-batch path (fresh tape per step, parameters copied into leaf
//! nodes) vs the data-parallel engine (reusable arena tapes, in-place
//! parameters, microbatched gradient workers) at several worker counts.
//! Results land in `results/BENCH_training.json` (steps/s, tuples/s).

use criterion::{criterion_group, criterion_main, Criterion};
use std::convert::Infallible;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use restore_bench::{
    annotation_of, bench_train_config, housing_scenario, movies_scenario, write_bench_json,
    BenchRecord,
};
use restore_core::{CompletionModel, CompletionPath};
use restore_nn::{
    block_cross_entropy, block_cross_entropy_sums, Adam, AttrSpec, Forward, Made, MadeConfig,
    ParamStore, Tape, TrainEngine,
};

fn bench_training(c: &mut Criterion) {
    let housing = housing_scenario(0.15, 1);
    let movies = movies_scenario(0.15, 1);
    let housing_path = CompletionPath::from_tables(
        &housing.incomplete,
        &["neighborhood".to_string(), "apartment".to_string()],
    )
    .unwrap();
    let movies_path = CompletionPath::from_tables(
        &movies.incomplete,
        &[
            "director".to_string(),
            "movie_director".to_string(),
            "movie".to_string(),
        ],
    )
    .unwrap();

    let mut group = c.benchmark_group("fig11_training");
    group.sample_size(10);
    for (name, sc, path) in [
        ("housing", &housing, &housing_path),
        ("movies", &movies, &movies_path),
    ] {
        let ann = annotation_of(sc);
        for ssar in [false, true] {
            let label = format!("{name}/{}", if ssar { "SSAR" } else { "AR" });
            let cfg = bench_train_config(ssar);
            group.bench_function(&label, |b| {
                b.iter(|| {
                    let m = CompletionModel::train(
                        black_box(&sc.incomplete),
                        &ann,
                        path.clone(),
                        &cfg,
                        7,
                    )
                    .expect("train");
                    black_box(m.val_loss)
                })
            });
        }
    }
    group.finish();

    bench_training_engines(c);
}

/// The tentpole comparison: one gradient step over a housing-shaped MADE,
/// (a) the PR 1 path — fresh `Tape` every step, full batch, parameter
/// values copied into leaf nodes — vs (b) the data-parallel engine —
/// per-worker reusable arena tapes, parameters resolved in place,
/// microbatched gradients reduced in fixed order — at 1/2/4 workers.
fn bench_training_engines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let cards = [13usize, 25, 9, 25, 4, 5];
    let attrs: Vec<AttrSpec> = cards.iter().map(|&card| AttrSpec::new(card, 8)).collect();
    let made = Made::new(
        MadeConfig::new(attrs).with_hidden(vec![64, 64]),
        &mut store,
        &mut rng,
    );
    let batch = 256usize;
    let tokens: Vec<Vec<u32>> = cards
        .iter()
        .map(|&card| (0..batch as u32).map(|r| r % card as u32).collect())
        .collect();
    let arc_toks: Vec<Arc<Vec<u32>>> = tokens.iter().cloned().map(Arc::new).collect();
    let rows: Vec<usize> = (0..batch).collect();
    let w_total = (cards.len() * batch) as f64;
    let norm = 1.0 / w_total as f32;

    // (a) PR 1 single-threaded path.
    let legacy_step = |store: &mut ParamStore, adam: &mut Adam| {
        let mut tape = Tape::new();
        let logits = made.forward(&mut tape, store, &arc_toks, None);
        let loss = block_cross_entropy(tape.value(logits), made.layout(), &tokens, None);
        tape.backward(logits, loss.dlogits, store);
        store.clip_grad_norm(5.0);
        adam.step(store);
        loss.loss
    };

    // (b) the data-parallel engine (micro = 256 degenerates to one
    // full-batch microbatch, isolating the arena-reuse + in-place-param
    // win from the parallel fan-out).
    let engine_step =
        |engine: &mut TrainEngine, store: &mut ParamStore, adam: &mut Adam, micro: usize| {
            let loss_sum = engine
                .step(store, &rows, micro, |tape, store, chunk, grads| {
                    let btoks: Vec<Vec<u32>> = tokens
                        .iter()
                        .map(|col| chunk.iter().map(|&r| col[r]).collect())
                        .collect();
                    let arc: Vec<Arc<Vec<u32>>> = btoks.iter().cloned().map(Arc::new).collect();
                    let mut f = tape.ctx(store);
                    let logits = made.forward(&mut f, store, &arc, None);
                    let sums =
                        block_cross_entropy_sums(f.value(logits), made.layout(), &btoks, None);
                    let mut dl = sums.dlogits;
                    dl.scale_assign(norm);
                    tape.backward_with(logits, dl, store, grads);
                    Ok::<f64, Infallible>(sums.loss_sum)
                })
                .unwrap();
            store.clip_grad_norm(5.0);
            adam.step(store);
            (loss_sum / w_total) as f32
        };

    let mut group = c.benchmark_group("training_engines");
    group.sample_size(10);
    group.bench_function("fresh_tape_fullbatch/256", |b| {
        let mut s = store.clone();
        let mut adam = Adam::new(&s, 1e-3);
        b.iter(|| black_box(legacy_step(&mut s, &mut adam)))
    });
    group.bench_function("arena_fullbatch/256", |b| {
        let mut s = store.clone();
        let mut adam = Adam::new(&s, 1e-3);
        let mut engine = TrainEngine::new(1);
        b.iter(|| black_box(engine_step(&mut engine, &mut s, &mut adam, batch)))
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("arena_parallel/w{workers}"), |b| {
            let mut s = store.clone();
            let mut adam = Adam::new(&s, 1e-3);
            let mut engine = TrainEngine::new(workers);
            b.iter(|| black_box(engine_step(&mut engine, &mut s, &mut adam, 32)))
        });
    }
    group.finish();

    // Throughput summary + machine-readable records.
    let steps = 30usize;
    let time_legacy = {
        let mut s = store.clone();
        let mut adam = Adam::new(&s, 1e-3);
        black_box(legacy_step(&mut s, &mut adam)); // warmup
        let t = Instant::now();
        for _ in 0..steps {
            black_box(legacy_step(&mut s, &mut adam));
        }
        t.elapsed().as_secs_f64() / steps as f64
    };
    let mut records = vec![BenchRecord {
        bench: "training_engines".into(),
        engine: "fresh_tape_fullbatch".into(),
        workers: 1,
        hardware_threads: restore_bench::hardware_threads(),
        lane_width: restore_bench::lane_width(),
        target_feature: restore_bench::target_feature(),
        steps_per_s: 1.0 / time_legacy,
        tuples_per_s: batch as f64 / time_legacy,
    }];
    let mut summary = format!(
        "\ntraining throughput (batch {batch}): fresh-tape full-batch {:.1} steps/s",
        1.0 / time_legacy
    );
    let mut timed_engine = |label: &str, workers: usize, micro: usize| {
        let mut s = store.clone();
        let mut adam = Adam::new(&s, 1e-3);
        let mut engine = TrainEngine::new(workers);
        black_box(engine_step(&mut engine, &mut s, &mut adam, micro)); // warmup
        let t = Instant::now();
        for _ in 0..steps {
            black_box(engine_step(&mut engine, &mut s, &mut adam, micro));
        }
        let dt = t.elapsed().as_secs_f64() / steps as f64;
        records.push(BenchRecord {
            bench: "training_engines".into(),
            engine: label.into(),
            workers,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            steps_per_s: 1.0 / dt,
            tuples_per_s: batch as f64 / dt,
        });
        summary.push_str(&format!(
            ", {label} w{workers} {:.1} steps/s ({:.2}x)",
            1.0 / dt,
            time_legacy / dt
        ));
    };
    timed_engine("arena_fullbatch", 1, batch);
    for workers in [1usize, 2, 4] {
        timed_engine("arena_parallel", workers, 32);
    }
    println!("{summary}");
    write_bench_json("BENCH_training.json", &records);
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
