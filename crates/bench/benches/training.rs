//! **Fig. 11** — time required for training one completion model, AR vs
//! SSAR, on the housing and movies schemas. The paper reports minutes on
//! their full datasets; at benchmark scale the *ratios* are what carries
//! over (SSAR > AR; movies > housing).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use restore_bench::{annotation_of, bench_train_config, housing_scenario, movies_scenario};
use restore_core::{CompletionModel, CompletionPath};

fn bench_training(c: &mut Criterion) {
    let housing = housing_scenario(0.15, 1);
    let movies = movies_scenario(0.15, 1);
    let housing_path = CompletionPath::from_tables(
        &housing.incomplete,
        &["neighborhood".to_string(), "apartment".to_string()],
    )
    .unwrap();
    let movies_path = CompletionPath::from_tables(
        &movies.incomplete,
        &[
            "director".to_string(),
            "movie_director".to_string(),
            "movie".to_string(),
        ],
    )
    .unwrap();

    let mut group = c.benchmark_group("fig11_training");
    group.sample_size(10);
    for (name, sc, path) in [
        ("housing", &housing, &housing_path),
        ("movies", &movies, &movies_path),
    ] {
        let ann = annotation_of(sc);
        for ssar in [false, true] {
            let label = format!("{name}/{}", if ssar { "SSAR" } else { "AR" });
            let cfg = bench_train_config(ssar);
            group.bench_function(&label, |b| {
                b.iter(|| {
                    let m = CompletionModel::train(
                        black_box(&sc.incomplete),
                        &ann,
                        path.clone(),
                        &cfg,
                        7,
                    )
                    .expect("train");
                    black_box(m.val_loss)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
