//! Neural-substrate micro-benchmarks: matmul, a MADE forward/backward
//! step, and conditional sampling — the inner loops of every training and
//! completion measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

use restore_nn::{block_cross_entropy, Adam, AttrSpec, Made, MadeConfig, Matrix, ParamStore, Tape};

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::rand_uniform(256, 64, -1.0, 1.0, &mut rng);
    let b = Matrix::rand_uniform(64, 128, -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("nn");
    group.bench_function("matmul/256x64x128", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });

    // A MADE model shaped like the housing completion models.
    let mut store = ParamStore::new();
    let cards = [13usize, 25, 9, 25, 4, 5];
    let attrs: Vec<AttrSpec> = cards.iter().map(|&c| AttrSpec::new(c, 8)).collect();
    let made = Made::new(
        MadeConfig::new(attrs).with_hidden(vec![64, 64]),
        &mut store,
        &mut rng,
    );
    let batch: Vec<Arc<Vec<u32>>> = cards
        .iter()
        .map(|&card| Arc::new((0..256u32).map(|r| r % card as u32).collect()))
        .collect();
    let targets: Vec<Vec<u32>> = batch.iter().map(|c| c.as_ref().clone()).collect();

    group.bench_function("made/forward_256", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            let out = made.forward(&mut tape, &store, black_box(&batch), None);
            black_box(tape.value(out).rows())
        })
    });

    group.bench_function("made/train_step_256", |bch| {
        let mut adam = Adam::new(&store, 1e-3);
        bch.iter(|| {
            let mut tape = Tape::new();
            let out = made.forward(&mut tape, &store, black_box(&batch), None);
            let loss = block_cross_entropy(tape.value(out), made.layout(), &targets, None);
            tape.backward(out, loss.dlogits, &mut store);
            adam.step(&mut store);
            black_box(loss.loss)
        })
    });

    group.bench_function("made/sample_suffix_256", |bch| {
        let mut srng = StdRng::seed_from_u64(6);
        bch.iter(|| {
            let mut toks: Vec<Vec<u32>> = targets.clone();
            made.sample_suffix(&store, &mut toks, None, 2, &[], &mut srng);
            black_box(toks[5][0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
