//! **Serving throughput** — N client threads × M queries over one shared,
//! sealed [`Snapshot`]. This is the workload the concurrent serving engine
//! exists for: every thread calls `Snapshot::execute(&self, …)` on the
//! same `Arc`, the completed-join cache answers warm paths lock-light, and
//! single-flight collapses cold-path races.
//!
//! Results land in `results/BENCH_serving.json` (`{threads, queries/s}`)
//! with a trend diff against the previous run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use restore_bench::{serving_workload as workload, write_bench_json, ServingRecord};
use restore_core::{CompleterConfig, ReStore, RestoreConfig, Snapshot, TrainConfig};
use restore_data::{apply_removal, generate_synthetic, BiasSpec, RemovalConfig, SyntheticConfig};

fn build_snapshot() -> Arc<Snapshot> {
    let db = generate_synthetic(
        &SyntheticConfig {
            predictability: 0.9,
            n_parent: 300,
            ..Default::default()
        },
        21,
    );
    let mut removal = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
    removal.seed = 21;
    let sc = apply_removal(&db, &removal);
    let mut cfg = RestoreConfig {
        train: TrainConfig {
            epochs: 8,
            hidden: vec![32, 32],
            min_steps: 200,
            workers: 1,
            ..TrainConfig::default()
        },
        // Client threads are the parallelism axis here; keep the inner
        // sampling single-threaded (nested-ncpu² reasoning).
        completer: CompleterConfig {
            workers: 1,
            ..CompleterConfig::default()
        },
        max_candidates: 1,
        ..RestoreConfig::default()
    };
    cfg.train.batch_size = 128;
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    rs.mark_incomplete("tb");
    rs.train(21).expect("train");
    for q in workload() {
        rs.ensure_query_models(&q.tables, 21).expect("ensure");
    }
    Arc::new(rs.seal(21))
}

/// Executes `per_thread` queries on each of `threads` client threads over
/// the shared snapshot; returns total queries per second.
fn run_clients(snap: &Arc<Snapshot>, threads: usize, per_thread: usize) -> f64 {
    let queries = Arc::new(workload());
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let (snap, queries, barrier) =
            (Arc::clone(snap), Arc::clone(&queries), Arc::clone(&barrier));
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..per_thread {
                let q = &queries[i % queries.len()];
                // Distinct per-(thread, iteration) seeds: real clients
                // don't share query seeds.
                let r = snap
                    .execute(q, (t * per_thread + i) as u64)
                    .expect("execute");
                black_box(r.table.n_rows());
            }
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let dt = started.elapsed().as_secs_f64();
    (threads * per_thread) as f64 / dt
}

fn bench_serving(c: &mut Criterion) {
    let snap = build_snapshot();
    // Warm the cache: every distinct chain synthesized once up front, so
    // the timed section measures serving, not synthesis.
    for q in workload() {
        snap.execute(&q, 0).expect("warmup");
    }

    let mut group = c.benchmark_group("serving");
    group.sample_size(5);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("warm_cache/t{threads}"), |b| {
            b.iter(|| black_box(run_clients(&snap, threads, 20)))
        });
    }
    group.finish();

    // Machine-readable throughput records + trend diff.
    let mut records = Vec::new();
    let mut summary = String::from("\nserving throughput (warm cache)");
    for threads in [1usize, 2, 4, 8] {
        run_clients(&snap, threads, 10); // warmup
        let qps = run_clients(&snap, threads, 40);
        records.push(ServingRecord {
            bench: "serving".into(),
            engine: "warm_cache".into(),
            threads,
            hardware_threads: restore_bench::hardware_threads(),
            lane_width: restore_bench::lane_width(),
            target_feature: restore_bench::target_feature(),
            queries_per_s: qps,
        });
        summary.push_str(&format!(", t{threads} {qps:.0} q/s"));
    }
    // One cold-cache record: distinct chains synthesized under
    // single-flight while all threads hammer them.
    let cold = build_snapshot();
    let qps_cold = run_clients(&cold, 4, 10);
    records.push(ServingRecord {
        bench: "serving".into(),
        engine: "cold_cache".into(),
        threads: 4,
        hardware_threads: restore_bench::hardware_threads(),
        lane_width: restore_bench::lane_width(),
        target_feature: restore_bench::target_feature(),
        queries_per_s: qps_cold,
    });
    summary.push_str(&format!(", cold t4 {qps_cold:.0} q/s"));
    println!("{summary}");
    let stats = cold.full_cache_stats();
    println!(
        "cold-cache single-flight: {} syntheses, {} hits, {} waits",
        stats.misses, stats.hits, stats.waits
    );
    write_bench_json("BENCH_serving.json", &records);
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
