//! **Fig. 12** — time required for completing one path, AR vs SSAR, with
//! and without the euclidean nearest-neighbor replacement — plus the
//! sampling-engine comparison: single-row tape-driven sampling (the old
//! inference path) vs batched no-grad sampling (the `InferenceSession`
//! engine), reported in sampled tuples per second.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use restore_bench::{
    annotation_of, housing_scenario, trained_model, write_bench_json, BenchRecord,
};
use restore_core::{Completer, CompleterConfig, ReplacementMode};
use restore_nn::{
    sample_categorical, AttrSpec, InferenceSession, Made, MadeConfig, ParamStore, Tape,
};

fn bench_completion(c: &mut Criterion) {
    let sc = housing_scenario(0.15, 2);
    let ann = annotation_of(&sc);
    let ar = trained_model(&sc, false, 2);
    let ssar = trained_model(&sc, true, 2);

    let mut group = c.benchmark_group("fig12_completion");
    group.sample_size(10);
    for (name, model) in [("AR", &ar), ("SSAR", &ssar)] {
        for (mode_name, mode) in [
            ("", ReplacementMode::Never),
            ("+NN", ReplacementMode::Always),
        ] {
            let cfg = CompleterConfig {
                replacement: mode,
                ..CompleterConfig::default()
            };
            let completer = Completer::new(&sc.incomplete, &ann).with_config(cfg);
            group.bench_function(format!("housing/{name}{mode_name}"), |b| {
                b.iter(|| {
                    let out = completer.complete(black_box(model), 3).expect("complete");
                    black_box(out.join.n_rows())
                })
            });
        }
    }
    group.finish();

    bench_sampling_engines(c);
}

/// The tentpole comparison: iterative forward sampling of the same MADE
/// model, (a) one row at a time through the training tape — the seed's
/// inference path — vs (b) the whole batch through the gradient-free
/// engine. Prints tuples/sec for both plus the speedup.
fn bench_sampling_engines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let cards = [13usize, 25, 9, 25, 4, 5];
    let attrs: Vec<AttrSpec> = cards.iter().map(|&card| AttrSpec::new(card, 8)).collect();
    let made = Made::new(
        MadeConfig::new(attrs).with_hidden(vec![64, 64]),
        &mut store,
        &mut rng,
    );
    let n_rows = 256usize;
    let start_attr = 2;
    let base: Vec<Vec<u32>> = cards
        .iter()
        .map(|&card| (0..n_rows as u32).map(|r| r % card as u32).collect())
        .collect();

    // (a) single-row, tape-driven: per row, per attribute, record a full
    // tape forward and sample from the logits (what the seed's
    // `Made::logits` did for every conditional).
    let sample_single_row_tape = |rng: &mut StdRng| {
        let mut toks = base.clone();
        for r in 0..n_rows {
            for attr in start_attr..cards.len() {
                let cols: Vec<Arc<Vec<u32>>> = toks.iter().map(|t| Arc::new(vec![t[r]])).collect();
                let mut tape = Tape::new();
                let out = made.forward(&mut tape, &store, &cols, None);
                let dist = made.layout().dist(tape.value(out).row(0), attr);
                toks[attr][r] = sample_categorical(&dist, rng);
            }
        }
        toks
    };

    // (b) batched, no-grad engine: one forward pass per attribute fills
    // all rows; activation buffers are pooled across passes.
    let sample_batched = |rng: &mut StdRng| {
        let mut cols: Vec<Arc<Vec<u32>>> = base.iter().map(|t| Arc::new(t.clone())).collect();
        let mut session = InferenceSession::new();
        made.sample_range_in(
            &mut session,
            &store,
            &mut cols,
            None,
            start_attr,
            cards.len(),
            &[],
            rng,
        );
        cols
    };

    // (c) batched + parallel: what `Completer` runs by default — batches
    // of B rows fanned out over the worker pool, one session and one
    // derived RNG stream per batch.
    let batch_size = 64usize;
    let sample_batched_parallel = |seed: u64| {
        let chunks: Vec<(usize, Vec<usize>)> = (0..n_rows)
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .enumerate()
            .map(|(k, c)| (k * batch_size, c.to_vec()))
            .collect();
        restore_util::parallel_map(chunks, |(offset, rows)| {
            let mut rng = StdRng::seed_from_u64(restore_util::derive_seed(seed, *offset as u64));
            let mut cols: Vec<Arc<Vec<u32>>> = base
                .iter()
                .map(|t| Arc::new(rows.iter().map(|&r| t[r]).collect::<Vec<u32>>()))
                .collect();
            let mut session = InferenceSession::new();
            made.sample_range_in(
                &mut session,
                &store,
                &mut cols,
                None,
                start_attr,
                cards.len(),
                &[],
                &mut rng,
            );
            cols
        })
    };

    let mut group = c.benchmark_group("sampling_engines");
    group.sample_size(10);
    group.bench_function("single_row_tape/256", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(sample_single_row_tape(&mut rng)))
    });
    group.bench_function("batched_nograd/256", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(sample_batched(&mut rng)))
    });
    group.bench_function("batched_parallel/256", |b| {
        b.iter(|| black_box(sample_batched_parallel(6)))
    });
    group.finish();

    // Throughput summary (tuples/sec) for CHANGES.md-style reporting.
    fn time_of<T>(f: impl Fn(&mut StdRng) -> T, reps: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        black_box(f(&mut rng)); // warmup
        let t = Instant::now();
        for _ in 0..reps {
            black_box(f(&mut rng));
        }
        t.elapsed().as_secs_f64() / reps as f64
    }
    let t_single = time_of(sample_single_row_tape, 3);
    let t_batched = time_of(sample_batched, 20);
    let t_parallel = {
        black_box(sample_batched_parallel(7));
        let t = Instant::now();
        for _ in 0..20 {
            black_box(sample_batched_parallel(7));
        }
        t.elapsed().as_secs_f64() / 20.0
    };
    let tps_single = n_rows as f64 / t_single;
    let tps_batched = n_rows as f64 / t_batched;
    let tps_parallel = n_rows as f64 / t_parallel;
    println!(
        "\nsampling throughput: single-row tape {tps_single:.0} tuples/s, \
         batched no-grad {tps_batched:.0} tuples/s ({:.1}x), \
         batched+parallel {tps_parallel:.0} tuples/s ({:.1}x)",
        tps_batched / tps_single,
        tps_parallel / tps_single
    );
    let rec = |engine: &str, workers: usize, tps: f64| BenchRecord {
        bench: "sampling_engines".into(),
        engine: engine.into(),
        workers,
        steps_per_s: 0.0,
        tuples_per_s: tps,
    };
    write_bench_json(
        "BENCH_completion.json",
        &[
            rec("single_row_tape", 1, tps_single),
            rec("batched_nograd", 1, tps_batched),
            rec(
                "batched_parallel",
                restore_util::default_workers(),
                tps_parallel,
            ),
        ],
    );
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
