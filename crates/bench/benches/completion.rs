//! **Fig. 12** — time required for completing one path, AR vs SSAR, with
//! and without the euclidean nearest-neighbor replacement.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use restore_bench::{annotation_of, housing_scenario, trained_model};
use restore_core::{Completer, CompleterConfig, ReplacementMode};

fn bench_completion(c: &mut Criterion) {
    let sc = housing_scenario(0.15, 2);
    let ann = annotation_of(&sc);
    let ar = trained_model(&sc, false, 2);
    let ssar = trained_model(&sc, true, 2);

    let mut group = c.benchmark_group("fig12_completion");
    group.sample_size(10);
    for (name, model) in [("AR", &ar), ("SSAR", &ssar)] {
        for (mode_name, mode) in [
            ("", ReplacementMode::Never),
            ("+NN", ReplacementMode::Always),
        ] {
            let cfg = CompleterConfig { replacement: mode, ..CompleterConfig::default() };
            let completer = Completer::new(&sc.incomplete, &ann).with_config(cfg);
            group.bench_function(format!("housing/{name}{mode_name}"), |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(3);
                    let out = completer.complete(black_box(model), &mut rng).expect("complete");
                    black_box(out.join.n_rows())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
