//! **Fig. 12** — time required for completing one path, AR vs SSAR, with
//! and without the euclidean nearest-neighbor replacement — plus the
//! sampling-engine comparison: single-row tape-driven sampling (the old
//! inference path) vs batched no-grad sampling with the full-trunk
//! recompute vs the band-incremental sweep (see
//! `restore_bench::sampling`), reported in sampled tuples per second.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use restore_bench::{annotation_of, housing_scenario, sampling::SamplingBench, trained_model};
use restore_core::{Completer, CompleterConfig, ReplacementMode};
use restore_nn::InferenceSession;

fn bench_completion(c: &mut Criterion) {
    let sc = housing_scenario(0.15, 2);
    let ann = annotation_of(&sc);
    let ar = trained_model(&sc, false, 2);
    let ssar = trained_model(&sc, true, 2);

    let mut group = c.benchmark_group("fig12_completion");
    group.sample_size(10);
    for (name, model) in [("AR", &ar), ("SSAR", &ssar)] {
        for (mode_name, mode) in [
            ("", ReplacementMode::Never),
            ("+NN", ReplacementMode::Always),
        ] {
            let cfg = CompleterConfig {
                replacement: mode,
                ..CompleterConfig::default()
            };
            let completer = Completer::new(&sc.incomplete, &ann).with_config(cfg);
            group.bench_function(format!("housing/{name}{mode_name}"), |b| {
                b.iter(|| {
                    let out = completer.complete(black_box(model), 3).expect("complete");
                    black_box(out.join.n_rows())
                })
            });
        }
    }
    group.finish();

    bench_sampling_engines(c);
}

/// The sampling-engine comparison: iterative forward sampling of the same
/// MADE model, (a) one row at a time through the training tape — the
/// seed's inference path — vs the whole batch through the gradient-free
/// engine with (b) the full-trunk recompute per attribute and (c) the
/// band-incremental sweep, plus (d) the sweep fanned out over the worker
/// pool. The shared measurement harness (`restore_bench::sampling`) then
/// records tuples/sec for all engines into `results/BENCH_completion.json`.
fn bench_sampling_engines(c: &mut Criterion) {
    let fixture = SamplingBench::new();
    let mut group = c.benchmark_group("sampling_engines");
    group.sample_size(10);
    group.bench_function("single_row_tape/256", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(fixture.sample_single_row_tape(&mut rng)))
    });
    group.bench_function("batched_full_trunk/256", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let mut session = InferenceSession::new();
        b.iter(|| black_box(fixture.sample_batched(&mut session, false, &mut rng)))
    });
    group.bench_function("batched_sweep/256", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let mut session = InferenceSession::new();
        b.iter(|| black_box(fixture.sample_batched(&mut session, true, &mut rng)))
    });
    group.bench_function("batched_parallel/256", |b| {
        let mut sessions: Vec<InferenceSession> = (0..restore_util::default_workers().max(1))
            .map(|_| InferenceSession::new())
            .collect();
        b.iter(|| black_box(fixture.sample_batched_parallel(&mut sessions, 6)))
    });
    group.finish();

    fixture.measure_and_write(false);
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
