//! Keyed single-flight execution: concurrent callers asking for the same
//! key share one computation instead of racing duplicates.
//!
//! The serving cache uses this so that N clients hitting a cold completion
//! path trigger exactly one synthesis — the leader computes, the followers
//! block on the leader's per-key slot and wake with a clone of its result.
//! Built on `std` only (`Mutex` + `Condvar`), mirroring the repo's
//! no-external-deps constraint.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// `parking_lot`-style infallible lock (poisoning only happens if a holder
/// panicked, and every critical section here leaves the data consistent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A write-once slot many threads can block on — a `Once`-style rendezvous
/// carrying a value.
pub struct Flight<T> {
    state: Mutex<FlightState<T>>,
    ready: Condvar,
}

enum FlightState<T> {
    Pending,
    Done(T),
    /// The leader panicked before filling the slot.
    Poisoned,
}

impl<T: Clone> Flight<T> {
    pub fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Publishes the value and wakes every waiter. May be called once.
    pub fn fill(&self, value: T) {
        let mut st = lock(&self.state);
        debug_assert!(matches!(*st, FlightState::Pending), "flight filled twice");
        *st = FlightState::Done(value);
        self.ready.notify_all();
    }

    fn poison(&self) {
        let mut st = lock(&self.state);
        if matches!(*st, FlightState::Pending) {
            *st = FlightState::Poisoned;
            self.ready.notify_all();
        }
    }

    /// Blocks until the leader publishes, then returns a clone.
    pub fn wait(&self) -> T {
        let mut st = lock(&self.state);
        loop {
            match &*st {
                FlightState::Done(v) => return v.clone(),
                FlightState::Poisoned => panic!("single-flight leader panicked"),
                FlightState::Pending => {
                    st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

impl<T: Clone> Default for Flight<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Deduplicates concurrent computations by key: the first caller for a key
/// becomes the *leader* and runs `f`; callers arriving while the leader is
/// in flight block and share its result. Once the leader finishes, the key
/// is retired — a later call computes afresh (the layer above is expected
/// to consult its cache first).
pub struct SingleFlight<K, T> {
    inflight: Mutex<HashMap<K, Arc<Flight<T>>>>,
}

impl<K: Eq + Hash + Clone, T: Clone> SingleFlight<K, T> {
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Number of computations currently in flight.
    pub fn len(&self) -> usize {
        lock(&self.inflight).len()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.inflight).is_empty()
    }

    /// Runs `f` under single-flight semantics for `key`. Returns the value
    /// and whether this caller was the leader (`true`) or a follower that
    /// shared a leader's result (`false`).
    pub fn run<F: FnOnce() -> T>(&self, key: &K, f: F) -> (T, bool) {
        let flight = {
            let mut inflight = lock(&self.inflight);
            if let Some(existing) = inflight.get(key) {
                Arc::clone(existing)
            } else {
                let flight = Arc::new(Flight::new());
                inflight.insert(key.clone(), Arc::clone(&flight));
                drop(inflight);
                // Leader: compute outside the map lock so other keys (and
                // followers of this one) proceed. A panic in `f` poisons
                // the flight so followers fail loudly instead of hanging.
                let guard = RetireGuard {
                    sf: self,
                    key,
                    flight: &flight,
                };
                let value = f();
                flight.fill(value.clone());
                drop(guard);
                return (value, true);
            }
        };
        (flight.wait(), false)
    }
}

impl<K: Eq + Hash + Clone, T: Clone> Default for SingleFlight<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Retires the key on scope exit — including by panic, in which case the
/// flight is poisoned first so followers don't block forever.
struct RetireGuard<'a, K: Eq + Hash + Clone, T: Clone> {
    sf: &'a SingleFlight<K, T>,
    key: &'a K,
    flight: &'a Arc<Flight<T>>,
}

impl<K: Eq + Hash + Clone, T: Clone> Drop for RetireGuard<'_, K, T> {
    fn drop(&mut self) {
        self.flight.poison();
        lock(&self.sf.inflight).remove(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn single_caller_leads() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (v, leader) = sf.run(&1, || 41 + 1);
        assert_eq!(v, 42);
        assert!(leader);
        assert!(sf.is_empty(), "key must retire after the leader finishes");
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let sf: Arc<SingleFlight<String, u64>> = Arc::new(SingleFlight::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (sf, calls, barrier) = (Arc::clone(&sf), Arc::clone(&calls), Arc::clone(&barrier));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                sf.run(&"k".to_string(), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for followers to pile up.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    7u64
                })
            }));
        }
        let results: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 7));
        let leaders = results.iter().filter(|(_, l)| *l).count();
        // Followers may arrive after the leader retired the key and lead a
        // fresh flight; what single-flight guarantees is that simultaneous
        // callers dedupe, i.e. calls == leaders <= threads.
        assert_eq!(calls.load(Ordering::SeqCst), leaders);
    }

    #[test]
    fn distinct_keys_run_independently() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (a, la) = sf.run(&1, || 10);
        let (b, lb) = sf.run(&2, || 20);
        assert_eq!((a, b), (10, 20));
        assert!(la && lb);
    }

    #[test]
    fn leader_panic_poisons_followers() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, barrier) = (Arc::clone(&sf), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let _ = sf.run(&1, || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("leader died")
                });
            })
        };
        barrier.wait();
        // The follower either joins the doomed flight (panics on wait) or
        // arrives after retirement and leads its own successful flight.
        let follower = std::thread::spawn(move || sf.run(&1, || 5));
        assert!(leader.join().is_err());
        match follower.join() {
            Err(_) => {}                    // poisoned flight propagated
            Ok((v, _)) => assert_eq!(v, 5), // raced past the retirement
        }
    }
}
